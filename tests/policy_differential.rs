//! FIFO differential pinning: the `QueuePolicy` refactor (DESIGN.md §13)
//! must leave the default FIFO discipline **bitwise identical** to the
//! pre-refactor engine.
//!
//! `tests/golden/policy_fifo.json` was captured from the engine *before*
//! controller arbitration events and `QueuePolicy` existed (see
//! `examples/policy_golden.rs`). This test re-runs the same matrix — every
//! registered chip preset × {aliased triad, spread triad, write-heavy
//! copy}, the traced/probe path, and the stock-T2 Fig. 4 extremes — and
//! compares every `SimStats` field with `==`. A mismatch is a regression
//! in the engine's pinned default behavior, not a reason to regenerate the
//! golden file.

use t2opt::golden::{load_golden, run_matrix, GOLDEN_PATH};
use t2opt::sim::policy::PolicyKind;

#[test]
fn fifo_is_the_default_policy() {
    assert!(PolicyKind::default().is_fifo());
    assert!(t2opt::sim::ChipConfig::ultrasparc_t2().policy.is_fifo());
    for name in t2opt::core::chip::PRESET_NAMES {
        let c = t2opt::sim::ChipConfig::preset(name).expect("preset resolves");
        assert!(c.policy.is_fifo(), "preset {name} must default to FIFO");
    }
}

#[test]
fn fifo_stats_match_the_pre_refactor_golden_bitwise() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    let golden = load_golden(&path);
    let current = run_matrix();
    assert_eq!(
        golden.len(),
        current.len(),
        "matrix size drifted from the committed golden — \
         extend the golden only via examples/policy_golden.rs"
    );
    let mut failures = Vec::new();
    for ((gname, gstats), (cname, cstats)) in golden.iter().zip(current.iter()) {
        assert_eq!(gname, cname, "matrix case order drifted");
        if gstats != cstats {
            failures.push(format!(
                "{cname}: golden {:?} vs current {:?}",
                gstats, cstats
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "FIFO is no longer bitwise identical to the pre-refactor engine \
         ({} of {} cases differ):\n{}",
        failures.len(),
        golden.len(),
        failures.join("\n")
    );
}
