//! Cross-topology differential test: every chip preset in the registry
//! must close the loop between the analytic advisor and the empirical
//! tuner on its own geometry — the advisor's suggested offset class beats
//! the naive packed layout in simulation, and the tuner's measured winner
//! lands in that class mod the chip's interleave period. This is what
//! "pluggable topologies" means operationally: no layer may quietly
//! assume the T2's 512 B super-line.

use t2opt::prelude::*;
use t2opt_core::chip::PRESET_NAMES;

/// A triad workload sized so that the naive packed layout aliases on the
/// given chip: each thread's segment stride is a multiple of the
/// interleave period, so all segments of all three arrays start in the
/// same residue class.
fn aliasing_workload(spec: &ChipSpec) -> (Workload, usize) {
    let period = spec.interleave_period();
    // 16 threads per socket: single-socket chips keep their historical
    // 16-thread setup, while NUMA chips get enough concurrency per socket
    // to leave the latency-bound region (a lone socket's 2-MC "spread"
    // already hides the convoy at 16 threads total).
    let threads = spec.max_threads().min(16 * spec.n_sockets());
    let seg_elems = (period / 8).max(256); // per-thread bytes ≡ 0 mod period
    (Workload::triad_smoke(seg_elems * threads, threads), threads)
}

/// For every registered preset: run the chip's own Fig. 4 offset sweep
/// exhaustively and check (a) the advisor's suggested per-array offset
/// strictly beats block offset 0, (b) the empirical winner de-aliases,
/// i.e. is a non-zero multiple of the controller stride, and (c) the
/// winner is one of the advisor's suggested offsets for that chip.
#[test]
fn every_preset_tuner_and_advisor_agree() {
    for name in PRESET_NAMES {
        let spec = ChipSpec::preset(name).expect("registry names resolve");
        let chip = ChipConfig::from_spec(&spec);
        let period = spec.interleave_period();
        let n_mc = spec.num_controllers();
        let (workload, threads) = aliasing_workload(&spec);

        let space = ParamSpace::offset_sweep_for(&spec);
        let report = Tuner::new(workload, chip, space)
            .strategy(SearchStrategy::Exhaustive)
            .run();

        let gbs_at = |offset: usize| {
            report
                .trials
                .iter()
                .find(|t| t.spec.block_offset == offset)
                .unwrap_or_else(|| panic!("{name}: sweep must contain offset {offset}"))
                .gbs
        };

        // (a) The advisor's per-array offset (period / n_mc, the first
        // non-trivial suggestion) beats the naive packed layout.
        let advisor_offset = spec.advisor().suggest_offsets(n_mc)[1];
        assert_eq!(advisor_offset, period / n_mc, "{name}: controller stride");
        let packed = gbs_at(0);
        let advised = gbs_at(advisor_offset);
        assert!(
            advised > packed * 1.10,
            "{name}: advisor offset {advisor_offset} must beat packed by >10% \
             ({advised:.2} vs {packed:.2} GB/s, {threads} threads)"
        );

        // (b) The empirical winner leaves the aliased residue class...
        let best = report.best.spec.block_offset;
        assert_ne!(
            best % period,
            0,
            "{name}: best offset {best} must de-alias (period {period})"
        );
        assert_eq!(
            best % (period / n_mc),
            0,
            "{name}: best offset {best} must sit on the controller stride"
        );
        // ... and (c) is one of the advisor's suggested offsets.
        let suggested = spec.advisor().suggest_offsets(n_mc);
        assert!(
            suggested.contains(&best),
            "{name}: best offset {best} not in advisor suggestions {suggested:?}"
        );

        // The sweep's aliased baseline is the packed period-aligned layout;
        // the winner must beat it by a solid margin on every topology.
        let aliased = LayoutSpec::new().base_align(8192usize.max(period));
        let speedup = report
            .speedup_over(&aliased)
            .expect("sweep contains the aliased baseline");
        assert!(
            speedup > 1.10,
            "{name}: best layout only {speedup:.2}x over the aliased baseline"
        );
    }
}

/// Affinity dominates aliasing on every NUMA preset: the advisor's
/// socket-local, de-aliased layout must beat both the naive packed layout
/// (wrong offset, right socket) and the same de-aliased offsets with
/// all-remote pages (right offset, wrong socket). Getting the offset
/// arithmetic right buys nothing if the pages live across the link.
#[test]
fn numa_advisor_beats_packed_and_wrong_socket() {
    for name in PRESET_NAMES {
        let spec = ChipSpec::preset(name).expect("registry names resolve");
        if !spec.sockets.is_numa() {
            continue;
        }
        let chip = ChipConfig::from_spec(&spec);
        let period = spec.interleave_period();
        let n_mc = spec.num_controllers();
        let (workload, threads) = aliasing_workload(&spec);
        let advisor_offset = spec.advisor().suggest_offsets(n_mc)[1];

        let space = ParamSpace {
            base_aligns: vec![8192usize.max(period)],
            seg_aligns: vec![1],
            shifts: vec![0],
            block_offsets: vec![0, advisor_offset],
            placements: PagePlacement::ALL.to_vec(),
        };
        let report = Tuner::new(workload, chip, space)
            .strategy(SearchStrategy::Exhaustive)
            .run();
        let gbs_at = |offset: usize, placement: PagePlacement| {
            report
                .trials
                .iter()
                .find(|t| t.spec.block_offset == offset && t.spec.placement == placement)
                .unwrap_or_else(|| panic!("{name}: missing trial ({offset}, {placement:?})"))
                .gbs
        };

        let packed = gbs_at(0, PagePlacement::FirstTouch);
        let advised = gbs_at(advisor_offset, PagePlacement::FirstTouch);
        let wrong_socket = gbs_at(advisor_offset, PagePlacement::Remote);
        assert!(
            advised > packed * 1.10,
            "{name}: local de-aliased layout must beat packed by >10% \
             ({advised:.2} vs {packed:.2} GB/s, {threads} threads)"
        );
        assert!(
            advised > wrong_socket * 1.25,
            "{name}: affinity must dominate aliasing — local de-aliased \
             {advised:.2} GB/s vs wrong-socket-but-right-offset \
             {wrong_socket:.2} GB/s"
        );
    }
}

/// The tuner's affinity × layout co-optimization rediscovers first-touch
/// socket-local placement together with a de-aliased offset: across the
/// full placement × offset grid the measured winner uses first-touch
/// pages and leaves the aliased residue class.
#[test]
fn numa_tuner_rediscovers_socket_local_placement() {
    for name in PRESET_NAMES {
        let spec = ChipSpec::preset(name).expect("registry names resolve");
        if !spec.sockets.is_numa() {
            continue;
        }
        let chip = ChipConfig::from_spec(&spec);
        let period = spec.interleave_period();
        let n_mc = spec.num_controllers();
        let (workload, _) = aliasing_workload(&spec);

        let mut space = ParamSpace::offset_sweep_for(&spec);
        space.placements = PagePlacement::ALL.to_vec();
        let report = Tuner::new(workload, chip, space)
            .strategy(SearchStrategy::Exhaustive)
            .run();

        let best = &report.best.spec;
        assert_eq!(
            best.placement,
            PagePlacement::FirstTouch,
            "{name}: the measured winner must keep pages socket-local, got {:?}",
            best.placement
        );
        assert_ne!(
            best.block_offset % period,
            0,
            "{name}: winning offset {} must also de-alias (period {period})",
            best.block_offset
        );
        assert_eq!(
            best.block_offset % (period / n_mc),
            0,
            "{name}: winning offset {} must sit on the controller stride",
            best.block_offset
        );
    }
}

/// The presets really are different machines: the same aliased workload
/// yields different interleave periods, and the advisor's offset answer
/// differs across chips — guarding against a refactor that collapses all
/// presets back onto the T2 constants.
#[test]
fn presets_are_genuinely_distinct_topologies() {
    let periods: Vec<usize> = PRESET_NAMES
        .iter()
        .map(|n| ChipSpec::preset(n).unwrap().interleave_period())
        .collect();
    assert_eq!(periods, vec![512, 16384, 1024, 256, 1024, 2048]);

    let strides: Vec<usize> = PRESET_NAMES
        .iter()
        .map(|n| {
            let s = ChipSpec::preset(n).unwrap();
            s.advisor().suggest_offsets(s.num_controllers())[1]
        })
        .collect();
    assert_eq!(strides, vec![128, 4096, 128, 128, 128, 128]);
}
