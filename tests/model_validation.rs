//! Cross-validation of the closed-form `t2opt-model` predictor against
//! the discrete-event simulator, pinned per chip preset: the model must
//! rank each chip's Fig. 4 offset sweep like the simulator does
//! (Spearman ≥ 0.9), and the surrogate-pruned tuner must reproduce the
//! exhaustive winner with strictly fewer simulations.

use t2opt::prelude::*;
use t2opt_autotune::surrogate::{model_for_chip, surrogate_score};
use t2opt_core::chip::PRESET_NAMES;
use t2opt_core::corr::spearman;

/// The validation workload: per-thread segments ≡ 0 mod the interleave
/// period (so the packed layout fully aliases), five streams (3 reads +
/// 2 writes) — more streams than any preset has controllers, so distinct
/// offsets produce distinct coverage patterns instead of one flat
/// "fully spread" plateau. Same construction as the `model_validate`
/// bench binary.
fn validation_workload(spec: &ChipSpec) -> Workload {
    let period = spec.interleave_period();
    // 16 threads per socket: single-socket chips keep their historical
    // 16-thread setup; NUMA chips need the extra per-socket concurrency to
    // be capacity-bound (at 16 threads total the socket split alone hides
    // the convoy behind the latency ceiling, and offsets stop mattering).
    let threads = spec.max_threads().min(16 * spec.n_sockets());
    Workload::StreamMix {
        reads: 3,
        writes: 2,
        n: (period / 8).max(256) * threads,
        threads,
        ntimes: 1,
        warmup: false,
    }
}

/// The layout sweep the model is validated over. Single-socket chips
/// keep the full Fig. 4 offset sweep. On a NUMA chip the first-order
/// layout axis is page *placement* — within one placement the simulator's
/// offset microstructure at capacity-bound thread counts is dominated by
/// cross-thread self-staggering (threads drift out of lockstep and wash
/// out most convoys), which is noise no closed form should chase — so the
/// NUMA sweep crosses all three placements with the two canonical
/// offsets: fully aliased (0) and the advisor's one-controller step.
fn validation_space(spec: &ChipSpec) -> ParamSpace {
    let mut space = ParamSpace::offset_sweep_for(spec);
    if spec.n_sockets() > 1 {
        space.block_offsets = vec![0, spec.interleave_period() / spec.num_controllers()];
        space = space.with_placements(PagePlacement::ALL.to_vec());
    }
    space
}

/// On every registered preset the model's ranking of the chip's own
/// layout sweep agrees with the simulator's at Spearman ≥ 0.9 — the
/// acceptance bar for using the model as a sim-free pre-filter.
#[test]
fn model_ranks_every_presets_offset_sweep_like_the_simulator() {
    for name in PRESET_NAMES {
        let spec = ChipSpec::preset(name).expect("registry names resolve");
        let chip = ChipConfig::from_spec(&spec);
        let workload = validation_workload(&spec);

        let report = Tuner::new(workload.clone(), chip.clone(), validation_space(&spec))
            .strategy(SearchStrategy::Exhaustive)
            .run();

        let model = model_for_chip(&chip);
        let measured: Vec<f64> = report.trials.iter().map(|t| t.gbs).collect();
        let predicted: Vec<f64> = report
            .trials
            .iter()
            .map(|t| surrogate_score(&model, &workload, &t.spec))
            .collect();

        let rho = spearman(&measured, &predicted)
            .unwrap_or_else(|| panic!("{name}: degenerate sweep, Spearman undefined"));
        assert!(
            rho >= 0.9,
            "{name}: model-vs-sim Spearman {rho:.3} below 0.9 over {} candidates",
            measured.len()
        );

        // The model's top pick must land in a de-aliased residue class —
        // the same qualitative claim Fig. 4 makes for the measured sweep.
        let best_idx = (0..predicted.len())
            .max_by(|&a, &b| predicted[a].partial_cmp(&predicted[b]).unwrap())
            .unwrap();
        let period = spec.interleave_period();
        assert_ne!(
            report.trials[best_idx].spec.block_offset % period,
            0,
            "{name}: the model's best offset must de-alias"
        );
        assert_eq!(
            report.trials[best_idx].spec.placement,
            PagePlacement::FirstTouch,
            "{name}: the model's best candidate must keep pages socket-local"
        );
    }
}

/// The surrogate pre-filter keeps its promise on the pinned T2 grid:
/// identical winner, strictly fewer simulations than exhaustive search.
#[test]
fn surrogate_pruned_tuner_matches_exhaustive_with_fewer_simulations() {
    let workload = Workload::triad_smoke(1 << 12, 16);
    let chip = ChipConfig::ultrasparc_t2();
    let space = ParamSpace::t2_default();

    let exhaustive = Tuner::new(workload.clone(), chip.clone(), space.clone())
        .strategy(SearchStrategy::Exhaustive)
        .run();
    let pruned = Tuner::new(workload, chip, space)
        .strategy(SearchStrategy::model_pruned())
        .run();

    assert_eq!(
        pruned.best.spec, exhaustive.best.spec,
        "surrogate pruning must preserve the exhaustive winner"
    );
    assert_eq!(pruned.best.gbs, exhaustive.best.gbs);
    assert!(
        pruned.simulations_run < exhaustive.simulations_run,
        "pruning must save simulations: {} vs {}",
        pruned.simulations_run,
        exhaustive.simulations_run
    );
}
