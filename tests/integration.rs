//! Cross-crate integration tests: the full pipeline from layout advice
//! through host execution to simulator reproduction.

use t2opt::prelude::*;
use t2opt_core::iter::seg_zip3;
use t2opt_kernels::jacobi::{self, JacobiConfig, JacobiHost};
use t2opt_kernels::lbm::{self, LbmConfig, LbmLayout};
use t2opt_kernels::stream::{self, StreamConfig, StreamKernel};
use t2opt_kernels::triad::{self, TriadConfig, TriadLayout};

/// The headline claim end to end: the advisor's suggested offsets recover
/// the bandwidth that page alignment destroys, on the simulated T2. The
/// aliasing is periodic in addresses mod 512 B, so a small N with
/// per-thread segments ≡ 0 mod 512 reproduces the Fig. 4 gap exactly.
fn advisor_offsets_check(n: usize) {
    let advisor = LayoutAdvisor::t2();
    let offsets = advisor.suggest_offsets(4);
    assert_eq!(offsets, vec![0, 128, 256, 384]);

    let chip = ChipConfig::ultrasparc_t2();
    let run = |layout| {
        let cfg = TriadConfig {
            n,
            layout,
            threads: 64,
            ntimes: 1,
        };
        triad::run_sim(&cfg, &chip, &Placement::t2_scatter()).gbs
    };
    let aligned = run(TriadLayout::Align8k);
    let optimal = run(TriadLayout::AlignOffset(offsets[1] as u32));
    assert!(
        optimal > 1.6 * aligned,
        "suggested offsets must substantially beat page alignment: {aligned:.1} -> {optimal:.1} GB/s"
    );
}

#[test]
fn advisor_offsets_fix_the_aliasing() {
    advisor_offsets_check(1 << 14);
}

/// Paper-scale variant (arrays ≫ L2); tier-2, run in CI via `-- --ignored`.
#[test]
#[ignore = "paper-scale problem size; run with -- --ignored"]
fn advisor_offsets_fix_the_aliasing_full() {
    advisor_offsets_check(1 << 19);
}

/// The advisor's prediction must rank layouts the same way the simulator
/// does (analysis agrees with "measurement").
fn prediction_ranking_check(n: usize) {
    let advisor = LayoutAdvisor::t2();
    let chip = ChipConfig::ultrasparc_t2();
    let mut predicted = Vec::new();
    let mut simulated = Vec::new();
    // Compare the unambiguous extremes (all-congruent floor vs the
    // suggested-offset ceiling); intermediate offsets rank too close
    // together in the simulator to give a stable ordering test.
    for (offsets, layout) in [
        ([0u64, 0, 0, 0], TriadLayout::Align8k),
        ([0, 128, 256, 384], TriadLayout::AlignOffset(128)),
    ] {
        let streams = [
            StreamDesc::write(offsets[0]),
            StreamDesc::read(offsets[1]),
            StreamDesc::read(offsets[2]),
            StreamDesc::read(offsets[3]),
        ];
        predicted.push(advisor.predict(&streams).efficiency);
        let cfg = TriadConfig {
            n,
            layout,
            threads: 64,
            ntimes: 1,
        };
        simulated.push(triad::run_sim(&cfg, &chip, &Placement::t2_scatter()).gbs);
    }
    assert!(
        predicted[0] < predicted[1] && simulated[0] < simulated[1],
        "advisor ranking must match simulation: predicted {predicted:?}, simulated {simulated:?}"
    );
}

#[test]
fn prediction_ranks_like_simulation() {
    prediction_ranking_check(1 << 14);
}

/// Paper-scale variant; tier-2, run in CI via `-- --ignored`.
#[test]
#[ignore = "paper-scale problem size; run with -- --ignored"]
fn prediction_ranks_like_simulation_full() {
    prediction_ranking_check(1 << 19);
}

/// Host STREAM values must be numerically correct regardless of threads.
#[test]
fn host_stream_values_correct() {
    let pool = ThreadPool::new(6);
    let cfg = StreamConfig {
        n: 50_000,
        offset: 13,
        threads: 6,
        ntimes: 1,
    };
    for k in [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Add,
        StreamKernel::Triad,
    ] {
        assert!(stream::run_host(&cfg, k, &pool) > 0.0);
    }
}

/// The segmented triad produces bit-identical results to a plain loop, for
/// every layout variant.
#[test]
fn segmented_numerics_are_bit_identical() {
    let n = 12_345;
    for (seg_align, shift, offset) in [(0, 0, 0), (512, 128, 0), (512, 0, 256), (4096, 64, 32)] {
        let spec = LayoutSpec::new()
            .base_align(8192)
            .seg_align(seg_align)
            .shift(shift)
            .block_offset(offset);
        let mut a = SegArray::<f64>::builder(n)
            .segments(7)
            .spec(spec.clone())
            .build();
        let mut b = SegArray::<f64>::builder(n)
            .segments(7)
            .spec(spec.clone())
            .build();
        let mut c = SegArray::<f64>::builder(n).segments(7).spec(spec).build();
        b.fill_with(|i| (i as f64).sin());
        c.fill_with(|i| (i as f64).cos());
        let scalar = 2.5;
        seg_zip3(&mut a, &b, &c, |a, b, c| {
            for i in 0..a.len() {
                a[i] = b[i] + scalar * c[i];
            }
        });
        let reference: Vec<f64> = (0..n)
            .map(|i| (i as f64).sin() + scalar * (i as f64).cos())
            .collect();
        assert_eq!(
            a.to_vec(),
            reference,
            "layout (seg_align={seg_align}, shift={shift}, offset={offset}) changed the numerics"
        );
    }
}

/// Jacobi: the simulator's optimized-vs-plain ordering must match the
/// paper at an aliased problem size (rows ≡ 0 mod 512 B), and the host
/// solver must converge.
fn jacobi_check(sim_n: usize) {
    // Host convergence to the linear solution.
    let pool = ThreadPool::new(8);
    let n = 33;
    let mut solver = JacobiHost::new(n, |i, _| i as f64);
    solver.run(4000, &pool, Schedule::StaticChunk(1));
    for i in (1..n - 1).step_by(5) {
        assert!(
            (solver.get(i, n / 2) - i as f64).abs() < 1e-4,
            "u({i}, mid) = {} should approach {i}",
            solver.get(i, n / 2)
        );
    }

    // Simulator ordering.
    let chip = ChipConfig::ultrasparc_t2();
    let opt = jacobi::run_sim(
        &JacobiConfig::optimized(sim_n, 64),
        &chip,
        &Placement::t2_scatter(),
    );
    let plain = jacobi::run_sim(
        &JacobiConfig::plain(sim_n, 64),
        &chip,
        &Placement::t2_scatter(),
    );
    assert!(
        opt.mlups > plain.mlups,
        "optimized ({:.0}) must beat plain ({:.0}) at N = {sim_n}",
        opt.mlups,
        plain.mlups
    );
}

#[test]
fn jacobi_end_to_end() {
    // N = 128: rows are 1 KB ≡ 0 mod 512 B, so the plain layout aliases
    // just as it does at the paper's N = 1024.
    jacobi_check(128);
}

/// Paper-scale variant; tier-2, run in CI via `-- --ignored`.
#[test]
#[ignore = "paper-scale problem size; run with -- --ignored"]
fn jacobi_end_to_end_full() {
    jacobi_check(1024);
}

/// LBM: IvJK must beat IJKv at the thrashing size, and physics must be
/// layout-independent on the host.
fn lbm_check(n: usize, threads: usize) {
    let chip = ChipConfig::ultrasparc_t2();
    let ijkv = lbm::run_sim(
        &LbmConfig::new(n, LbmLayout::IJKv, threads, false),
        &chip,
        &Placement::t2_scatter(),
    );
    let ivjk = lbm::run_sim(
        &LbmConfig::new(n, LbmLayout::IvJK, threads, false),
        &chip,
        &Placement::t2_scatter(),
    );
    assert!(
        ivjk.mlups > 1.3 * ijkv.mlups,
        "IvJK ({:.1}) must clearly beat IJKv ({:.1}) at the thrashing size",
        ivjk.mlups,
        ijkv.mlups
    );
    assert!(
        ivjk.l2_hit_rate > ijkv.l2_hit_rate,
        "the IJKv penalty should show as cache thrashing: {:.2} vs {:.2}",
        ijkv.l2_hit_rate,
        ivjk.l2_hit_rate
    );
}

#[test]
fn lbm_end_to_end() {
    // N = 30 → N+2 = 32: a power-of-two domain thrashes IJKv the same
    // way the paper's N+2 = 64 does, at an eighth of the sites.
    lbm_check(30, 32);
}

/// The paper's N = 62 (→ N+2 = 64) "ruinous" size at full thread count;
/// tier-2, run in CI via `-- --ignored`.
#[test]
#[ignore = "paper-scale problem size; run with -- --ignored"]
fn lbm_end_to_end_full() {
    lbm_check(62, 64);
}

/// The empirical autotuner must rediscover the advisor's analysis (§2.3)
/// from measurements alone: on the T2 policy the exhaustive tuner's best
/// triad block offset falls in the advisor's suggested offset class
/// (≢ 0 mod 64 DP words = 512 B), beats the fully aliased baseline by the
/// paper's margin, is deterministic, and a warm-cache rerun performs zero
/// new simulations.
#[test]
fn autotuner_matches_advisor_and_reuses_cache() {
    let chip = ChipConfig::ultrasparc_t2();
    let workload = Workload::triad_smoke(1 << 14, 64);
    let space = ParamSpace::offset_sweep(128, 512);
    let cache_path = std::env::temp_dir().join(format!(
        "t2opt-integration-cache-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache_path);

    let mut tuner = Tuner::new(workload.clone(), chip.clone(), space.clone())
        .strategy(SearchStrategy::Exhaustive)
        .cache(ResultCache::at_path(&cache_path).unwrap());
    let report = tuner.run();

    // Offset class: the winner must de-alias the three arrays, i.e. land
    // off the 512 B super-line period — the class LayoutAdvisor::t2()
    // suggests ([0, 128, 256, 384] per-array steps, non-zero mod 512).
    let best_offset = report.best.spec.block_offset;
    assert_ne!(
        best_offset % 512,
        0,
        "best offset must leave the aliased class: {report:?}"
    );
    let suggested = LayoutAdvisor::t2().suggest_offsets(4);
    assert!(
        suggested.contains(&best_offset),
        "best offset {best_offset} should be one of the advisor's {suggested:?}"
    );

    // Acceptance: ≥ 1.5× the fully aliased (offset ≡ 0 mod 512 B) baseline.
    let aliased = LayoutSpec::new().base_align(8192);
    let speedup = report
        .speedup_over(&aliased)
        .expect("the sweep includes the aliased baseline");
    assert!(
        speedup >= 1.5,
        "best layout must reach 1.5x over the aliased baseline, got {speedup:.2}x"
    );

    // Determinism: an independent cold run reproduces the result exactly.
    let rerun = Tuner::new(workload.clone(), chip.clone(), space.clone()).run();
    assert_eq!(rerun.best.spec, report.best.spec);
    assert_eq!(rerun.best.gbs, report.best.gbs);

    // Warm cache (reloaded from disk): zero new simulations, same winner.
    let mut warm =
        Tuner::new(workload, chip, space).cache(ResultCache::at_path(&cache_path).unwrap());
    let warm_report = warm.run();
    assert_eq!(
        warm_report.simulations_run, 0,
        "warm rerun must be pure cache"
    );
    assert_eq!(warm_report.cache_hits, report.trials.len() as u64);
    assert_eq!(warm_report.best.spec, report.best.spec);
    let _ = std::fs::remove_file(&cache_path);
}

/// The time-resolved telemetry must detect mod-512 aliasing at runtime:
/// on the fully aliased layout the report flags (nearly) every active
/// window and names the congruent streams; on the advisor's 128 B spread
/// it names no culprits. The tier-1 variant shrinks the simulated L2 to
/// 512 KB so 1<<16-element arrays still miss on every sweep (the aliasing
/// lives in the MC mapping, which the cache size does not touch).
#[test]
fn telemetry_flags_aliasing_and_clears_advisor_layout() {
    let mut chip = ChipConfig::ultrasparc_t2();
    chip.l2.bytes = 1 << 19;
    let trace = |offset: usize| {
        let cfg = StreamConfig::fig2(1 << 16, offset, 64);
        let (_, timeline) = stream::run_sim_traced(
            &cfg,
            StreamKernel::Triad,
            &chip,
            &Placement::t2_scatter(),
            4096,
        );
        AliasReport::analyze(&timeline, &AliasConfig::default())
    };

    // Offset 0: A, B, C bases all congruent mod 512 B — the convoy.
    let aliased = trace(0);
    assert!(
        aliased.windows_considered > 0,
        "the traced run must produce active windows"
    );
    assert!(
        aliased.flagged_fraction >= 0.8,
        "aliased layout must flag >= 80% of active windows, got {:.0}% ({}/{})",
        aliased.flagged_fraction * 100.0,
        aliased.windows_flagged,
        aliased.windows_considered
    );
    let named: Vec<&str> = aliased
        .aliased_streams
        .iter()
        .flatten()
        .map(String::as_str)
        .collect();
    for s in ["A", "B", "C"] {
        assert!(
            named.contains(&s),
            "the report must name stream {s} as a culprit, got {named:?}"
        );
    }

    // Offset 16 DP words = 128 B: consecutive arrays on consecutive
    // controllers (the advisor's suggestion). At this run length a couple
    // of barrier-transition windows may dip below the parallelism
    // threshold, but no stream group shares a residue class and flags
    // stay in the noise floor.
    let spread = trace(16);
    assert!(
        spread.flagged_fraction <= 0.05,
        "advisor-spread layout must stay at the flag noise floor: {}",
        spread.summary()
    );
    assert!(spread.aliased_streams.is_empty());
}

/// Paper-scale variant on the stock 4 MB L2 with the strict zero-flag
/// assertion; tier-2, run in CI via `-- --ignored`.
#[test]
#[ignore = "paper-scale problem size; run with -- --ignored"]
fn telemetry_flags_aliasing_and_clears_advisor_layout_full() {
    let chip = ChipConfig::ultrasparc_t2();
    let trace = |offset: usize| {
        let cfg = StreamConfig::fig2(1 << 18, offset, 64);
        let (_, timeline) = stream::run_sim_traced(
            &cfg,
            StreamKernel::Triad,
            &chip,
            &Placement::t2_scatter(),
            4096,
        );
        AliasReport::analyze(&timeline, &AliasConfig::default())
    };

    let aliased = trace(0);
    assert!(aliased.windows_considered > 0);
    assert!(
        aliased.flagged_fraction >= 0.8,
        "aliased layout must flag >= 80% of active windows: {}",
        aliased.summary()
    );
    let spread = trace(16);
    assert_eq!(
        spread.windows_flagged,
        0,
        "advisor-spread layout must produce zero flags: {}",
        spread.summary()
    );
    assert!(spread.aliased_streams.is_empty());
}

/// Tracing must be observationally free: a traced run's SimStats are
/// bitwise identical to the untraced run's (the `NoProbe` path is the
/// same machine).
#[test]
fn telemetry_disabled_is_bitwise_identical() {
    let chip = ChipConfig::ultrasparc_t2();
    let cfg = StreamConfig::fig2(1 << 16, 8, 32);
    let plain = stream::run_sim(&cfg, StreamKernel::Triad, &chip, &Placement::t2_scatter());
    let (traced, timeline) = stream::run_sim_traced(
        &cfg,
        StreamKernel::Triad,
        &chip,
        &Placement::t2_scatter(),
        4096,
    );
    assert_eq!(
        plain.stats, traced.stats,
        "tracing perturbed the simulation"
    );
    assert_eq!(plain.reported_gbs, traced.reported_gbs);
    assert!(!timeline.windows.is_empty());
}

/// The whole prelude is usable as documented in the README.
#[test]
fn prelude_surface() {
    let map = AddressMap::ultrasparc_t2();
    assert_eq!(map.num_controllers(), 4);
    let pool = ThreadPool::new(2);
    let mut sum = 0.0f64;
    let total = std::sync::Mutex::new(&mut sum);
    pool.parallel_for(0..100, Schedule::Guided(4), |_t, r| {
        let mut guard = total.lock().unwrap();
        **guard += r.len() as f64;
    });
    assert_eq!(sum, 100.0);
    let co = Coalesce2::new(3, 5);
    assert_eq!(co.len(), 15);
}

/// The Fig. 7 qualitative result, rediscovered by the autotuner rather
/// than asserted from the closed form: at d = 36 the IJKv velocity stride
/// (36³ · 8 B = 729 · 512 B) is fully aliased, so its best layout *must*
/// shift the velocity blocks apart, while IvJK's short pencils
/// (19 · 36 · 8 B) skew the controllers naturally and need at most one
/// cache line of padding — and forcing its pencils onto 512 B boundaries
/// re-creates the aliasing the natural stride avoids.
#[test]
fn lbm_autotune_reproduces_fig7_padding_asymmetry() {
    let chip = ChipConfig::ultrasparc_t2();
    let tune = |layout| {
        Tuner::new(
            Workload::lbm_smoke(34, layout, 16),
            chip.clone(),
            ParamSpace::lbm_padding_sweep(),
        )
        .strategy(SearchStrategy::Exhaustive)
        .pool_threads(4)
        .run()
    };
    let ijkv = tune(LbmLayout::IJKv);
    let ivjk = tune(LbmLayout::IvJK);
    let packed = LayoutSpec::new().base_align(8192);

    // IJKv demands padding: its winner is shifted by at least a cache
    // line, and strictly beats the packed layout.
    assert!(
        ijkv.best.spec.shift >= 64,
        "aliased IJKv must want a shifted layout, got {:?}",
        ijkv.best.spec
    );
    assert!(
        ijkv.speedup_over(&packed).unwrap() > 1.0,
        "shifting must strictly beat packed IJKv"
    );

    // IvJK needs at most one cache line of padding: its winner shifts by
    // no more than 64 B and packed is within a few percent of it.
    assert!(
        ivjk.best.spec.shift <= 64,
        "naturally skewed IvJK must not need more than one line of padding, got {:?}",
        ivjk.best.spec
    );
    let ivjk_packed_gap = ivjk.speedup_over(&packed).unwrap();
    assert!(
        ivjk_packed_gap < 1.03,
        "packed IvJK must sit within 3% of its tuned best, gap {ivjk_packed_gap:.4}"
    );

    // The cross-layout asymmetry itself: packed IvJK beats packed IJKv.
    let gbs_at = |report: &TuneReport, spec: &LayoutSpec| {
        report
            .trials
            .iter()
            .find(|t| &t.spec == spec)
            .map(|t| t.gbs)
            .unwrap()
    };
    assert!(
        gbs_at(&ivjk, &packed) > gbs_at(&ijkv, &packed),
        "packed IvJK must beat packed IJKv (natural controller skew)"
    );

    // And forcing IvJK's pencils onto 512 B boundaries re-aliases them.
    let force_aligned = LayoutSpec::new().base_align(8192).seg_align(512);
    assert!(
        ivjk.speedup_over(&force_aligned).unwrap() > 1.05,
        "512 B-aligning IvJK pencils must cost noticeably"
    );
}

/// Differential check of tuner vs advisor on the LBM workload: the
/// empirical winner's simulated bandwidth must match or beat the
/// advisor's closed-form pick. On IvJK it must *strictly* beat it — the
/// advisor's segment-alignment rule backfires on naturally skewed
/// pencils, which is precisely the case empirical tuning exists for.
#[test]
fn lbm_tuner_matches_or_beats_the_advisor_pick() {
    let chip = ChipConfig::ultrasparc_t2();
    let pick = LayoutAdvisor::t2().suggest_layout();
    let tune = |layout| {
        Tuner::new(
            Workload::lbm_smoke(34, layout, 16),
            chip.clone(),
            ParamSpace::lbm_padding_sweep(),
        )
        .strategy(SearchStrategy::Exhaustive)
        .pool_threads(4)
        .run()
    };
    for layout in [LbmLayout::IJKv, LbmLayout::IvJK] {
        let report = tune(layout);
        let speedup = report
            .speedup_over(&pick)
            .expect("the advisor pick must be inside the padding sweep");
        assert!(
            speedup >= 1.0,
            "{layout:?}: tuner winner must not lose to the advisor pick"
        );
        if layout == LbmLayout::IvJK {
            assert!(
                speedup > 1.05,
                "IvJK: empirical tuning must beat the advisor's forced alignment, got {speedup:.4}"
            );
        }
    }
}

/// Convoy regression for the queue-policy layer (DESIGN.md §13): on the
/// aliased triad — every stream congruent mod 512 B, the paper's Fig. 2/4
/// worst case — a read-over-write controller strictly beats FIFO, because
/// demand loads (which a T2 thread blocks on with its single outstanding
/// miss) no longer queue behind fire-and-forget write-backs. On the
/// advisor's well-spread layout, FR-FCFS row-hit reordering is within
/// noise of FIFO: streaming access already arrives in row order, so there
/// is nothing to reorder. And under *every* policy the spread layout keeps
/// beating the aliased one — a smarter controller narrows the convoy but
/// does not replace the paper's layout fix.
#[test]
fn read_over_write_beats_fifo_on_the_aliased_triad() {
    // Small L2 keeps the run DRAM-bound at test-sized N (same trick as
    // the telemetry aliasing test); divergences were measured at 3-16%.
    let run = |policy, layout| {
        let mut chip = ChipConfig::ultrasparc_t2();
        chip.l2.bytes = 1 << 19;
        chip.policy = policy;
        let cfg = TriadConfig {
            n: 1 << 15,
            layout,
            threads: 16,
            ntimes: 1,
        };
        triad::run_sim(&cfg, &chip, &Placement::t2_scatter())
            .stats
            .cycles()
    };
    let read_first = PolicyKind::ReadFirst { starvation_cap: 8 };
    let fr_fcfs = PolicyKind::FrFcfs { starvation_cap: 8 };
    let aliased = TriadLayout::Align8k;
    let spread = TriadLayout::AlignOffset(128);

    let fifo_aliased = run(PolicyKind::Fifo, aliased);
    let rf_aliased = run(read_first, aliased);
    assert!(
        (rf_aliased as f64) < 0.98 * fifo_aliased as f64,
        "read-over-write must strictly beat FIFO on the aliased triad: \
         {rf_aliased} vs {fifo_aliased} cycles"
    );

    let fifo_spread = run(PolicyKind::Fifo, spread);
    let frfcfs_spread = run(fr_fcfs, spread);
    let drift = (frfcfs_spread as f64 - fifo_spread as f64).abs() / fifo_spread as f64;
    assert!(
        drift < 0.01,
        "FR-FCFS must be within noise of FIFO on the well-spread layout: \
         {frfcfs_spread} vs {fifo_spread} cycles ({:.2}% drift)",
        drift * 100.0
    );

    for policy in [PolicyKind::Fifo, read_first, fr_fcfs] {
        let a = run(policy, aliased);
        let s = run(policy, spread);
        assert!(
            s < a,
            "{}: the advisor's spread layout must keep beating the aliased \
             one ({s} vs {a} cycles) — reordering narrows the convoy, it \
             does not dissolve it",
            policy.name()
        );
    }
}
