//! Derive macros for the workspace-local `serde` stand-in (see
//! `vendor/serde`). This is **not** the real `serde_derive`: it is a small,
//! dependency-free implementation (no `syn`/`quote`) that covers exactly the
//! shapes this repository derives on — plain structs with named fields,
//! tuple structs, and enums with unit/tuple/struct variants. No generics,
//! no `#[serde(...)]` attributes.
//!
//! `Serialize` expands to a real implementation against the serde data
//! model. `Deserialize` expands to a stub that returns an error at runtime:
//! nothing in the workspace deserializes through serde (the autotune result
//! cache uses its own JSON parser), but the trait bound must exist for
//! derives to compile.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` for non-generic structs and enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("serde_derive stub generated invalid Serialize impl")
}

/// Derives a stub `serde::Deserialize` (errors at runtime if ever invoked).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _shape) = parse_item(input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D>(_deserializer: __D) -> ::std::result::Result<Self, __D::Error>\n\
             where __D: ::serde::Deserializer<'de> {{\n\
                 ::std::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                     \"deserialization is not supported by the vendored serde stand-in\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    // Skip outer attributes (`#[...]`, doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive stub: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive stub: unsupported item kind `{other}`"),
    };
    (name, shape)
}

/// Parses `name: Type, ...` fields, skipping attributes and visibility;
/// commas inside generic arguments are angle-depth-tracked.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => {
                        panic!("serde_derive stub: expected `:` after field, got {other:?}")
                    }
                }
                i = skip_type(&tokens, i);
            }
            other => panic!("serde_derive stub: unexpected token in fields: {other:?}"),
        }
    }
    fields
}

/// Advances past a type up to (and including) the next top-level `,`.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Counts the fields of a tuple struct/variant (attributes such as doc
/// comments on the fields are ignored).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut segment_has_type = false;
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if segment_has_type {
                    count += 1;
                }
                segment_has_type = false;
                i += 1;
                continue;
            }
            _ => segment_has_type = true,
        }
        i += 1;
    }
    if segment_has_type {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let kind = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        VariantKind::Tuple(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantKind::Struct(parse_named_fields(g.stream()))
                    }
                    _ => VariantKind::Unit,
                };
                // Skip a possible discriminant and the separating comma.
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
                variants.push(Variant { name, kind });
            }
            other => panic!("serde_derive stub: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => {
            format!("::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Shape::NamedStruct(fields) => {
            let mut s = String::new();
            s.push_str("use ::serde::ser::SerializeStruct as _;\n");
            s.push_str(&format!(
                "let mut __st = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                fields.len()
            ));
            for f in fields {
                s.push_str(&format!("__st.serialize_field(\"{f}\", &self.{f})?;\n"));
            }
            s.push_str("__st.end()");
            s
        }
        Shape::TupleStruct(n) => {
            if *n == 1 {
                format!(
                    "::serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
                )
            } else {
                let mut s = String::new();
                s.push_str("use ::serde::ser::SerializeTupleStruct as _;\n");
                s.push_str(&format!(
                    "let mut __st = ::serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n})?;\n"
                ));
                for k in 0..*n {
                    s.push_str(&format!("__st.serialize_field(&self.{k})?;\n"));
                }
                s.push_str("__st.end()");
                s
            }
        }
        Shape::Enum(variants) => {
            let mut s = String::new();
            s.push_str("match self {\n");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => s.push_str(&format!(
                        "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    VariantKind::Tuple(1) => s.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        s.push_str(&format!(
                            "{name}::{vname}({}) => {{\nuse ::serde::ser::SerializeTupleVariant as _;\n\
                             let mut __sv = ::serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                            binders.join(", ")
                        ));
                        for b in &binders {
                            s.push_str(&format!("__sv.serialize_field({b})?;\n"));
                        }
                        s.push_str("__sv.end()\n},\n");
                    }
                    VariantKind::Struct(fields) => {
                        s.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\nuse ::serde::ser::SerializeStructVariant as _;\n\
                             let mut __sv = ::serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            fields.join(", "),
                            fields.len()
                        ));
                        for f in fields {
                            s.push_str(&format!("__sv.serialize_field(\"{f}\", {f})?;\n"));
                        }
                        s.push_str("__sv.end()\n},\n");
                    }
                }
            }
            s.push_str("}\n");
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S>(&self, __serializer: __S) -> ::std::result::Result<__S::Ok, __S::Error>\n\
             where __S: ::serde::Serializer {{\n{body}\n}}\n\
         }}"
    )
}
