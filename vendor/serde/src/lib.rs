//! Offline, workspace-local stand-in for [`serde`](https://serde.rs).
//!
//! The build container has no network access and no registry mirror, so the
//! real `serde` cannot be resolved. This crate reimplements exactly the
//! subset of serde's data-model API that the workspace uses: the
//! [`Serialize`]/[`Serializer`] traits (full 27-method serializer surface,
//! as required by `t2opt_core::json`'s JSON serializer), the compound
//! serializer traits, blanket impls for the std types that appear in
//! results (integers, floats, `bool`, `char`, strings, slices, `Vec`,
//! arrays, tuples, `Option`, references, `Box`, `BTreeMap`, `HashMap`), and
//! a minimal `Deserialize`/`Deserializer` pair so `#[derive(Deserialize)]`
//! compiles (nothing in the workspace deserializes through serde).
//!
//! The derive macros come from the sibling `vendor/serde_derive` crate and
//! are re-exported here exactly like the real crate does.

pub mod ser;

pub mod de;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
// Macro-namespace re-export: `#[derive(serde::Serialize)]` resolves the
// derive macro while `serde::Serialize` in type position resolves the trait.
pub use serde_derive::{Deserialize, Serialize};
