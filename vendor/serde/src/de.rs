//! The deserialization half of the data model — declaration-only.
//!
//! Nothing in this workspace deserializes through serde (the autotune
//! result cache parses JSON with its own parser), so this module exists
//! solely to let `#[derive(Deserialize)]` compile. The derived impls
//! return [`Error::custom`] if ever invoked.

use std::fmt::Display;

/// Error trait for deserializers.
pub trait Error: Sized {
    /// Builds an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can (nominally) be deserialized from serde's data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A deserializer over serde's data model. Declaration-only: no driver is
/// provided, and the workspace never constructs one.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;
}
