//! Offline, workspace-local stand-in for `criterion`.
//!
//! Implements the group/`bench_function`/`bench_with_input` API subset this
//! workspace's benches use, with a simple measurement loop: a short warm-up,
//! then `sample_size` timed samples of an adaptively chosen iteration batch.
//! Reports mean ns/iteration (and throughput when configured) on stdout. No
//! statistics engine, no HTML reports — just honest wall-clock numbers so
//! `cargo bench` works offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured-quantity annotation for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new<N: std::fmt::Display, P: std::fmt::Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the best sample, filled by `iter`.
    best_ns_per_iter: f64,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, storing the best (minimum) mean ns/iteration over the
    /// configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and batch sizing: grow the batch until one batch takes
        // ≥ ~1 ms so Instant overhead is negligible.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut best = f64::INFINITY;
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
        }
        self.best_ns_per_iter = best;
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<N: std::fmt::Display, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            best_ns_per_iter: f64::NAN,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(
            &self.name,
            &id.to_string(),
            b.best_ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<N: std::fmt::Display, I, F>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            best_ns_per_iter: f64::NAN,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(
            &self.name,
            &id.to_string(),
            b.best_ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Finishes the group (report flushing is immediate; kept for API
    /// compatibility).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let time = if ns_per_iter >= 1e6 {
        format!("{:.3} ms", ns_per_iter / 1e6)
    } else if ns_per_iter >= 1e3 {
        format!("{:.3} µs", ns_per_iter / 1e3)
    } else {
        format!("{ns_per_iter:.1} ns")
    };
    let thr = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  {:.3} GiB/s", b as f64 / ns_per_iter / 1.073_741_824)
        }
        Some(Throughput::Elements(e)) => {
            format!("  {:.1} Melem/s", e as f64 / ns_per_iter * 1e3)
        }
        None => String::new(),
    };
    println!("{group}/{id}: {time}/iter{thr}");
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<N: std::fmt::Display, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            best_ns_per_iter: f64::NAN,
            sample_size: self.default_sample_size,
        };
        f(&mut b);
        report("criterion", &id.to_string(), b.best_ns_per_iter, None);
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(8));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.finish();
    }
}
