//! Offline, workspace-local stand-in for `parking_lot`, backed by
//! `std::sync`. It reproduces the parking_lot API shape this workspace
//! uses — `Mutex::lock()` returning a guard directly (no `Result`, no
//! poisoning) and `Condvar::wait(&mut guard)` taking the guard by mutable
//! reference — so the pool and kernel code compile unchanged. Poisoned
//! std locks are recovered via `into_inner`, matching parking_lot's
//! poison-free semantics.

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion primitive (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is `Some` except transiently inside
/// [`Condvar::wait`], which must move the std guard through
/// `std::sync::Condvar::wait` by value.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<StdMutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present before wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(std_guard);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        handle.join().unwrap();
        assert!(*started);
    }
}
