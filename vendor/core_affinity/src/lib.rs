//! Offline, workspace-local stand-in for `core_affinity`.
//!
//! Pinning in this workspace is explicitly best-effort (see
//! `t2opt_parallel::placement::pin_current_thread`): the simulator is where
//! placement is exact, the host pool merely *asks* for affinity. On Linux
//! this stand-in performs a real `sched_setaffinity` through a raw syscall
//! (no libc dependency); elsewhere it reports failure and the caller
//! proceeds unpinned.

/// Identifier of one logical CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreId {
    /// OS index of the logical CPU.
    pub id: usize,
}

/// Returns the logical CPUs available to this process, or `None` when the
/// count cannot be determined.
pub fn get_core_ids() -> Option<Vec<CoreId>> {
    let n = std::thread::available_parallelism().ok()?.get();
    Some((0..n).map(|id| CoreId { id }).collect())
}

/// Pins the calling thread to `core`. Returns `true` on success.
pub fn set_for_current(core: CoreId) -> bool {
    imp::set_for_current(core.id)
}

#[cfg(target_os = "linux")]
mod imp {
    pub fn set_for_current(core: usize) -> bool {
        // cpu_set_t is 1024 bits on Linux.
        let mut mask = [0u64; 16];
        if core >= 1024 {
            return false;
        }
        mask[core / 64] |= 1u64 << (core % 64);
        // sched_setaffinity(0, sizeof(mask), &mask)
        let ret: i64;
        unsafe {
            #[cfg(target_arch = "x86_64")]
            {
                std::arch::asm!(
                    "syscall",
                    inlateout("rax") 203i64 => ret, // __NR_sched_setaffinity
                    in("rdi") 0usize,
                    in("rsi") std::mem::size_of_val(&mask),
                    in("rdx") mask.as_ptr(),
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack),
                );
            }
            #[cfg(target_arch = "aarch64")]
            {
                let x0: i64;
                std::arch::asm!(
                    "svc 0",
                    in("x8") 122i64, // __NR_sched_setaffinity
                    inlateout("x0") 0i64 => x0,
                    in("x1") std::mem::size_of_val(&mask),
                    in("x2") mask.as_ptr(),
                    options(nostack),
                );
                ret = x0;
            }
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            {
                let _ = &mask;
                ret = -1;
            }
        }
        ret == 0
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    pub fn set_for_current(_core: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_ids_enumerate() {
        let ids = get_core_ids().expect("parallelism should be known");
        assert!(!ids.is_empty());
        assert_eq!(ids[0].id, 0);
    }

    #[test]
    fn pinning_is_best_effort() {
        if let Some(ids) = get_core_ids() {
            // Must not panic; success depends on the platform.
            let _ = set_for_current(ids[0]);
        }
    }
}
