//! Offline, workspace-local stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`strategy::Strategy`] trait over integer ranges, [`strategy::Just`],
//! tuples, `prop_map`, [`prop_oneof!`] unions, [`collection::vec`] and
//! [`bool::ANY`]; the [`proptest!`], [`prop_assert!`] and
//! [`prop_assert_eq!`] macros. Cases are generated from a deterministic
//! per-test RNG seeded by the test name (xorshift64*), so failures are
//! reproducible run to run. No shrinking: a failing case panics with the
//! sampled values' assertion message directly.

/// Number of random cases run per property.
pub const CASES: usize = 64;

/// Deterministic test RNG (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded with `seed` (0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// FNV-1a hash, used to derive per-test seeds from test names.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: samples and checks [`CASES`] cases, panicking with
/// the case index and message on the first failure.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let mut rng = TestRng::new(fnv1a(name.as_bytes()));
    for i in 0..CASES {
        if let Err(msg) = case(&mut rng) {
            panic!("property `{name}` failed at case {i}/{CASES}: {msg}");
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use std::ops::Range;

    /// Generates values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, f }
        }

        /// Type-erases this strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies (the [`prop_oneof!`] backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range {
        ($($ty:ty),*) => {
            $(impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            })*
        };
    }

    impl_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($ty:ty),*) => {
            $(impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $ty
                }
            })*
        };
    }

    impl_signed_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {
            $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            })*
        };
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s whose length lies in `len` (half-open, like
    /// proptest's `vec(elem, a..b)` size range).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    let __result: ::std::result::Result<(), String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __result
                });
            }
        )*
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10usize..20, y in 0u64..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![Just(1usize), Just(2), Just(3)],
            w in (0usize..4, 0usize..4).prop_map(|(a, b)| a * 4 + b),
        ) {
            prop_assert!((1..=3).contains(&v));
            prop_assert!(w < 16);
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u32..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn bool_any_samples(b in crate::bool::ANY) {
            prop_assert!(b || !b);
        }
    }
}
