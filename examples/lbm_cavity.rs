//! Lid-driven cavity flow with the D3Q19 lattice-Boltzmann solver.
//!
//! The classic validation case for LBM codes: a closed box of fluid whose
//! lid slides sideways, dragging the fluid into a large primary vortex.
//! This exercises the full §2.4 machinery — BGK collision, push
//! propagation, bounce-back walls, a moving-wall boundary, the IvJK data
//! layout and the fused (coalesced) parallel loop — on the host.
//!
//! Run with: `cargo run --release --example lbm_cavity`

use t2opt::prelude::*;
use t2opt_kernels::lbm::{LbmHost, LbmLayout};

fn main() {
    let n = 24;
    let u_lid = 0.08;
    let omega = 1.2;
    let steps = 1200;

    let mut lbm = LbmHost::new(n, LbmLayout::IvJK, omega);
    lbm.cavity(u_lid);

    let pool = ThreadPool::with_placement(8, Placement::Scatter { n_cores: 8 });
    println!("lid-driven cavity {n}³, lid velocity {u_lid}, ω = {omega}, {steps} steps");

    let t0 = std::time::Instant::now();
    for step in 1..=steps {
        // Fused z·y loop — the paper's fix for the "modulo effect".
        lbm.step(&pool, Schedule::Static, true);
        if step % 300 == 0 {
            let (rho, u) = lbm.macroscopic(n / 2, n / 2, n / 2);
            println!(
                "  step {step:5}: center ρ = {rho:.4}, u = ({:+.4}, {:+.4}, {:+.4})",
                u[0], u[1], u[2]
            );
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    let mlups = (n as f64).powi(3) * steps as f64 / dt / 1e6;
    println!("\n{steps} steps in {dt:.2} s = {mlups:.1} MLUPs/s on the host\n");

    // Velocity profile through the cavity center (x-velocity vs height):
    // positive near the moving lid, negative return flow below.
    println!("u_x profile on the vertical center line (z from bottom to lid):");
    let mid = n / 2;
    for z in (1..=n).step_by(2) {
        let (_, u) = lbm.macroscopic(mid, mid, z);
        let col = ((u[0] / u_lid) * 30.0).round() as i32;
        let marker = if col >= 0 {
            format!("{}>", " ".repeat(30 + col.unsigned_abs() as usize))
        } else {
            format!(
                "{}<",
                " ".repeat((30 - col.unsigned_abs() as i32).max(0) as usize)
            )
        };
        println!("  z {z:3}: {:+.4} {}", u[0], marker);
    }

    let (_, u_top) = lbm.macroscopic(mid, mid, n);
    let (_, u_bottom) = lbm.macroscopic(mid, mid, 1);
    assert!(u_top[0] > 0.0, "fluid near the lid must follow it");
    assert!(u_bottom[0] < 0.0, "return flow at the bottom");
    println!("\nprimary vortex established (drag at the lid, return flow below).");
}
