//! Regenerates the FIFO differential-pinning golden file
//! (`tests/golden/policy_fifo.json`) from the matrix defined in
//! `t2opt::golden`.
//!
//! The committed file was captured from the **pre-refactor** engine (before
//! memory-controller arbitration events and `QueuePolicy` existed) and is
//! the ground truth `tests/policy_differential.rs` holds the refactored
//! FIFO path to. Re-run this only when the matrix itself is intentionally
//! extended — never to "fix" a differential failure, which is a real
//! regression in the engine's pinned default behavior.
//!
//! ```text
//! cargo run --release --example policy_golden
//! ```

use t2opt::golden::{run_matrix, GoldenCase, GoldenFile, GOLDEN_PATH};

fn main() {
    let cases: Vec<GoldenCase> = run_matrix()
        .into_iter()
        .map(|(name, stats)| GoldenCase { name, stats })
        .collect();
    eprintln!("captured {} matrix cases", cases.len());
    for c in &cases {
        eprintln!(
            "  {:40} cycles {:8}  misses {:7}  nacks {:6}",
            c.name,
            c.stats.cycles(),
            c.stats.l2_misses,
            c.stats.nacks
        );
    }
    std::fs::create_dir_all("tests/golden").expect("create tests/golden");
    t2opt_core::json::write_json(GOLDEN_PATH, &GoldenFile { cases }).expect("write golden file");
    eprintln!("wrote {GOLDEN_PATH}");
}
