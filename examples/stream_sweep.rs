//! A compact STREAM offset sweep on the simulated T2 — the Fig. 2
//! experiment as an example, small enough to run in seconds.
//!
//! Prints an ASCII rendition of the famous sawtooth: bandwidth vs
//! COMMON-block offset with deep dips every 64 DP words.
//!
//! Run with: `cargo run --release --example stream_sweep`

use t2opt::prelude::*;
use t2opt_kernels::stream::{run_sim, StreamConfig, StreamKernel};

fn main() {
    let chip = ChipConfig::ultrasparc_t2();
    let n = 1 << 20;
    let threads = 64;
    println!("STREAM triad on the simulated T2: N = {n}, {threads} threads\n");
    println!("offset  GB/s");

    let mut results = Vec::new();
    for offset in (0..=128).step_by(4) {
        let cfg = StreamConfig::fig2(n, offset, threads);
        let res = run_sim(&cfg, StreamKernel::Triad, &chip, &Placement::t2_scatter());
        results.push((offset, res.reported_gbs));
    }
    let max = results.iter().map(|&(_, g)| g).fold(0.0, f64::max);
    for (offset, gbs) in &results {
        let bar = "#".repeat((gbs / max * 48.0) as usize);
        let marker = if offset % 64 == 0 {
            " <- ≡ 0 (mod 64): all arrays on one controller"
        } else if offset % 32 == 0 {
            " <- odd multiple of 32: two controllers"
        } else {
            ""
        };
        println!("{offset:6}  {gbs:5.2} {bar}{marker}");
    }

    let min = results
        .iter()
        .map(|&(_, g)| g)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nswing: {min:.2} – {max:.2} GB/s ({:.1}×), period 64 DP words = 512 B",
        max / min
    );
}
