//! Solving a real boundary-value problem with the optimized Jacobi solver.
//!
//! A square plate holds three edges at 0 °C and one edge at 100 °C; the
//! steady-state temperature field satisfies Laplace's equation, which the
//! five-point Jacobi iteration of §2.3 solves. The grid rows live in a
//! `SegArray` with the paper's layout (rows 512 B-aligned, shifted 128 B)
//! and the sweep runs on the worker pool with `static,1` — exactly the
//! configuration Fig. 6 benchmarks, here used for its actual purpose.
//!
//! Run with: `cargo run --release --example jacobi_heat`

use t2opt::prelude::*;
use t2opt_kernels::jacobi::JacobiHost;

fn main() {
    let n = 129;
    let hot = 100.0;
    // Top edge (i = 0) hot, the rest cold.
    let mut solver = JacobiHost::new(n, |i, _j| if i == 0 { hot } else { 0.0 });

    let pool = ThreadPool::with_placement(8, Placement::Scatter { n_cores: 8 });
    let t0 = std::time::Instant::now();
    let mut sweeps = 0;
    loop {
        solver.run(100, &pool, Schedule::StaticChunk(1));
        sweeps += 100;
        let residual = solver.residual();
        if residual < 1e-8 || sweeps >= 100_000 {
            println!(
                "converged after {sweeps} sweeps (residual {residual:.2e}) in {:.2} s",
                t0.elapsed().as_secs_f64()
            );
            break;
        }
    }

    let updates = sweeps as f64 * ((n - 2) * (n - 2)) as f64;
    println!(
        "host performance: {:.1} MLUPs/s\n",
        updates / t0.elapsed().as_secs_f64() / 1e6
    );

    // Temperature profile down the center line: analytic check at the
    // midpoint of the plate. For this boundary configuration the potential
    // at the center is hot/4 (by symmetry of the four-edge decomposition).
    let mid = n / 2;
    println!("temperature down the center column:");
    for i in (0..n).step_by(16) {
        let t = solver.get(i, mid);
        let bar = "#".repeat((t / hot * 50.0) as usize);
        println!("  row {i:4}: {t:7.2} °C  {bar}");
    }
    let center = solver.get(mid, mid);
    println!(
        "\ncenter temperature {center:.2} °C (analytic: {:.2} °C)",
        hot / 4.0
    );
    assert!(
        (center - hot / 4.0).abs() < 1.0,
        "center temperature should approach hot/4"
    );
}
