//! End-to-end autotuning of the Fig. 4 triad offset sweep on the simulated
//! T2: the empirical tuner measures every block offset, ranks them, checks
//! its ranking against the analytic advisor, and demonstrates the warm
//! result cache (a second sweep performs zero new simulations).
//!
//! Run with: `cargo run --release --example autotune`
//! CI-sized: `cargo run --release --example autotune -- --smoke`

use t2opt::prelude::*;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let chip = ChipConfig::ultrasparc_t2();
    // Full fidelity uses arrays far larger than the 4 MB L2 plus a warm-up
    // sweep (the paper's measurement protocol); smoke mode runs cold caches
    // on a small problem — same aliasing physics, seconds of CPU.
    let (n, threads) = if smoke { (1 << 12, 16) } else { (1 << 19, 64) };
    let workload = if smoke {
        Workload::triad_smoke(n, threads)
    } else {
        Workload::triad(n, threads)
    };
    println!("autotuning triad: N = {n}, {threads} threads, offsets 0..512 step 64\n");

    let space = ParamSpace::offset_sweep(64, 512);
    let mut tuner = Tuner::new(workload, chip, space).strategy(SearchStrategy::Exhaustive);

    let report = tuner.run();
    let max = report.best.gbs;
    println!("offset  GB/s   predicted-eff");
    let mut by_offset = report.trials.clone();
    by_offset.sort_by_key(|t| t.spec.block_offset);
    for t in &by_offset {
        let bar = "#".repeat((t.gbs / max * 40.0) as usize);
        println!(
            "{:6}  {:5.2}  {:11.2}  {bar}",
            t.spec.block_offset, t.gbs, t.predicted_efficiency
        );
    }

    println!(
        "\nbest: block_offset {} at {:.2} GB/s ({:.2}x over worst, {} sims, {} cache hits)",
        report.best.spec.block_offset,
        report.best.gbs,
        report.best_over_worst(),
        report.simulations_run,
        report.cache_hits,
    );
    match report.agreement.spearman {
        Some(rho) => println!("advisor agreement: Spearman rho = {rho:.3}"),
        None => println!("advisor agreement: undefined (degenerate sweep)"),
    }
    for d in &report.agreement.divergences {
        println!(
            "  divergence at block_offset {}: measured {:.0}% vs predicted {:.0}% of best",
            d.spec.block_offset,
            d.measured_rel * 100.0,
            d.predicted_rel * 100.0
        );
    }

    // Second invocation: everything is served from the warm cache.
    let rerun = tuner.run();
    println!(
        "\nwarm rerun: {} simulations, {} cache hits (best unchanged: offset {})",
        rerun.simulations_run, rerun.cache_hits, rerun.best.spec.block_offset
    );
    assert_eq!(rerun.simulations_run, 0);
    assert_eq!(rerun.best.spec, report.best.spec);
}
