//! Interactive tour of the analytic layout advisor.
//!
//! Walks the §2.1–2.3 analysis for three kernels (STREAM triad, vector
//! triad, Jacobi rows), printing the predicted controller utilization of
//! candidate layouts and verifying the closed-form suggestions against an
//! exhaustive search — the paper's "no trial and error is required" claim
//! as executable code.
//!
//! Run with: `cargo run --release --example layout_advisor`

use t2opt::prelude::*;
use t2opt_core::advisor::StreamKind;

fn show(advisor: &LayoutAdvisor, label: &str, streams: &[StreamDesc]) {
    let p = advisor.predict(streams);
    println!(
        "  {label:38} efficiency {:>5.2}  bound {:?}  concurrent MCs {:.1}",
        p.efficiency, p.bound, p.concurrent_controllers
    );
}

fn main() {
    let advisor = LayoutAdvisor::t2();
    let map = AddressMap::ultrasparc_t2();
    println!(
        "UltraSPARC T2 mapping: {} controllers, bits {}..{} select the controller,",
        map.num_controllers(),
        map.mc_lo_bit,
        map.mc_lo_bit + map.mc_bits - 1
    );
    println!(
        "bit {} the bank; the map repeats every {} bytes.\n",
        map.bank_lo_bit,
        map.super_line()
    );

    // STREAM triad A = B + s·C with the COMMON-block layout: offsets in DP
    // words move B by 8·k and C by 16·k bytes.
    println!("STREAM triad vs COMMON-block offset (Fig. 2):");
    for k in [0u64, 16, 32, 64] {
        let streams = [
            StreamDesc::write(0),
            StreamDesc::read(k * 8),
            StreamDesc::read(2 * k * 8),
        ];
        show(&advisor, &format!("offset {k} words"), &streams);
    }

    // Vector triad: the advisor's suggestion and its brute-force check.
    println!("\nvector triad A = B + C·D (Fig. 4):");
    let offs = advisor.suggest_offsets(4);
    println!("  suggested offsets: {offs:?}");
    let congruent = [
        StreamDesc::write(0),
        StreamDesc::read(0),
        StreamDesc::read(0),
        StreamDesc::read(0),
    ];
    show(&advisor, "all congruent (align 8k)", &congruent);
    let optimal: Vec<StreamDesc> = offs
        .iter()
        .enumerate()
        .map(|(i, &o)| {
            if i == 0 {
                StreamDesc::write(o as u64)
            } else {
                StreamDesc::read(o as u64)
            }
        })
        .collect();
    show(&advisor, "suggested offsets", &optimal);

    let (search_offs, search_eff) = advisor.search_offsets(
        &[
            StreamKind::Write,
            StreamKind::Read,
            StreamKind::Read,
            StreamKind::Read,
        ],
        64,
    );
    println!(
        "  exhaustive search over 64 B offsets finds {search_offs:?} at efficiency {search_eff:.2}"
    );

    // Jacobi rows: segment alignment + shift.
    println!("\n2-D Jacobi rows (Fig. 6):");
    println!(
        "  suggested seg_align = {} B, shift = {} B",
        advisor.suggest_seg_align(),
        advisor.suggest_shift()
    );
    let spec = LayoutSpec::new()
        .base_align(8192)
        .seg_align(advisor.suggest_seg_align())
        .shift(advisor.suggest_shift());
    let layout = spec.plan(8 * 1024, 8, &SegmentPlan::Sizes(vec![1024; 8]));
    print!("  first 8 rows land on controllers: ");
    for s in 0..8 {
        print!("{} ", map.controller(layout.seg_byte_starts[s] as u64));
    }
    println!("\n  → successive rows rotate through all four controllers, as designed.");
}
