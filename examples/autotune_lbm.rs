//! Autotuning the Fig. 7 D3Q19 LBM propagation step: the empirical tuner
//! sweeps padding/shift candidates for both propagation-optimized layouts
//! and rediscovers the paper's asymmetry — IJKv (velocity-major blocks,
//! fully aliased velocity stride at d = 36) demands inter-block padding,
//! while IvJK (velocity-interleaved pencils) skews the controllers
//! naturally and runs near-optimally packed.
//!
//! Run with: `cargo run --release --example autotune_lbm`
//! Larger:   `cargo run --release --example autotune_lbm -- --full`
//!
//! The second half re-runs the IJKv search with seeded simulated
//! annealing and shows it converging to the same winner as the
//! exhaustive sweep.

use t2opt::kernels::lbm::LbmLayout;
use t2opt::prelude::*;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let chip = ChipConfig::ultrasparc_t2();
    // n = 34 gives a d = 36 padded box: the IJKv velocity stride is
    // 36³ · 8 B = 729 · 512 B ≡ 0 (mod 512) — every velocity block lands
    // on the same controller phase, the worst case of Fig. 7.
    let (n, threads) = if full { (34, 64) } else { (34, 16) };
    println!("autotuning D3Q19 LBM: {n}³ interior, {threads} threads\n");

    let tune = |layout, strategy| {
        let workload = if full {
            Workload::lbm(n, layout, threads)
        } else {
            Workload::lbm_smoke(n, layout, threads)
        };
        Tuner::new(workload, chip.clone(), ParamSpace::lbm_padding_sweep())
            .strategy(strategy)
            .pool_threads(4)
            .run()
    };

    let packed = LayoutSpec::new().base_align(8192);
    let mut reports = Vec::new();
    for layout in [LbmLayout::IJKv, LbmLayout::IvJK] {
        let report = tune(layout, SearchStrategy::Exhaustive);
        println!("{layout:?}: seg_align shift block_offset  GB/s");
        for t in &report.trials {
            println!(
                "  {:8} {:5} {:12}  {:.3}",
                t.spec.seg_align, t.spec.shift, t.spec.block_offset, t.gbs
            );
        }
        println!(
            "  best shift {} / offset {} at {:.3} GB/s; packed costs {:.1}%\n",
            report.best.spec.shift,
            report.best.spec.block_offset,
            report.best.gbs,
            (report.speedup_over(&packed).unwrap() - 1.0) * 100.0,
        );
        reports.push(report);
    }
    println!(
        "Fig. 7 asymmetry: IJKv wants shift {} (aliased stride), IvJK shift {} (natural skew)\n",
        reports[0].best.spec.shift, reports[1].best.spec.shift
    );

    // A seeded annealing run walks a fraction of the grid yet lands on the
    // exhaustive winner — and with a fixed seed it is fully reproducible.
    let annealed = tune(LbmLayout::IJKv, SearchStrategy::simulated_annealing(42));
    println!(
        "annealed IJKv (seed 42): best {:?} at {:.3} GB/s after {} simulations",
        annealed.best.spec, annealed.best.gbs, annealed.simulations_run
    );
    assert_eq!(annealed.best.spec, reports[0].best.spec);
}
