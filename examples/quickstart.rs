//! Quickstart: the full t2opt workflow in one file.
//!
//! 1. Ask the [`LayoutAdvisor`] how to spread a kernel's streams across the
//!    UltraSPARC T2's four memory controllers — analytically, no trial and
//!    error.
//! 2. Build [`SegArray`]s with those byte offsets and run a real (host)
//!    vector triad through the segmented-iterator machinery.
//! 3. Replay the same kernel on the T2 simulator with the bad and the good
//!    layout and watch the memory-controller aliasing appear and vanish.
//!
//! Run with: `cargo run --release --example quickstart`

use t2opt::prelude::*;
use t2opt_core::iter::seg_zip4;
use t2opt_kernels::triad::{run_sim, TriadConfig, TriadLayout};

fn main() {
    // ------------------------------------------------------------------
    // 1. Analyze: what does the mapping do to a vector triad A = B + C·D?
    // ------------------------------------------------------------------
    let advisor = LayoutAdvisor::t2();
    let congruent = [
        StreamDesc::write(0),
        StreamDesc::read(0),
        StreamDesc::read(0),
        StreamDesc::read(0),
    ];
    let bad = advisor.predict(&congruent);
    println!("all arrays congruent mod 512 B:");
    println!(
        "  efficiency {:.2}, bound {:?}, {} controller(s) concurrently busy",
        bad.efficiency, bad.bound, bad.concurrent_controllers
    );

    let offsets = advisor.suggest_offsets(4);
    println!("advisor suggests byte offsets {offsets:?} (the paper's 0/128/256/384)");
    let spread: Vec<StreamDesc> = offsets
        .iter()
        .enumerate()
        .map(|(i, &o)| {
            if i == 0 {
                StreamDesc::write(o as u64)
            } else {
                StreamDesc::read(o as u64)
            }
        })
        .collect();
    let good = advisor.predict(&spread);
    println!("with suggested offsets:");
    println!(
        "  efficiency {:.2}, bound {:?}, {} controller(s) concurrently busy\n",
        good.efficiency, good.bound, good.concurrent_controllers
    );

    // ------------------------------------------------------------------
    // 2. Build segmented arrays with that layout and run on the host.
    // ------------------------------------------------------------------
    let n = 1 << 20;
    let threads = 8;
    let mk = |offset: usize| {
        SegArray::<f64>::builder(n)
            .segments(threads)
            .base_align(8192)
            .block_offset(offset)
            .build()
    };
    let mut a = mk(offsets[0]);
    let mut b = mk(offsets[1]);
    let mut c = mk(offsets[2]);
    let mut d = mk(offsets[3]);
    b.fill(1.5);
    c.fill(2.0);
    d.fill(0.25);

    let t0 = std::time::Instant::now();
    seg_zip4(&mut a, &b, &c, &d, |a, b, c, d| {
        for i in 0..a.len() {
            a[i] = b[i] + c[i] * d[i];
        }
    });
    let dt = t0.elapsed();
    assert_eq!(a.get(12345), 1.5 + 2.0 * 0.25);
    println!(
        "host triad over {} elements in {} segments: {:.2} ms ({:.2} GB/s)\n",
        n,
        a.num_segments(),
        dt.as_secs_f64() * 1e3,
        n as f64 * 32.0 / dt.as_secs_f64() / 1e9
    );

    // ------------------------------------------------------------------
    // 3. Replay on the simulated T2: aliased vs optimized layout.
    // ------------------------------------------------------------------
    println!("simulated UltraSPARC T2, 64 threads, vector triad:");
    for layout in [TriadLayout::Align8k, TriadLayout::AlignOffset(128)] {
        let cfg = TriadConfig {
            n: 1 << 19,
            layout,
            threads: 64,
            ntimes: 1,
        };
        let res = run_sim(&cfg, &ChipConfig::ultrasparc_t2(), &Placement::t2_scatter());
        println!("  {:22} {:>6.2} GB/s", layout.label(), res.gbs);
    }
    println!("\nThe 8 kB-aligned case piles every stream onto one memory controller;");
    println!("the 128-byte offsets spread them over all four — the paper's Fig. 4.");
}
