//! Time-resolved telemetry on the simulated T2: trace the same STREAM
//! triad twice — once with the arrays congruent mod 512 B (the Fig. 2
//! worst case, all streams convoying on one memory controller at a time)
//! and once at the advisor's 128 B relative offset — and show how the
//! per-window controller heatmap and the aliasing report tell them apart
//! even though both runs move the same total bytes per controller.
//!
//! Run with: `cargo run --release --example telemetry`

use t2opt::kernels::stream::{self, StreamConfig, StreamKernel};
use t2opt::prelude::*;

fn traced(offset: usize, label: &str) {
    let chip = ChipConfig::ultrasparc_t2();
    let cfg = StreamConfig::fig2(1 << 18, offset, 64);
    let (res, timeline) = stream::run_sim_traced(
        &cfg,
        StreamKernel::Triad,
        &chip,
        &Placement::t2_scatter(),
        4096,
    );
    println!("== {label} (offset {offset}) ==");
    println!(
        "reported {:.2} GB/s, run-total mc_balance {:.2}",
        res.reported_gbs, res.mc_balance
    );
    print!("{}", ascii_heatmap(&timeline, 72));
    let report = AliasReport::analyze(&timeline, &AliasConfig::default());
    println!("{}\n", report.summary());
}

fn main() {
    // Offset 0: A, B, C bases all ≡ 0 mod 512 — the controller convoy.
    traced(0, "aliased");
    // Offset 16 DP words = 128 B: consecutive arrays land on consecutive
    // controllers (the paper's optimum).
    traced(16, "advisor-spread");
}
