//! # t2opt — data access optimizations for highly threaded multi-core CPUs
//! with multiple memory controllers
//!
//! A production-quality Rust reproduction of Hager, Zeiser & Wellein,
//! *"Data Access Optimizations for Highly Threaded Multi-Core CPUs with
//! Multiple Memory Controllers"* (2008, arXiv:0712.2302), including a
//! discrete-event simulator of the Sun UltraSPARC T2 memory subsystem the
//! paper measured on.
//!
//! This facade crate re-exports the five member crates:
//!
//! * [`core`](t2opt_core) — segmented arrays with byte-exact layout
//!   control (alignment / padding / shift / offset, Fig. 3), segmented
//!   iterators, and the analytic memory-controller layout advisor;
//! * [`sim`](t2opt_sim) — the UltraSPARC T2 memory-system simulator
//!   (banked L2, four memory controllers, bits-8:7 interleave);
//! * [`parallel`](t2opt_parallel) — an OpenMP-style thread pool with
//!   static/dynamic/guided schedules, placement (pinning) and loop
//!   coalescing;
//! * [`kernels`](t2opt_kernels) — STREAM, vector triad, 2-D Jacobi and
//!   D3Q19 lattice-Boltzmann, as host code and as simulator traces;
//! * [`autotune`](t2opt_autotune) — the empirical counterpart to the
//!   analytic advisor: searches the layout space by running batched
//!   simulator trials in parallel, with a persistent result cache and an
//!   advisor-agreement cross-check;
//! * [`telemetry`](t2opt_telemetry) — zero-cost-when-disabled counters,
//!   histograms and spans, time-resolved simulator timelines with
//!   MC-imbalance (aliasing) diagnostics, and Chrome-trace / JSON-lines /
//!   ASCII-heatmap exporters.
//!
//! ## Quickstart
//!
//! ```
//! use t2opt::prelude::*;
//!
//! // Ask the advisor for offsets that spread four streams over the T2's
//! // four memory controllers, and build arrays accordingly.
//! let advisor = LayoutAdvisor::t2();
//! let offsets = advisor.suggest_offsets(4);
//! assert_eq!(offsets, vec![0, 128, 256, 384]);
//!
//! let a = SegArray::<f64>::builder(1 << 16)
//!     .segments(8)
//!     .base_align(8192)
//!     .block_offset(offsets[1])
//!     .build();
//! assert_eq!(a.base_addr() % 8192, 0);
//! ```

pub mod golden;

pub use t2opt_autotune as autotune;
pub use t2opt_core as core;
pub use t2opt_kernels as kernels;
pub use t2opt_parallel as parallel;
pub use t2opt_sim as sim;
pub use t2opt_telemetry as telemetry;

/// One-stop imports for the common types of all member crates.
pub mod prelude {
    pub use t2opt_autotune::prelude::*;
    pub use t2opt_core::prelude::*;
    pub use t2opt_parallel::{Coalesce2, Coalesce3, Placement, Schedule, ThreadPool};
    pub use t2opt_sim::prelude::*;
    pub use t2opt_telemetry::prelude::*;
}
