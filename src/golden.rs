//! The FIFO differential-pinning matrix.
//!
//! The `QueuePolicy` refactor (DESIGN.md §13) moved memory-controller
//! service-time decisions out of the enqueue path and into an arbitration
//! step, with the historical FIFO discipline as the pinned default. The
//! contract is *bitwise* equality: under `PolicyKind::Fifo` every
//! [`SimStats`] field must match the pre-refactor engine exactly, on every
//! registered chip preset, for read-heavy and write-heavy workloads, on
//! both the probe-off and the traced path.
//!
//! This module defines that matrix once, for two consumers:
//!
//! * `examples/policy_golden.rs` regenerates `tests/golden/policy_fifo.json`
//!   (run it only when the matrix itself is *intentionally* extended — the
//!   committed file was captured from the pre-refactor engine and is the
//!   ground truth the refactor is held to);
//! * `tests/policy_differential.rs` re-runs the matrix and compares against
//!   the committed file field by field.
//!
//! The matrix shrinks each preset's L2 to 256 KiB so the 3 × 256 KiB STREAM
//! arrays overflow it and the memory controllers — the refactored layer —
//! see real traffic at a tier-1-friendly problem size. The aliasing lives
//! in the controller mapping, which the cache size does not touch. Two
//! stock-T2 cases (the Fig. 4 layout extremes at 64 threads) cover the
//! unshrunk calibrated machine.

use t2opt_core::chip::PRESET_NAMES;
use t2opt_core::json::JsonValue;
use t2opt_kernels::stream::{self, StreamConfig, StreamKernel};
use t2opt_kernels::triad::{self, TriadConfig, TriadLayout};
use t2opt_parallel::Placement;
use t2opt_sim::{ChipConfig, SimStats};

/// Where the committed pre-refactor capture lives, relative to the
/// workspace root.
pub const GOLDEN_PATH: &str = "tests/golden/policy_fifo.json";

/// Serialized envelope of one matrix capture.
#[derive(serde::Serialize)]
pub struct GoldenFile {
    /// All matrix cases, in matrix order.
    pub cases: Vec<GoldenCase>,
}

/// One (workload, chip) cell of the matrix.
#[derive(serde::Serialize)]
pub struct GoldenCase {
    /// Stable case name, `<preset>/<workload>`.
    pub name: String,
    /// The statistics the FIFO engine produced for it.
    pub stats: SimStats,
}

/// The preset config with the L2 shrunk to 256 KiB (see module docs).
fn shrunk(preset: &str) -> ChipConfig {
    let mut c = ChipConfig::preset(preset).expect("registry preset resolves");
    c.l2.bytes = 1 << 18;
    c
}

fn scatter(chip: &ChipConfig) -> Placement {
    Placement::Scatter {
        n_cores: chip.core.n_cores,
    }
}

/// Runs the full matrix and returns `(name, stats)` per case.
pub fn run_matrix() -> Vec<(String, SimStats)> {
    let mut out = Vec::new();
    for preset in PRESET_NAMES {
        // The golden file is a *pre-NUMA* capture: it pins the single-socket
        // engine bitwise. NUMA presets are covered by their own suites
        // (`tests/chip_matrix.rs`, the engine unit tests) — including them
        // here would change the committed matrix, not pin it.
        if t2opt_core::chip::ChipSpec::preset(preset)
            .expect("registry preset resolves")
            .sockets
            .is_numa()
        {
            continue;
        }
        let chip = shrunk(preset);
        let threads = chip.max_threads().min(16);
        let run = |kernel, offset: usize| {
            stream::run_sim(
                &StreamConfig::fig2(1 << 15, offset, threads),
                kernel,
                &chip,
                &scatter(&chip),
            )
            .stats
        };
        // Read-heavy, fully aliased / advisor-spread, plus a write-heavy
        // kernel: the three MC service regimes (north-bound convoy, spread
        // pipelining, south-bound pressure).
        out.push((
            format!("{preset}/triad-aliased"),
            run(StreamKernel::Triad, 0),
        ));
        out.push((
            format!("{preset}/triad-spread"),
            run(StreamKernel::Triad, 16),
        ));
        out.push((format!("{preset}/copy-8"), run(StreamKernel::Copy, 8)));
        // The probe path: a traced run must produce the same statistics.
        let (traced, _) = stream::run_sim_traced(
            &StreamConfig::fig2(1 << 15, 0, threads),
            StreamKernel::Triad,
            &chip,
            &scatter(&chip),
            4096,
        );
        out.push((format!("{preset}/triad-aliased-traced"), traced.stats));
    }
    // Stock calibrated T2 at full thread count: the Fig. 4 layout extremes.
    let chip = ChipConfig::ultrasparc_t2();
    for (label, layout) in [
        ("align8k", TriadLayout::Align8k),
        ("offset128", TriadLayout::AlignOffset(128)),
    ] {
        let cfg = TriadConfig {
            n: 1 << 14,
            layout,
            threads: 64,
            ntimes: 1,
        };
        out.push((
            format!("t2-stock/triad64-{label}"),
            triad::run_sim(&cfg, &chip, &Placement::t2_scatter()).stats,
        ));
    }
    out
}

fn field_u64(obj: &JsonValue, key: &str) -> u64 {
    obj.as_object()
        .and_then(|o| o.get(key))
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("golden stats missing u64 field {key:?}")) as u64
}

fn field_vec(obj: &JsonValue, key: &str) -> Vec<u64> {
    obj.as_object()
        .and_then(|o| o.get(key))
        .and_then(JsonValue::as_array)
        .unwrap_or_else(|| panic!("golden stats missing array field {key:?}"))
        .iter()
        .map(|v| v.as_f64().expect("numeric array element") as u64)
        .collect()
}

/// Reconstructs a [`SimStats`] from its golden JSON object. Every field is
/// named explicitly: if `SimStats` grows a counter, this fails to reflect
/// it and the differential test's `PartialEq` flags the drift instead of
/// silently defaulting it.
pub fn stats_from_json(v: &JsonValue) -> SimStats {
    SimStats {
        start_cycle: field_u64(v, "start_cycle"),
        end_cycle: field_u64(v, "end_cycle"),
        mc_read_bytes: field_vec(v, "mc_read_bytes"),
        mc_write_bytes: field_vec(v, "mc_write_bytes"),
        mc_busy_cycles: field_vec(v, "mc_busy_cycles"),
        l2_hits: field_u64(v, "l2_hits"),
        l2_misses: field_u64(v, "l2_misses"),
        l2_writebacks: field_u64(v, "l2_writebacks"),
        bank_accesses: field_vec(v, "bank_accesses"),
        mem_ops: field_u64(v, "mem_ops"),
        nacks: field_u64(v, "nacks"),
        flops: field_u64(v, "flops"),
    }
}

/// Loads the committed golden file as `(name, stats)` pairs.
pub fn load_golden(path: &std::path::Path) -> Vec<(String, SimStats)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read golden file {}: {e}", path.display()));
    let doc = t2opt_core::json::parse_json(&text).expect("golden file parses");
    let cases = doc
        .as_object()
        .and_then(|o| o.get("cases"))
        .and_then(JsonValue::as_array)
        .expect("golden file has a cases array");
    cases
        .iter()
        .map(|c| {
            let obj = c.as_object().expect("case is an object");
            let name = obj
                .get("name")
                .and_then(JsonValue::as_str)
                .expect("case has a name")
                .to_string();
            let stats = stats_from_json(obj.get("stats").expect("case has stats"));
            (name, stats)
        })
        .collect()
}
