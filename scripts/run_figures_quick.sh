#!/usr/bin/env bash
# Tight-budget variant of run_figures.sh for slow (single-core) hosts.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

run() {
    local out="$1" bin="$2"; shift 2
    echo "=== $out: $bin $* ==="
    cargo run --release -p t2opt-bench --bin "$bin" -- "$@" \
        --json "results/$out.json" | tee "results/$out.txt"
}

run fig4_triad fig4_triad --lo 2000000 --hi 2000064 --step 8
run fig5_overhead fig5_overhead --sim
run fig6_jacobi fig6_jacobi
run fig7_lbm fig7_lbm --precision both --hi 128 --step 32
run ablation_mapping ablation_mapping
run ablation_outstanding ablation_outstanding --n 1048576
run ablation_schedule ablation_schedule --n 512,1024
echo ALL_QUICK_FIGURES_DONE
