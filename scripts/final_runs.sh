#!/usr/bin/env bash
set -uo pipefail
cd /root/repo
cargo test --workspace --release 2>&1 | tee /root/repo/test_output.txt | grep -E "test result|FAILED" | tail -30
echo "==== TESTS TEED ===="
cargo bench --workspace -- --warm-up-time 1 --measurement-time 2 2>&1 | tee /root/repo/bench_output.txt | grep -E "time:|thrpt:|Benchmarking .* complete" | tail -40
echo "==== BENCH TEED ===="
