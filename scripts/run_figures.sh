#!/usr/bin/env bash
# Regenerates every paper figure's data series (scaled default sizes) and
# stores the outputs under results/. Pass --full for paper-scale runs.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL="${1:-}"
mkdir -p results

run() {
    local out="$1" bin="$2"; shift 2
    echo "=== $out: $bin $* ==="
    cargo run --release -p t2opt-bench --bin "$bin" -- "$@" \
        --json "results/$out.json" | tee "results/$out.txt"
}

cargo build --release -p t2opt-bench

run fig2_triad fig2_stream $FULL
run fig2_copy fig2_stream --kernel copy --threads 64 $FULL
run fig2_threads fig2_stream --compare-threads
run fig4_triad fig4_triad $FULL
run fig5_overhead fig5_overhead --sim
run fig6_jacobi fig6_jacobi $FULL
run fig7_lbm fig7_lbm --precision both $FULL
run ablation_mapping ablation_mapping
run ablation_outstanding ablation_outstanding
run ablation_schedule ablation_schedule

echo "All figure data written to results/"
