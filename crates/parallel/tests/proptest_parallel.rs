//! Property-based tests for schedules, coalescing and the pool.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use t2opt_parallel::schedule::{assert_exact_cover, ChunkCursor};
use t2opt_parallel::{chunk_assignment, Coalesce2, Coalesce3, Schedule, ThreadPool};

proptest! {
    /// Static schedules cover every iteration exactly once for arbitrary
    /// (n, t, chunk).
    #[test]
    fn static_schedules_exact_cover(
        n in 0usize..5_000,
        t in 1usize..70,
        chunk in 1usize..100,
    ) {
        let a = chunk_assignment(Schedule::Static, n, t);
        assert_exact_cover(&a, n);
        let a = chunk_assignment(Schedule::StaticChunk(chunk), n, t);
        assert_exact_cover(&a, n);
    }

    /// Static split sizes differ by at most one (the ⌊N/t⌋ / ⌊N/t⌋+1 law).
    #[test]
    fn static_split_is_balanced(n in 0usize..10_000, t in 1usize..100) {
        let a = chunk_assignment(Schedule::Static, n, t);
        let sizes: Vec<usize> = a.iter().map(|c| c.iter().map(|ch| ch.len()).sum()).collect();
        let max = sizes.iter().copied().max().unwrap();
        let min = sizes.iter().copied().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Dynamic and guided cursors dispense every iteration exactly once.
    #[test]
    fn cursors_exact_cover(
        n in 0usize..3_000,
        t in 1usize..32,
        chunk in 1usize..50,
        guided in proptest::bool::ANY,
    ) {
        let schedule = if guided { Schedule::Guided(chunk) } else { Schedule::Dynamic(chunk) };
        let cur = ChunkCursor::new(schedule, n, t);
        let mut seen = vec![false; n];
        while let Some(ch) = cur.claim(0) {
            for i in ch.range() {
                prop_assert!(!seen[i], "iteration {} dispensed twice", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Coalesce2/3 are bijections between the flat space and index tuples.
    #[test]
    fn coalesce_bijections(n1 in 1usize..30, n2 in 1usize..30, n3 in 1usize..20) {
        let c2 = Coalesce2::new(n1, n2);
        for flat in 0..c2.len() {
            let (i, j) = c2.decode(flat);
            prop_assert_eq!(c2.encode(i, j), flat);
        }
        let c3 = Coalesce3::new(n1, n2, n3);
        for flat in (0..c3.len()).step_by(7) {
            let (i, j, k) = c3.decode(flat);
            prop_assert_eq!(c3.encode(i, j, k), flat);
        }
    }
}

/// Pool execution visits every index exactly once, for a sampling of
/// schedules and team sizes (kept small: spawns threads).
#[test]
fn pool_visits_everything_once() {
    for &(threads, n, schedule) in &[
        (3usize, 1000usize, Schedule::Static),
        (7, 999, Schedule::StaticChunk(5)),
        (4, 1234, Schedule::Dynamic(7)),
        (5, 777, Schedule::Guided(3)),
    ] {
        let pool = ThreadPool::new(threads);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..n, schedule, |_tid, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "schedule {schedule:?} on {threads} threads missed or repeated an index"
        );
    }
}
