//! OpenMP-style loop schedules.
//!
//! The paper's experiments hinge on the iteration→thread map: STREAM uses
//! `schedule(static)` (one contiguous chunk per thread), the Jacobi solver
//! *requires* `schedule(static,1)` (round-robin rows, §2.3: "an OpenMP
//! schedule of 'static,1' has to be used for optimal performance... the 4 MB
//! L2 cache of the processor is too small to accommodate a sufficient number
//! of rows when using 64 threads if the addresses are too far apart"), and
//! the LBM section discusses the "modulo effect" that arises when the chunk
//! sizes of a static schedule don't divide evenly.
//!
//! [`Schedule`] describes the policy; [`chunk_assignment`] materializes the
//! full per-thread chunk lists for the *deterministic* schedules (used both
//! by the host pool and to generate simulator traces); the dynamic/guided
//! schedules are claimed at runtime through [`ChunkCursor`].

use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An OpenMP-style loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// `schedule(static)`: iterations divided into one contiguous,
    /// near-equal chunk per thread (sizes ⌊N/t⌋+1 for the first `N mod t`
    /// threads, ⌊N/t⌋ for the rest).
    Static,
    /// `schedule(static,c)`: chunks of `c` iterations dealt round-robin;
    /// chunk `k` goes to thread `k mod t`. `StaticChunk(1)` is the paper's
    /// `static,1`.
    StaticChunk(usize),
    /// `schedule(dynamic,c)`: chunks of `c` claimed by whichever thread is
    /// free.
    Dynamic(usize),
    /// `schedule(guided,c)`: exponentially shrinking chunks (remaining / t,
    /// floored at `c`), claimed dynamically.
    Guided(usize),
}

impl Schedule {
    /// Whether the iteration→thread map is fixed before execution.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Schedule::Static | Schedule::StaticChunk(_))
    }
}

/// A contiguous range of iterations assigned to one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First iteration index.
    pub start: usize,
    /// One past the last iteration index.
    pub end: usize,
}

impl Chunk {
    /// The chunk as a `Range`.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Number of iterations in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Materializes the per-thread chunk lists of a deterministic schedule for
/// `n` iterations on `t` threads. Every iteration appears in exactly one
/// chunk of exactly one thread, in increasing order per thread.
///
/// # Panics
/// Panics for [`Schedule::Dynamic`]/[`Schedule::Guided`] (not deterministic)
/// and for `t == 0` or a zero chunk size.
pub fn chunk_assignment(schedule: Schedule, n: usize, t: usize) -> Vec<Vec<Chunk>> {
    assert!(t > 0, "need at least one thread");
    let mut per_thread: Vec<Vec<Chunk>> = vec![Vec::new(); t];
    match schedule {
        Schedule::Static => {
            let base = n / t;
            let rem = n % t;
            let mut start = 0;
            for (tid, chunks) in per_thread.iter_mut().enumerate() {
                let len = base + usize::from(tid < rem);
                if len > 0 {
                    chunks.push(Chunk {
                        start,
                        end: start + len,
                    });
                }
                start += len;
            }
            debug_assert_eq!(start, n);
        }
        Schedule::StaticChunk(c) => {
            assert!(c > 0, "chunk size must be positive");
            let mut start = 0;
            let mut k = 0usize;
            while start < n {
                let end = (start + c).min(n);
                per_thread[k % t].push(Chunk { start, end });
                start = end;
                k += 1;
            }
        }
        Schedule::Dynamic(_) | Schedule::Guided(_) => {
            panic!("dynamic/guided schedules have no static assignment; use ChunkCursor")
        }
    }
    per_thread
}

/// Runtime chunk dispenser for dynamic and guided schedules (also handles
/// the deterministic ones for uniformity inside the pool).
pub struct ChunkCursor {
    n: usize,
    t: usize,
    schedule: Schedule,
    next: AtomicUsize,
}

impl ChunkCursor {
    /// A cursor over `n` iterations for `t` threads.
    pub fn new(schedule: Schedule, n: usize, t: usize) -> Self {
        assert!(t > 0);
        if let Schedule::Dynamic(c) | Schedule::Guided(c) = schedule {
            assert!(c > 0, "chunk size must be positive");
        }
        ChunkCursor {
            n,
            t,
            schedule,
            next: AtomicUsize::new(0),
        }
    }

    /// Claims the next chunk for `tid`, or `None` when the loop is
    /// exhausted. For static schedules the result depends only on `tid` and
    /// the claim count; for dynamic/guided it is first come, first served.
    pub fn claim(&self, _tid: usize) -> Option<Chunk> {
        match self.schedule {
            Schedule::Dynamic(c) => {
                let start = self.next.fetch_add(c, Ordering::Relaxed);
                if start >= self.n {
                    return None;
                }
                Some(Chunk {
                    start,
                    end: (start + c).min(self.n),
                })
            }
            Schedule::Guided(min) => loop {
                let start = self.next.load(Ordering::Relaxed);
                if start >= self.n {
                    return None;
                }
                let remaining = self.n - start;
                let size = (remaining / self.t).max(min).min(remaining);
                if self
                    .next
                    .compare_exchange_weak(
                        start,
                        start + size,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return Some(Chunk {
                        start,
                        end: start + size,
                    });
                }
            },
            Schedule::Static | Schedule::StaticChunk(_) => {
                panic!("static schedules are pre-assigned; use chunk_assignment")
            }
        }
    }
}

/// Validates that an assignment covers `0..n` exactly once (test helper,
/// exported for reuse in integration tests and the simulator).
pub fn assert_exact_cover(assignment: &[Vec<Chunk>], n: usize) {
    let mut seen = vec![false; n];
    for chunks in assignment {
        for ch in chunks {
            assert!(ch.end <= n, "chunk {ch:?} exceeds n={n}");
            for i in ch.range() {
                assert!(!seen[i], "iteration {i} assigned twice");
                seen[i] = true;
            }
        }
    }
    assert!(seen.iter().all(|&s| s), "not all iterations covered");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_split_matches_paper_rule() {
        // ⌊N/t⌋+1 for the first N mod t threads, ⌊N/t⌋ for the rest.
        let a = chunk_assignment(Schedule::Static, 100, 8);
        let sizes: Vec<usize> = a.iter().map(|c| c.iter().map(Chunk::len).sum()).collect();
        assert_eq!(sizes, vec![13, 13, 13, 13, 12, 12, 12, 12]);
        assert_exact_cover(&a, 100);
    }

    #[test]
    fn static_chunks_are_contiguous_per_thread() {
        let a = chunk_assignment(Schedule::Static, 64, 4);
        for (tid, chunks) in a.iter().enumerate() {
            assert_eq!(chunks.len(), 1, "thread {tid}");
            assert_eq!(chunks[0].len(), 16);
        }
    }

    #[test]
    fn static_one_is_round_robin() {
        // The paper's "static,1": thread i gets rows i, i+t, i+2t, ...
        let a = chunk_assignment(Schedule::StaticChunk(1), 10, 4);
        let thread0: Vec<usize> = a[0].iter().map(|c| c.start).collect();
        assert_eq!(thread0, vec![0, 4, 8]);
        let thread3: Vec<usize> = a[3].iter().map(|c| c.start).collect();
        assert_eq!(thread3, vec![3, 7]);
        assert_exact_cover(&a, 10);
    }

    #[test]
    fn static_chunk_respects_chunk_size() {
        let a = chunk_assignment(Schedule::StaticChunk(8), 100, 3);
        assert_exact_cover(&a, 100);
        for chunks in &a {
            for ch in chunks {
                assert!(ch.len() <= 8);
            }
        }
        // Last chunk is the remainder.
        let all: Vec<Chunk> = {
            let mut v: Vec<Chunk> = a.iter().flatten().copied().collect();
            v.sort_by_key(|c| c.start);
            v
        };
        assert_eq!(all.last().unwrap().len(), 100 % 8);
    }

    #[test]
    fn more_threads_than_iterations() {
        let a = chunk_assignment(Schedule::Static, 3, 8);
        assert_exact_cover(&a, 3);
        let nonempty = a.iter().filter(|c| !c.is_empty()).count();
        assert_eq!(nonempty, 3);
    }

    #[test]
    fn zero_iterations() {
        let a = chunk_assignment(Schedule::Static, 0, 4);
        assert!(a.iter().all(|c| c.is_empty()));
        let a = chunk_assignment(Schedule::StaticChunk(4), 0, 4);
        assert!(a.iter().all(|c| c.is_empty()));
    }

    #[test]
    fn dynamic_cursor_covers_exactly() {
        let cur = ChunkCursor::new(Schedule::Dynamic(7), 100, 4);
        let mut seen = [false; 100];
        while let Some(ch) = cur.claim(0) {
            for i in ch.range() {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn guided_chunks_shrink() {
        let cur = ChunkCursor::new(Schedule::Guided(4), 1000, 4);
        let mut sizes = Vec::new();
        while let Some(ch) = cur.claim(0) {
            sizes.push(ch.len());
        }
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        // Non-increasing and floored at the minimum (except possibly the
        // final remainder).
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0], "guided chunks must shrink: {sizes:?}");
        }
        assert_eq!(sizes[0], 250);
        for &s in &sizes[..sizes.len() - 1] {
            assert!(s >= 4);
        }
    }

    #[test]
    fn dynamic_cursor_concurrent_exact_cover() {
        use std::sync::Arc;
        let cur = Arc::new(ChunkCursor::new(Schedule::Dynamic(3), 10_000, 8));
        let counters: Vec<_> = (0..8)
            .map(|tid| {
                let cur = Arc::clone(&cur);
                std::thread::spawn(move || {
                    let mut count = 0usize;
                    while let Some(ch) = cur.claim(tid) {
                        count += ch.len();
                    }
                    count
                })
            })
            .collect();
        let total: usize = counters.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    #[should_panic(expected = "dynamic/guided")]
    fn dynamic_has_no_static_assignment() {
        chunk_assignment(Schedule::Dynamic(1), 10, 2);
    }

    #[test]
    fn modulo_effect_imbalance_visible() {
        // The LBM §2.4 sawtooth: N=129 planes on 64 threads gives some
        // threads 3 planes and most 2 — a 1.5× imbalance that the fused
        // (coalesced) loop removes.
        let a = chunk_assignment(Schedule::Static, 129, 64);
        let sizes: Vec<usize> = a.iter().map(|c| c.iter().map(Chunk::len).sum()).collect();
        assert_eq!(*sizes.iter().max().unwrap(), 3);
        assert_eq!(*sizes.iter().min().unwrap(), 2);
    }
}
