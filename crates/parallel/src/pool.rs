//! A persistent, pinnable worker-thread pool with OpenMP-style
//! `parallel_for`.
//!
//! The pool is created once with a fixed team size (and optionally a
//! [`Placement`]), mirroring OpenMP's thread team: work is broadcast to all
//! workers, the caller blocks until the team finishes (an implicit barrier,
//! like the end of an `omp parallel for`). Keeping the team alive across
//! loops is essential for the small-N end of the Fig. 5 overhead
//! measurement — thread creation would otherwise dominate.

use crate::placement::{pin_current_thread, Placement};
use crate::schedule::{chunk_assignment, Chunk, ChunkCursor, Schedule};
use parking_lot::{Condvar, Mutex};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use t2opt_telemetry::metrics::{Counter, Histogram, HistogramSnapshot};

/// Type-erased pointer to the job closure currently being broadcast.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (asserted at creation in `run`) and is kept
// alive by `run` blocking until every worker is done with it.
unsafe impl Send for JobPtr {}

struct State {
    generation: u64,
    job: Option<JobPtr>,
    remaining: usize,
    panicked: usize,
    shutdown: bool,
    /// Wall-clock instant the current job was broadcast; only stamped when
    /// the pool is instrumented (queue-latency measurement).
    dispatched: Option<Instant>,
}

/// Live instrumentation shared between the pool handle and its workers.
struct PoolMetrics {
    jobs: Counter,
    queue_latency_ns: Histogram,
    busy_ns: Vec<AtomicU64>,
    created: Instant,
}

/// Point-in-time copy of an instrumented pool's counters; see
/// [`ThreadPool::metrics`].
#[derive(Debug, Clone)]
pub struct PoolMetricsSnapshot {
    /// Jobs broadcast so far (one per `run`/`parallel_for` call).
    pub jobs: u64,
    /// Dispatch→pickup latency observed by each worker, in nanoseconds
    /// (log2-bucketed).
    pub queue_latency_ns: HistogramSnapshot,
    /// Per-worker nanoseconds spent inside job closures.
    pub worker_busy_ns: Vec<u64>,
    /// Per-worker busy fraction of the pool's lifetime so far, in [0, 1].
    pub busy_fraction: Vec<f64>,
}

struct Shared {
    state: Mutex<State>,
    start: Condvar,
    done: Condvar,
    metrics: Option<PoolMetrics>,
}

/// A fixed team of worker threads; see the module docs.
///
/// ```
/// use t2opt_parallel::{ThreadPool, Schedule};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = ThreadPool::new(8);
/// let sum = AtomicU64::new(0);
/// pool.parallel_for(0..100, Schedule::Static, |_tid, range| {
///     let local: u64 = range.map(|i| i as u64).sum();
///     sum.fetch_add(local, Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
/// ```
pub struct ThreadPool {
    n: usize,
    placement: Placement,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool of `n` unpinned workers (`n = 0` is promoted to 1).
    pub fn new(n: usize) -> Self {
        Self::with_placement(n, Placement::None)
    }

    /// Creates a pool of `n` workers pinned according to `placement`.
    pub fn with_placement(n: usize, placement: Placement) -> Self {
        Self::build(n, placement, false)
    }

    /// Like [`ThreadPool::new`] but with instrumentation enabled: every
    /// dispatch is counted and timed, and per-worker busy time is
    /// accumulated. Read the results with [`ThreadPool::metrics`].
    pub fn instrumented(n: usize) -> Self {
        Self::build(n, Placement::None, true)
    }

    /// Like [`ThreadPool::with_placement`] with instrumentation enabled.
    pub fn instrumented_with_placement(n: usize, placement: Placement) -> Self {
        Self::build(n, placement, true)
    }

    fn build(n: usize, placement: Placement, instrument: bool) -> Self {
        let n = n.max(1);
        let metrics = instrument.then(|| PoolMetrics {
            jobs: Counter::new(),
            queue_latency_ns: Histogram::new(),
            busy_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            created: Instant::now(),
        });
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                generation: 0,
                job: None,
                remaining: 0,
                panicked: 0,
                shutdown: false,
                dispatched: None,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            metrics,
        });
        let workers = (0..n)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                let core = placement.core_of(tid);
                std::thread::Builder::new()
                    .name(format!("t2opt-worker-{tid}"))
                    .spawn(move || worker_loop(tid, core, shared))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool {
            n,
            placement,
            shared,
            workers,
        }
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.n
    }

    /// The placement the team was created with.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// A snapshot of the pool's instrumentation, or `None` for a pool built
    /// without it ([`ThreadPool::new`] / [`ThreadPool::with_placement`]).
    pub fn metrics(&self) -> Option<PoolMetricsSnapshot> {
        let m = self.shared.metrics.as_ref()?;
        let elapsed_ns = m.created.elapsed().as_nanos() as u64;
        let worker_busy_ns: Vec<u64> = m
            .busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let busy_fraction = worker_busy_ns
            .iter()
            .map(|&b| {
                if elapsed_ns == 0 {
                    0.0
                } else {
                    (b as f64 / elapsed_ns as f64).min(1.0)
                }
            })
            .collect();
        Some(PoolMetricsSnapshot {
            jobs: m.jobs.get(),
            queue_latency_ns: m.queue_latency_ns.snapshot(),
            worker_busy_ns,
            busy_fraction,
        })
    }

    /// Runs `f(tid)` once on every worker and blocks until all are done
    /// (the OpenMP `parallel` region). Panics in workers are collected and
    /// re-raised here after the barrier.
    pub fn run(&self, f: impl Fn(usize) + Sync) {
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: we erase the lifetime of `f_ref`, but `run` does not
        // return until `remaining == 0`, i.e. until no worker will touch the
        // pointer again, so the pointee outlives all uses.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(f_ref as *const _)
        });
        let mut state = self.shared.state.lock();
        debug_assert_eq!(state.remaining, 0, "pool::run is not reentrant");
        state.generation += 1;
        state.job = Some(ptr);
        state.remaining = self.n;
        state.panicked = 0;
        if let Some(m) = &self.shared.metrics {
            m.jobs.inc();
            state.dispatched = Some(Instant::now());
        }
        self.shared.start.notify_all();
        while state.remaining > 0 {
            self.shared.done.wait(&mut state);
        }
        state.job = None;
        let panicked = state.panicked;
        drop(state);
        assert!(
            panicked == 0,
            "{panicked} worker thread(s) panicked inside ThreadPool::run"
        );
    }

    /// OpenMP-style `parallel for` over `range` with the given schedule.
    /// `f(tid, chunk_range)` is called once per assigned chunk; the call
    /// returns after the implicit barrier.
    pub fn parallel_for(
        &self,
        range: Range<usize>,
        schedule: Schedule,
        f: impl Fn(usize, Range<usize>) + Sync,
    ) {
        let offset = range.start;
        let n = range.end.saturating_sub(range.start);
        if schedule.is_deterministic() {
            let assignment = chunk_assignment(schedule, n, self.n);
            self.run(|tid| {
                for ch in &assignment[tid] {
                    f(tid, offset + ch.start..offset + ch.end);
                }
            });
        } else {
            let cursor = ChunkCursor::new(schedule, n, self.n);
            self.run(|tid| {
                while let Some(Chunk { start, end }) = cursor.claim(tid) {
                    f(tid, offset + start..offset + end);
                }
            });
        }
    }

    /// Like [`ThreadPool::parallel_for`] but hands each worker its full
    /// pre-computed chunk list once (deterministic schedules only) — useful
    /// when per-chunk dispatch overhead matters.
    pub fn parallel_for_chunks(
        &self,
        n: usize,
        schedule: Schedule,
        f: impl Fn(usize, &[Chunk]) + Sync,
    ) {
        let assignment = chunk_assignment(schedule, n, self.n);
        self.run(|tid| f(tid, &assignment[tid]));
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
            self.shared.start.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(tid: usize, core: Option<usize>, shared: Arc<Shared>) {
    if let Some(core) = core {
        // Best-effort: pinning failures are tolerated on the host (the
        // simulator is where placement is exact).
        let _ = pin_current_thread(core);
    }
    let mut seen_generation = 0u64;
    loop {
        let (job, dispatched) = {
            let mut state = shared.state.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen_generation {
                    if let Some(job) = state.job {
                        seen_generation = state.generation;
                        break (job, state.dispatched);
                    }
                }
                shared.start.wait(&mut state);
            }
        };
        let started = shared.metrics.as_ref().map(|m| {
            if let Some(d) = dispatched {
                m.queue_latency_ns.record(d.elapsed().as_nanos() as u64);
            }
            Instant::now()
        });
        // SAFETY: `run` keeps the closure alive until `remaining == 0`,
        // which we only signal after the call returns.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(tid) }));
        if let (Some(m), Some(t0)) = (&shared.metrics, started) {
            m.busy_ns[tid].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        let mut state = shared.state.lock();
        if result.is_err() {
            state.panicked += 1;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_exactly_once_per_run() {
        let pool = ThreadPool::new(8);
        let counts: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..10 {
            pool.run(|tid| {
                counts[tid].fetch_add(1, Ordering::Relaxed);
            });
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 10);
        }
    }

    #[test]
    fn parallel_for_static_covers_range() {
        let pool = ThreadPool::new(4);
        let n = 10_001;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..n, Schedule::Static, |_tid, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_dynamic_covers_range() {
        let pool = ThreadPool::new(4);
        let n = 5000;
        let total = AtomicUsize::new(0);
        pool.parallel_for(0..n, Schedule::Dynamic(17), |_tid, range| {
            total.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), n);
    }

    #[test]
    fn parallel_for_guided_covers_offset_range() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        let lo = AtomicUsize::new(usize::MAX);
        pool.parallel_for(100..1100, Schedule::Guided(8), |_tid, range| {
            total.fetch_add(range.len(), Ordering::Relaxed);
            lo.fetch_min(range.start, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 1000);
        assert_eq!(lo.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn static_one_interleaves_threads() {
        let pool = ThreadPool::new(4);
        let owner: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(99)).collect();
        pool.parallel_for(0..16, Schedule::StaticChunk(1), |tid, range| {
            for i in range {
                owner[i].store(tid, Ordering::Relaxed);
            }
        });
        let owners: Vec<usize> = owner.iter().map(|o| o.load(Ordering::Relaxed)).collect();
        assert_eq!(owners, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn disjoint_mutable_output_via_chunks() {
        // The idiomatic kernel pattern: split the output first, then let
        // each thread write its own part.
        let pool = ThreadPool::new(8);
        let mut data = vec![0u64; 4096];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(512).collect();
        // chunks are moved into per-slot Mutex-free cells via simple index
        // partition: one chunk per thread id here.
        let cells: Vec<parking_lot::Mutex<&mut [u64]>> =
            chunks.into_iter().map(parking_lot::Mutex::new).collect();
        pool.run(|tid| {
            let mut guard = cells[tid].lock();
            for (i, x) in guard.iter_mut().enumerate() {
                *x = (tid * 10_000 + i) as u64;
            }
        });
        drop(cells);
        assert_eq!(data[0], 0);
        assert_eq!(data[512], 10_000);
        assert_eq!(data[4095], 70_511);
    }

    #[test]
    fn pool_is_reusable_many_times() {
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run(|_tid| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn zero_threads_promoted_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.num_threads(), 1);
        let ran = AtomicUsize::new(0);
        pool.run(|tid| {
            assert_eq!(tid, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_propagates_after_barrier() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool must still be usable afterwards.
        let ok = AtomicUsize::new(0);
        pool.run(|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn pinned_pool_runs() {
        let pool = ThreadPool::with_placement(4, Placement::t2_scatter());
        let total = AtomicUsize::new(0);
        pool.parallel_for(0..100, Schedule::Static, |_t, r| {
            total.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn uninstrumented_pool_has_no_metrics() {
        let pool = ThreadPool::new(2);
        assert!(pool.metrics().is_none());
    }

    #[test]
    fn instrumented_pool_counts_jobs_and_busy_time() {
        let pool = ThreadPool::instrumented(4);
        for _ in 0..5 {
            pool.run(|_tid| {
                std::hint::black_box((0..10_000u64).sum::<u64>());
            });
        }
        let m = pool.metrics().expect("instrumented pool has metrics");
        assert_eq!(m.jobs, 5);
        // Every worker picked up every job, so 4 × 5 latency samples.
        assert_eq!(m.queue_latency_ns.count, 20);
        assert_eq!(m.worker_busy_ns.len(), 4);
        assert!(m.worker_busy_ns.iter().all(|&b| b > 0));
        assert!(m.busy_fraction.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn empty_range_is_fine() {
        let pool = ThreadPool::new(4);
        pool.parallel_for(5..5, Schedule::Static, |_t, _r| {
            panic!("must not be called");
        });
        pool.parallel_for(5..5, Schedule::Dynamic(4), |_t, _r| {
            panic!("must not be called");
        });
    }
}
