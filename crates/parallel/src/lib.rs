//! # t2opt-parallel
//!
//! An OpenMP-flavoured shared-memory parallel runtime, modelling the
//! environment of Hager, Zeiser & Wellein (2008): a fixed team of worker
//! threads with explicit *placement* (the Solaris `processor_bind()` /
//! `SUNW_MP_PROCBIND` pinning the paper relies on), OpenMP loop *schedules*
//! (`static`, `static,chunk`, `dynamic`, `guided`), and loop *coalescing*
//! (the manual `collapse` the paper uses to remove the LBM "modulo effect").
//!
//! The same [`Schedule`] and [`Placement`] types drive both host execution
//! (here) and the T2 simulator (`t2opt-sim`), so an experiment's
//! iteration→thread→core map is identical in both worlds.
//!
//! ```
//! use t2opt_parallel::{ThreadPool, Schedule};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let pool = ThreadPool::new(4);
//! let hits = AtomicUsize::new(0);
//! pool.parallel_for(0..1000, Schedule::StaticChunk(1), |_tid, range| {
//!     hits.fetch_add(range.len(), Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 1000);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod coalesce;
pub mod placement;
pub mod pool;
pub mod schedule;

pub use coalesce::{Coalesce2, Coalesce3};
pub use placement::Placement;
pub use pool::{PoolMetricsSnapshot, ThreadPool};
pub use schedule::{chunk_assignment, Chunk, Schedule};
