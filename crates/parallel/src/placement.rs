//! Thread placement ("pinning").
//!
//! On the T2, "running more than a single thread per core is therefore
//! mandatory for most applications, and thread placement ('pinning') must be
//! implemented" (§1) — the paper uses Solaris `processor_bind()` or the
//! `SUNW_MP_PROCBIND` environment variable and distributes threads
//! "equidistantly across cores" for the STREAM runs.
//!
//! [`Placement`] expresses that policy abstractly. The host pool applies it
//! best-effort through OS affinity (`core_affinity`); the T2 simulator
//! applies it *exactly* to its 8 simulated cores — which is where it
//! actually matters for reproducing the paper.

/// A policy mapping team-thread indices to core indices.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Placement {
    /// No pinning: leave threads wherever the OS puts them.
    #[default]
    None,
    /// Scatter (the paper's STREAM setup): thread `i` goes to core
    /// `i mod n_cores`, so threads are distributed equidistantly across
    /// cores, filling each core's hardware-thread slots in rounds.
    Scatter {
        /// Number of cores to scatter over.
        n_cores: usize,
    },
    /// Compact: fill core 0's hardware threads first, then core 1, etc.
    /// Thread `i` goes to core `i / threads_per_core`.
    Compact {
        /// Hardware threads per core.
        threads_per_core: usize,
    },
    /// Explicit per-thread core list (thread `i` → `cores[i % cores.len()]`).
    Explicit(
        /// The core index for each thread.
        Vec<usize>,
    ),
}

impl Placement {
    /// The paper's default for the T2: scatter over 8 cores.
    pub fn t2_scatter() -> Self {
        Placement::Scatter { n_cores: 8 }
    }

    /// Core index for team thread `tid`, or `None` when unpinned.
    pub fn core_of(&self, tid: usize) -> Option<usize> {
        match self {
            Placement::None => None,
            Placement::Scatter { n_cores } => Some(tid % n_cores.max(&1)),
            Placement::Compact { threads_per_core } => Some(tid / (*threads_per_core).max(1)),
            Placement::Explicit(cores) => {
                if cores.is_empty() {
                    None
                } else {
                    Some(cores[tid % cores.len()])
                }
            }
        }
    }

    /// Full core map for a team of `t` threads (entries `None` = unpinned).
    pub fn core_map(&self, t: usize) -> Vec<Option<usize>> {
        (0..t).map(|tid| self.core_of(tid)).collect()
    }

    /// How many team threads land on each of `n_cores` cores (unpinned
    /// threads are not counted).
    pub fn occupancy(&self, t: usize, n_cores: usize) -> Vec<usize> {
        let mut occ = vec![0usize; n_cores];
        for tid in 0..t {
            if let Some(c) = self.core_of(tid) {
                occ[c % n_cores] += 1;
            }
        }
        occ
    }
}

/// Pins the calling thread to host core `core` (mod the number of available
/// cores). Best-effort: returns `false` if the platform refuses.
pub fn pin_current_thread(core: usize) -> bool {
    let Some(ids) = core_affinity::get_core_ids() else {
        return false;
    };
    if ids.is_empty() {
        return false;
    }
    core_affinity::set_for_current(ids[core % ids.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_distributes_equidistantly() {
        // 64 threads over 8 cores: each core gets threads i, i+8, ..., i+56.
        let p = Placement::t2_scatter();
        assert_eq!(p.core_of(0), Some(0));
        assert_eq!(p.core_of(7), Some(7));
        assert_eq!(p.core_of(8), Some(0));
        assert_eq!(p.occupancy(64, 8), vec![8; 8]);
        assert_eq!(p.occupancy(16, 8), vec![2; 8]);
    }

    #[test]
    fn compact_fills_cores_in_order() {
        let p = Placement::Compact {
            threads_per_core: 8,
        };
        assert_eq!(p.core_of(0), Some(0));
        assert_eq!(p.core_of(7), Some(0));
        assert_eq!(p.core_of(8), Some(1));
        assert_eq!(p.occupancy(16, 8), vec![8, 8, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn explicit_wraps() {
        let p = Placement::Explicit(vec![3, 1]);
        assert_eq!(p.core_of(0), Some(3));
        assert_eq!(p.core_of(1), Some(1));
        assert_eq!(p.core_of(2), Some(3));
        assert_eq!(Placement::Explicit(vec![]).core_of(0), None);
    }

    #[test]
    fn none_is_unpinned() {
        assert_eq!(Placement::None.core_of(5), None);
        assert_eq!(Placement::None.occupancy(8, 4), vec![0; 4]);
    }

    #[test]
    fn pin_current_thread_is_best_effort() {
        // Must not panic regardless of platform support; on Linux CI it
        // normally succeeds.
        let _ = pin_current_thread(0);
    }
}
