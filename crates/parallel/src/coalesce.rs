//! Loop coalescing (OpenMP `collapse` by hand).
//!
//! §2.4 of the paper: "the sawtooth-like performance pattern is a 'modulo
//! effect' which emerges from N not being a multiple of the number of
//! threads. A simple way to remove the pattern is to coalesce several outer
//! loop levels in order to lengthen the OpenMP parallel loop" — and the
//! authors explicitly "corroborate the call for extensions of the OpenMP
//! standard towards more flexible options for parallel execution of loop
//! nests" (OpenMP 3.0's `collapse` arrived later).
//!
//! [`Coalesce2`]/[`Coalesce3`] provide the index algebra: a flattened
//! iteration space plus decoding back to the original loop indices.

/// Two nested loops `for i in 0..n1 { for j in 0..n2 }` flattened into a
/// single space of `n1 * n2` iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coalesce2 {
    n1: usize,
    n2: usize,
}

impl Coalesce2 {
    /// Creates the flattened space.
    pub fn new(n1: usize, n2: usize) -> Self {
        Coalesce2 { n1, n2 }
    }

    /// Total number of flattened iterations.
    pub fn len(&self) -> usize {
        self.n1 * self.n2
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes a flat index into `(i, j)`.
    #[inline]
    pub fn decode(&self, flat: usize) -> (usize, usize) {
        debug_assert!(flat < self.len());
        (flat / self.n2, flat % self.n2)
    }

    /// Encodes `(i, j)` into the flat index.
    #[inline]
    pub fn encode(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n1 && j < self.n2);
        i * self.n2 + j
    }
}

/// Three nested loops flattened into `n1 * n2 * n3` iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coalesce3 {
    n1: usize,
    n2: usize,
    n3: usize,
}

impl Coalesce3 {
    /// Creates the flattened space.
    pub fn new(n1: usize, n2: usize, n3: usize) -> Self {
        Coalesce3 { n1, n2, n3 }
    }

    /// Total number of flattened iterations.
    pub fn len(&self) -> usize {
        self.n1 * self.n2 * self.n3
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes a flat index into `(i, j, k)`.
    #[inline]
    pub fn decode(&self, flat: usize) -> (usize, usize, usize) {
        debug_assert!(flat < self.len());
        let i = flat / (self.n2 * self.n3);
        let rem = flat % (self.n2 * self.n3);
        (i, rem / self.n3, rem % self.n3)
    }

    /// Encodes `(i, j, k)` into the flat index.
    #[inline]
    pub fn encode(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.n1 && j < self.n2 && k < self.n3);
        (i * self.n2 + j) * self.n3 + k
    }
}

/// Worst-case static load imbalance of parallelizing `n` iterations over `t`
/// threads: `ceil(n/t) / floor(n/t)` (∞ when some thread gets nothing).
/// This is the "modulo effect" amplitude — coalescing shrinks it toward 1.
pub fn static_imbalance(n: usize, t: usize) -> f64 {
    if n == 0 || t == 0 {
        return 1.0;
    }
    let lo = n / t;
    let hi = n.div_ceil(t);
    if lo == 0 {
        f64::INFINITY
    } else {
        hi as f64 / lo as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce2_round_trip() {
        let c = Coalesce2::new(7, 13);
        assert_eq!(c.len(), 91);
        for flat in 0..c.len() {
            let (i, j) = c.decode(flat);
            assert_eq!(c.encode(i, j), flat);
            assert!(i < 7 && j < 13);
        }
    }

    #[test]
    fn coalesce2_is_row_major() {
        let c = Coalesce2::new(3, 4);
        assert_eq!(c.decode(0), (0, 0));
        assert_eq!(c.decode(3), (0, 3));
        assert_eq!(c.decode(4), (1, 0));
        assert_eq!(c.decode(11), (2, 3));
    }

    #[test]
    fn coalesce3_round_trip() {
        let c = Coalesce3::new(3, 5, 7);
        assert_eq!(c.len(), 105);
        for flat in 0..c.len() {
            let (i, j, k) = c.decode(flat);
            assert_eq!(c.encode(i, j, k), flat);
        }
    }

    #[test]
    fn coalescing_removes_modulo_effect() {
        // LBM at N = 129 on 64 threads: outer-loop parallelism is 1.5×
        // imbalanced, fused I-J parallelism is nearly perfect.
        let outer = static_imbalance(129, 64);
        let fused = static_imbalance(129 * 129, 64);
        assert!((outer - 1.5).abs() < 1e-12);
        assert!(fused < 1.01, "fused imbalance {fused}");
    }

    #[test]
    fn imbalance_edge_cases() {
        assert_eq!(static_imbalance(64, 64), 1.0);
        assert_eq!(static_imbalance(0, 8), 1.0);
        assert!(static_imbalance(3, 8).is_infinite());
    }
}
