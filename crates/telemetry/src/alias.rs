//! MC-imbalance diagnostics: detecting the runtime signature of mod-512
//! congruence aliasing from a [`Timeline`].
//!
//! The paper's §2.1 convoy — "all threads hit exactly one memory controller
//! at a time… successive controllers are of course used in turn, but not
//! concurrently" — is invisible in run totals (over the whole run every
//! controller moves the same bytes) but obvious per window: each active
//! window has one hot controller, so its *effective parallelism*
//! (Σ busy / max busy) collapses toward 1. [`AliasReport::analyze`] flags
//! exactly that, and names the address streams whose bases share a 512 B
//! congruence class — the static cause of the dynamic signature.

use crate::timeline::Timeline;
use serde::Serialize;
use std::collections::BTreeMap;
use t2opt_core::chip::ChipSpec;

/// Thresholds for [`AliasReport::analyze`].
#[derive(Debug, Clone, Serialize)]
pub struct AliasConfig {
    /// The controller-aliasing period in bytes: stream bases equal modulo
    /// this value follow the same controller sequence. 512 on the T2;
    /// derive it from the chip with [`AliasConfig::for_chip`].
    pub period: u64,
    /// A window is flagged when its effective parallelism (Σ busy cycles
    /// over max per-controller busy cycles) falls below this. The default
    /// of 1.8 is calibrated against the T2 simulator at ~4096-cycle
    /// windows: a fully aliased STREAM triad convoys at ≈ 1.0–1.6 per
    /// window while the advisor's 128 B spread stays ≥ 1.9 (the three
    /// streams rotate through the controllers together, so fine windows
    /// never reach the controller count even when nothing aliases).
    pub parallelism_threshold: f64,
    /// Windows whose busiest controller is busy for less than this fraction
    /// of the window are considered idle and skipped (ramp-up/drain tails).
    pub min_activity: f64,
    /// Number of sockets of the chip under analysis (1 = no NUMA). On a
    /// multi-socket chip the first-touch controller remap folds the raw
    /// socket-selector bits away, so congruence mod the *local* period
    /// (`period / n_sockets`) is what aliases — and streams that look
    /// spread at the full period can still collide within a socket (see
    /// [`AliasReport::wrong_socket_streams`]).
    pub n_sockets: usize,
}

impl AliasConfig {
    /// Default thresholds with the aliasing period taken from a chip spec
    /// instead of the T2 constant.
    pub fn for_chip(spec: &ChipSpec) -> Self {
        AliasConfig {
            period: spec.interleave_period() as u64,
            n_sockets: spec.n_sockets(),
            ..AliasConfig::default()
        }
    }
}

impl Default for AliasConfig {
    fn default() -> Self {
        AliasConfig {
            period: 512, // the T2 super-line, for drop-in compatibility
            parallelism_threshold: 1.8,
            min_activity: 0.05,
            n_sockets: 1,
        }
    }
}

/// One flagged window.
#[derive(Debug, Clone, Serialize)]
pub struct WindowFlag {
    /// Index into `Timeline::windows`.
    pub index: usize,
    /// First cycle of the window.
    pub start_cycle: u64,
    /// The window's effective parallelism.
    pub effective_parallelism: f64,
    /// The window's max/mean busy imbalance.
    pub imbalance: f64,
    /// The hot controller.
    pub hot_mc: usize,
}

/// The outcome of the aliasing analysis; see the module docs.
#[derive(Debug, Clone, Serialize)]
pub struct AliasReport {
    /// The aliasing period (bytes) the analysis grouped stream bases by.
    pub period: u64,
    /// Active (non-idle) windows examined.
    pub windows_considered: usize,
    /// Windows whose effective parallelism fell below the threshold.
    pub windows_flagged: usize,
    /// `windows_flagged / windows_considered` (0 when nothing was active).
    pub flagged_fraction: f64,
    /// Mean effective parallelism over the active windows.
    pub mean_effective_parallelism: f64,
    /// The flagged windows, in time order.
    pub flags: Vec<WindowFlag>,
    /// Groups of stream names whose bases are congruent mod
    /// [`AliasReport::period`] — the named culprits. Only populated when
    /// windows were flagged; each group lists ≥ 2 streams.
    pub aliased_streams: Vec<Vec<String>>,
    /// NUMA only (empty when `n_sockets` = 1): groups congruent mod the
    /// *socket-local* period **and** mod the full period — they collide on
    /// the same controller of the same socket sequence. The classic
    /// wrong-controller aliasing, restated on the folded geometry.
    pub wrong_controller_streams: Vec<Vec<String>>,
    /// NUMA only: groups congruent mod the socket-local period whose bases
    /// *differ* at the raw socket-selector bits. They look spread at the
    /// full period, but first-touch localization folds them onto one
    /// socket-local controller — the spread they appear to have exists
    /// only across sockets, which is exactly what a wrong-socket placement
    /// squanders.
    pub wrong_socket_streams: Vec<Vec<String>>,
}

impl AliasReport {
    /// Analyzes a timeline under the given thresholds.
    pub fn analyze(timeline: &Timeline, cfg: &AliasConfig) -> Self {
        let min_busy = cfg.min_activity * timeline.interval as f64;
        let mut flags = Vec::new();
        let mut considered = 0usize;
        let mut eff_sum = 0.0f64;
        for (index, w) in timeline.windows.iter().enumerate() {
            let max = w.mc_busy.iter().copied().max().unwrap_or(0);
            if (max as f64) < min_busy {
                continue;
            }
            considered += 1;
            let eff = w.effective_parallelism();
            eff_sum += eff;
            if eff < cfg.parallelism_threshold {
                let hot_mc = w
                    .mc_busy
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &b)| b)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                flags.push(WindowFlag {
                    index,
                    start_cycle: w.start_cycle,
                    effective_parallelism: eff,
                    imbalance: w.imbalance(),
                    hot_mc,
                });
            }
        }
        let aliased_streams = if flags.is_empty() {
            Vec::new()
        } else {
            congruent_groups(timeline, cfg.period)
        };
        let (wrong_controller_streams, wrong_socket_streams) =
            if cfg.n_sockets > 1 && !flags.is_empty() {
                socket_split_groups(timeline, cfg.period, cfg.n_sockets)
            } else {
                (Vec::new(), Vec::new())
            };
        AliasReport {
            period: cfg.period,
            windows_considered: considered,
            windows_flagged: flags.len(),
            flagged_fraction: if considered == 0 {
                0.0
            } else {
                flags.len() as f64 / considered as f64
            },
            mean_effective_parallelism: if considered == 0 {
                0.0
            } else {
                eff_sum / considered as f64
            },
            flags,
            aliased_streams,
            wrong_controller_streams,
            wrong_socket_streams,
        }
    }

    /// Whether the run shows the aliasing signature (any window flagged).
    pub fn is_aliased(&self) -> bool {
        self.windows_flagged > 0
    }

    /// A terminal-friendly one-paragraph summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{}/{} active windows flagged ({:.0}%), mean effective parallelism {:.2}",
            self.windows_flagged,
            self.windows_considered,
            self.flagged_fraction * 100.0,
            self.mean_effective_parallelism,
        );
        if self.aliased_streams.is_empty() {
            if self.windows_flagged == 0 {
                s.push_str(" — no MC aliasing signature");
            }
        } else {
            let groups: Vec<String> = self
                .aliased_streams
                .iter()
                .map(|g| format!("{{{}}}", g.join(", ")))
                .collect();
            s.push_str(&format!(
                " — streams congruent mod {} B: {}",
                self.period,
                groups.join(" ")
            ));
        }
        if !self.wrong_socket_streams.is_empty() {
            let groups: Vec<String> = self
                .wrong_socket_streams
                .iter()
                .map(|g| format!("{{{}}}", g.join(", ")))
                .collect();
            s.push_str(&format!(
                "; wrong-socket (spread only across sockets): {}",
                groups.join(" ")
            ));
        }
        s
    }
}

/// NUMA classification of the socket-local congruence classes: groups of
/// ≥ 2 streams congruent mod `period / n_sockets` split into those also
/// congruent mod the full `period` (wrong-controller) and those spanning
/// ≥ 2 raw socket residues (wrong-socket). See the [`AliasReport`] field
/// docs.
fn socket_split_groups(
    timeline: &Timeline,
    period: u64,
    n_sockets: usize,
) -> (Vec<Vec<String>>, Vec<Vec<String>>) {
    let local = (period / n_sockets as u64).max(1);
    let mut classes: BTreeMap<u64, Vec<(u64, String)>> = BTreeMap::new();
    for s in &timeline.streams {
        classes
            .entry(s.base % local)
            .or_default()
            .push((s.base % period, s.name.clone()));
    }
    let mut wrong_controller = Vec::new();
    let mut wrong_socket = Vec::new();
    for members in classes.into_values() {
        if members.len() < 2 {
            continue;
        }
        let mut by_full: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        for (residue, name) in &members {
            by_full.entry(*residue).or_default().push(name.clone());
        }
        for group in by_full.values() {
            if group.len() >= 2 {
                wrong_controller.push(group.clone());
            }
        }
        if by_full.len() >= 2 {
            wrong_socket.push(members.into_iter().map(|(_, n)| n).collect());
        }
    }
    (wrong_controller, wrong_socket)
}

/// Groups the timeline's stream labels by base address mod `period`;
/// groups with ≥ 2 members share a controller sequence.
fn congruent_groups(timeline: &Timeline, period: u64) -> Vec<Vec<String>> {
    let mut classes: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for s in &timeline.streams {
        classes
            .entry(s.base % period)
            .or_default()
            .push(s.name.clone());
    }
    classes.into_values().filter(|g| g.len() >= 2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{StreamLabel, Timeline, Window};

    /// A synthetic 4-MC timeline from per-window busy vectors.
    fn timeline(busy: Vec<[u64; 4]>, streams: Vec<StreamLabel>) -> Timeline {
        let interval = 1000;
        let windows: Vec<Window> = busy
            .iter()
            .enumerate()
            .map(|(i, b)| Window {
                start_cycle: i as u64 * interval,
                mc_busy: b.to_vec(),
                mc_nacks: vec![0; 4],
                mc_queue_peak: vec![0; 4],
                bank_accesses: vec![0; 8],
                mem_ops: b.iter().sum::<u64>() / 12,
            })
            .collect();
        Timeline {
            interval,
            n_mcs: 4,
            n_banks: 8,
            start_cycle: 0,
            end_cycle: busy.len() as u64 * interval,
            windows,
            thread_stalls: Vec::new(),
            streams,
            events: Vec::new(),
            events_dropped: 0,
        }
    }

    fn abc(offs: [u64; 3]) -> Vec<StreamLabel> {
        vec![
            StreamLabel::new("A", offs[0]),
            StreamLabel::new("B", (1 << 30) + offs[1]),
            StreamLabel::new("C", (2 << 30) + offs[2]),
        ]
    }

    #[test]
    fn uniform_timeline_raises_no_flags() {
        let t = timeline(vec![[800, 810, 790, 805]; 6], abc([0, 128, 256]));
        let r = AliasReport::analyze(&t, &AliasConfig::default());
        assert_eq!(r.windows_considered, 6);
        assert_eq!(r.windows_flagged, 0);
        assert!(!r.is_aliased());
        assert!(r.aliased_streams.is_empty());
        assert!(r.mean_effective_parallelism > 3.9);
        assert!(r.summary().contains("no MC aliasing signature"));
    }

    #[test]
    fn one_hot_rotation_is_flagged_and_streams_named() {
        // The §2.1 convoy: each window has exactly one busy controller,
        // rotating in turn.
        let busy: Vec<[u64; 4]> = (0..8)
            .map(|i| {
                let mut b = [0u64; 4];
                b[i % 4] = 900;
                b
            })
            .collect();
        let t = timeline(busy, abc([0, 0, 0]));
        let r = AliasReport::analyze(&t, &AliasConfig::default());
        assert_eq!(r.windows_considered, 8);
        assert_eq!(r.windows_flagged, 8);
        assert!((r.flagged_fraction - 1.0).abs() < 1e-12);
        assert!(r.is_aliased());
        assert_eq!(r.aliased_streams, vec![vec!["A", "B", "C"]]);
        assert_eq!(r.flags[2].hot_mc, 2);
        assert!(r.summary().contains("A, B, C"));
    }

    #[test]
    fn idle_windows_are_skipped() {
        let t = timeline(
            vec![[900, 0, 0, 0], [10, 0, 0, 0], [0, 0, 0, 0]],
            abc([0, 0, 0]),
        );
        let r = AliasReport::analyze(&t, &AliasConfig::default());
        assert_eq!(r.windows_considered, 1);
        assert_eq!(r.windows_flagged, 1);
    }

    #[test]
    fn spread_offsets_produce_no_congruent_group() {
        let busy = vec![[900, 0, 0, 0]];
        let t = timeline(busy, abc([0, 128, 256]));
        let r = AliasReport::analyze(&t, &AliasConfig::default());
        // Flagged on activity, but no stream group shares a residue.
        assert!(r.is_aliased());
        assert!(r.aliased_streams.is_empty());
    }

    #[test]
    fn chip_period_changes_the_congruence_classes() {
        // Streams 256 B apart: distinct classes on the T2 (mod 512), but
        // congruent on the 2-MC budget chip whose period is 256 B.
        let busy = vec![[900, 0, 0, 0]];
        let streams = abc([0, 256, 512]);
        let t2 = AliasReport::analyze(
            &timeline(busy.clone(), streams.clone()),
            &AliasConfig::for_chip(&t2opt_core::chip::ChipSpec::ultrasparc_t2()),
        );
        assert_eq!(t2.period, 512);
        assert_eq!(t2.aliased_streams, vec![vec!["A", "C"]]);
        let budget = AliasReport::analyze(
            &timeline(busy, streams),
            &AliasConfig::for_chip(&t2opt_core::chip::ChipSpec::budget_2mc()),
        );
        assert_eq!(budget.period, 256);
        assert_eq!(budget.aliased_streams, vec![vec!["A", "B", "C"]]);
    }

    #[test]
    fn empty_timeline_is_clean() {
        let t = timeline(Vec::new(), Vec::new());
        let r = AliasReport::analyze(&t, &AliasConfig::default());
        assert_eq!(r.windows_considered, 0);
        assert_eq!(r.flagged_fraction, 0.0);
        assert_eq!(r.mean_effective_parallelism, 0.0);
    }

    #[test]
    fn numa_chip_splits_wrong_socket_from_wrong_controller() {
        // 2s-numa: period 1024, local period 512. A and C share a full-period
        // residue (same controller, same socket slot: wrong-controller).
        // B sits 512 past them — spread at the full period but folded onto
        // the same socket-local controller by first touch: wrong-socket.
        let busy = vec![[900, 0, 0, 0]];
        let cfg = AliasConfig::for_chip(&ChipSpec::preset("2s-numa").unwrap());
        assert_eq!(cfg.period, 1024);
        assert_eq!(cfg.n_sockets, 2);
        let r = AliasReport::analyze(&timeline(busy, abc([0, 512, 1024])), &cfg);
        assert!(r.is_aliased());
        assert_eq!(r.aliased_streams, vec![vec!["A", "C"]]);
        assert_eq!(r.wrong_controller_streams, vec![vec!["A", "C"]]);
        assert_eq!(r.wrong_socket_streams, vec![vec!["A", "B", "C"]]);
        assert!(r.summary().contains("wrong-socket"));
        assert!(r.summary().contains("A, B, C"));
    }

    #[test]
    fn numa_streams_spread_within_the_socket_are_clean() {
        // Offsets that differ mod the local period share nothing: no
        // wrong-controller and no wrong-socket group.
        let busy = vec![[900, 0, 0, 0]];
        let cfg = AliasConfig::for_chip(&ChipSpec::preset("2s-numa").unwrap());
        let r = AliasReport::analyze(&timeline(busy, abc([0, 128, 256])), &cfg);
        assert!(r.is_aliased());
        assert!(r.wrong_controller_streams.is_empty());
        assert!(r.wrong_socket_streams.is_empty());
    }

    #[test]
    fn single_socket_chips_report_no_socket_groups() {
        let busy = vec![[900, 0, 0, 0]];
        let cfg = AliasConfig::for_chip(&ChipSpec::ultrasparc_t2());
        assert_eq!(cfg.n_sockets, 1);
        let r = AliasReport::analyze(&timeline(busy, abc([0, 0, 0])), &cfg);
        assert_eq!(r.aliased_streams, vec![vec!["A", "B", "C"]]);
        assert!(r.wrong_controller_streams.is_empty());
        assert!(r.wrong_socket_streams.is_empty());
        assert!(!r.summary().contains("wrong-socket"));
    }
}
