//! Request-scoped tracing: cheap xorshift-derived trace/span ids, a
//! [`TraceCtx`] that rides one request through every serving stage, and a
//! bounded [`TraceBuffer`] retaining the most recent request traces for
//! export (`GET /trace` renders them as Chrome-trace JSON via
//! [`crate::export::traces_chrome_trace`]).
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when off.** [`TraceBuffer::start`] on a disabled
//!    buffer is one relaxed atomic load and returns a [`TraceCtx`] whose
//!    every method is a no-op branch — the same contract as the disabled
//!    [`crate::metrics::Sink`] (DESIGN §8).
//! 2. **Bounded memory.** The buffer holds at most `max_traces` traces of
//!    at most `max_spans` spans each ([`crate::metrics::RingLog`] per
//!    trace); a long-running daemon cannot leak through its own tracing.
//! 3. **Late spans join their trace.** Background refinement finishes
//!    long after its triggering request; [`TraceBuffer::resume`] rebuilds
//!    a context from the (trace id, parent span id) pair carried on the
//!    refinement job, and the spans land in the original trace unless it
//!    has already been evicted.

use crate::metrics::{RingLog, SpanRecord};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// A fresh process-unique nonzero id. The generator is a global counter
/// stepped by the golden-ratio increment and finished with an xorshift
/// mix, so ids are cheap (one relaxed RMW, three shifts), well spread
/// across 64 bits, and never zero (zero means "no trace" everywhere).
pub fn next_id() -> u64 {
    static STATE: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);
    let x = STATE.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    let mut v = x ^ 0x2545_f491_4f6c_dd1d;
    v ^= v << 13;
    v ^= v >> 7;
    v ^= v << 17;
    if v == 0 {
        1
    } else {
        v
    }
}

/// One retained request trace: its id, a human label (`"POST /advise"`),
/// when it started (microseconds since the buffer's epoch), and the spans
/// recorded so far (bounded; overflow is counted, not kept).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Trace id (nonzero).
    pub trace_id: u64,
    /// Human-readable label, normally `"METHOD /path"`.
    pub label: String,
    /// Start time in microseconds since the owning buffer's epoch.
    pub start_us: f64,
    spans: RingLog<SpanRecord>,
}

impl TraceRecord {
    /// The spans recorded into this trace so far, in completion order.
    pub fn spans(&self) -> &[SpanRecord] {
        self.spans.as_slice()
    }

    /// Spans rejected because the per-trace cap was hit.
    pub fn spans_dropped(&self) -> u64 {
        self.spans.dropped()
    }
}

/// A bounded buffer of the most recent request traces. Shared via `Arc`
/// between the request workers (producers), the refiner threads (late
/// producers), and the `/trace` endpoint (consumer).
#[derive(Debug)]
pub struct TraceBuffer {
    epoch: Instant,
    enabled: AtomicBool,
    max_traces: usize,
    max_spans: usize,
    traces: Mutex<VecDeque<TraceRecord>>,
    started: AtomicU64,
    evicted: AtomicU64,
}

impl TraceBuffer {
    /// A buffer retaining at most `max_traces` traces of at most
    /// `max_spans` spans each. Starts **enabled**; call
    /// [`TraceBuffer::set_enabled`]`(false)` for the no-op path.
    pub fn new(max_traces: usize, max_spans: usize) -> Arc<Self> {
        Arc::new(TraceBuffer {
            epoch: Instant::now(),
            enabled: AtomicBool::new(true),
            max_traces: max_traces.max(1),
            max_spans: max_spans.max(1),
            traces: Mutex::new(VecDeque::new()),
            started: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        })
    }

    /// Whether tracing records anything (one relaxed load).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns tracing on or off. Off makes every derived [`TraceCtx`]
    /// operation a no-op; already-retained traces stay readable.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Microseconds since the buffer was created.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Converts an [`Instant`] taken elsewhere (e.g. the acceptor's
    /// enqueue timestamp) into this buffer's microsecond timebase.
    pub fn us_of(&self, t: Instant) -> f64 {
        t.saturating_duration_since(self.epoch).as_secs_f64() * 1e6
    }

    /// Traces started since creation (including since-evicted ones).
    pub fn started(&self) -> u64 {
        self.started.load(Ordering::Relaxed)
    }

    /// Traces evicted to make room for newer ones.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Opens a new trace labelled `label` starting now. On a disabled
    /// buffer this is one relaxed load and a no-op context.
    pub fn start(self: &Arc<Self>, label: impl Into<String>) -> TraceCtx {
        let now = self.now_us();
        self.start_at(label, now)
    }

    /// [`TraceBuffer::start`], but backdated to `start_us` (the request's
    /// first byte or accept time, which precede the parse that names it).
    pub fn start_at(self: &Arc<Self>, label: impl Into<String>, start_us: f64) -> TraceCtx {
        if !self.is_enabled() {
            return TraceCtx::disabled();
        }
        let trace_id = next_id();
        let root_span = next_id();
        {
            let mut traces = self.lock();
            if traces.len() == self.max_traces {
                traces.pop_front();
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
            traces.push_back(TraceRecord {
                trace_id,
                label: label.into(),
                start_us,
                spans: RingLog::new(self.max_spans),
            });
        }
        self.started.fetch_add(1, Ordering::Relaxed);
        TraceCtx {
            buf: Some(Arc::clone(self)),
            trace_id,
            root_span,
            parent: root_span,
            root_start_us: start_us,
        }
    }

    /// Rebuilds a context for spans that finish after their request did
    /// (background refinement). `trace_id = 0`, an unknown parent, or a
    /// disabled buffer all yield a no-op context; spans recorded through
    /// the result join the original trace if it is still retained.
    pub fn resume(self: &Arc<Self>, trace_id: u64, parent: u64) -> TraceCtx {
        if trace_id == 0 || !self.is_enabled() {
            return TraceCtx::disabled();
        }
        TraceCtx {
            buf: Some(Arc::clone(self)),
            trace_id,
            root_span: 0,
            parent,
            root_start_us: 0.0,
        }
    }

    /// The most recent `n` traces, oldest first.
    pub fn recent(&self, n: usize) -> Vec<TraceRecord> {
        let traces = self.lock();
        let skip = traces.len().saturating_sub(n);
        traces.iter().skip(skip).cloned().collect()
    }

    /// Traces currently retained.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn append(&self, trace_id: u64, span: SpanRecord) {
        let mut traces = self.lock();
        // Newest traces are at the back and are the likeliest target.
        if let Some(t) = traces.iter_mut().rev().find(|t| t.trace_id == trace_id) {
            t.spans.push(span);
        }
        // Evicted trace: the late span is dropped with it.
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<TraceRecord>> {
        self.traces.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// The trace id ambient on this thread (0 when none) — what the
/// structured logger stamps on every line so logs join traces.
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// RAII guard from [`TraceCtx::enter`]; restores the previous ambient
/// trace id on drop.
pub struct CurrentTraceGuard {
    previous: u64,
}

impl Drop for CurrentTraceGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.previous));
    }
}

/// The per-request tracing handle threaded accept → parse → service →
/// store → refinement. Cloneable; a disabled context is a handful of
/// no-op branches.
#[derive(Debug, Clone)]
pub struct TraceCtx {
    buf: Option<Arc<TraceBuffer>>,
    trace_id: u64,
    root_span: u64,
    parent: u64,
    root_start_us: f64,
}

impl TraceCtx {
    /// A context that records nothing.
    pub fn disabled() -> Self {
        TraceCtx {
            buf: None,
            trace_id: 0,
            root_span: 0,
            parent: 0,
            root_start_us: 0.0,
        }
    }

    /// Whether spans recorded through this context are retained.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// The trace id (0 when disabled).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The span id new spans parent to (the request root span, unless
    /// re-parented via [`TraceCtx::child_of`]).
    pub fn parent_span(&self) -> u64 {
        self.parent
    }

    /// A context recording into the same trace but parenting new spans to
    /// `parent` instead of the root.
    pub fn child_of(&self, parent: u64) -> TraceCtx {
        TraceCtx {
            parent,
            ..self.clone()
        }
    }

    /// Installs this trace as the thread's ambient trace id (picked up by
    /// the structured logger) until the guard drops.
    pub fn enter(&self) -> CurrentTraceGuard {
        let previous = CURRENT_TRACE.with(|c| c.replace(self.trace_id));
        CurrentTraceGuard { previous }
    }

    /// Starts a span named `name` on logical thread `tid`; it is recorded
    /// into the trace when the guard drops.
    pub fn span(&self, name: impl Into<String>, tid: u32) -> TraceSpan {
        match &self.buf {
            Some(buf) => TraceSpan {
                ctx: Some((Arc::clone(buf), self.trace_id, self.parent)),
                name: name.into(),
                tid,
                start_us: buf.now_us(),
                span_id: next_id(),
            },
            None => TraceSpan {
                ctx: None,
                name: String::new(),
                tid: 0,
                start_us: 0.0,
                span_id: 0,
            },
        }
    }

    /// Records a span with explicit timestamps (for stages measured
    /// before the trace existed, like accept-queue wait and parse).
    /// Returns the new span's id (0 when disabled).
    pub fn record(&self, name: impl Into<String>, tid: u32, start_us: f64, dur_us: f64) -> u64 {
        let Some(buf) = &self.buf else { return 0 };
        let span_id = next_id();
        buf.append(
            self.trace_id,
            SpanRecord {
                name: name.into(),
                tid,
                start_us,
                dur_us: dur_us.max(0.0),
                trace_id: self.trace_id,
                span_id,
                parent_id: self.parent,
            },
        );
        span_id
    }

    /// Closes the trace's root span: one span covering the whole request,
    /// from the backdated trace start to now, parented to nothing. Call
    /// once, after the response is written.
    pub fn finish_root(&self, name: impl Into<String>, tid: u32) {
        let Some(buf) = &self.buf else { return };
        buf.append(
            self.trace_id,
            SpanRecord {
                name: name.into(),
                tid,
                start_us: self.root_start_us,
                dur_us: (buf.now_us() - self.root_start_us).max(0.0),
                trace_id: self.trace_id,
                span_id: self.root_span,
                parent_id: 0,
            },
        );
    }
}

/// RAII guard from [`TraceCtx::span`]; appends the span to its trace on
/// drop.
pub struct TraceSpan {
    ctx: Option<(Arc<TraceBuffer>, u64, u64)>,
    name: String,
    tid: u32,
    start_us: f64,
    span_id: u64,
}

impl TraceSpan {
    /// This span's id (0 when disabled) — use as a child's parent.
    pub fn id(&self) -> u64 {
        self.span_id
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some((buf, trace_id, parent)) = self.ctx.take() {
            let record = SpanRecord {
                name: std::mem::take(&mut self.name),
                tid: self.tid,
                start_us: self.start_us,
                dur_us: buf.now_us() - self.start_us,
                trace_id,
                span_id: self.span_id,
                parent_id: parent,
            };
            buf.append(trace_id, record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn spans_accumulate_under_their_trace() {
        let buf = TraceBuffer::new(4, 8);
        let ctx = buf.start("POST /advise");
        assert!(ctx.is_enabled());
        {
            let _s = ctx.span("store.miss", 3);
        }
        ctx.record("parse", 3, 1.0, 2.0);
        ctx.finish_root("request", 3);
        let traces = buf.recent(10);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.label, "POST /advise");
        let names: Vec<&str> = t.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["store.miss", "parse", "request"]);
        // Stage spans parent to the root span; the root parents to 0.
        let root = &t.spans()[2];
        assert_eq!(root.parent_id, 0);
        assert!(t.spans()[..2].iter().all(|s| s.parent_id == root.span_id));
        assert!(t.spans().iter().all(|s| s.trace_id == t.trace_id));
    }

    #[test]
    fn buffer_evicts_oldest_trace() {
        let buf = TraceBuffer::new(2, 4);
        let first = buf.start("a");
        buf.start("b").finish_root("request", 0);
        buf.start("c").finish_root("request", 0);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.evicted(), 1);
        let labels: Vec<String> = buf.recent(10).into_iter().map(|t| t.label).collect();
        assert_eq!(labels, vec!["b", "c"]);
        // A late span for the evicted trace is silently dropped.
        first.record("late", 0, 0.0, 1.0);
        assert!(buf.recent(10).iter().all(|t| t.label != "a"));
    }

    #[test]
    fn resume_joins_the_original_trace() {
        let buf = TraceBuffer::new(4, 8);
        let ctx = buf.start("POST /advise");
        let root_parent = ctx.parent_span();
        let resumed = buf.resume(ctx.trace_id(), root_parent);
        {
            let _s = resumed.span("refine.run", 7);
        }
        let t = &buf.recent(1)[0];
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.spans()[0].name, "refine.run");
        assert_eq!(t.spans()[0].parent_id, root_parent);
        assert_eq!(buf.resume(0, 0).trace_id(), 0, "0 resumes to disabled");
    }

    #[test]
    fn disabled_buffer_hands_out_noop_contexts() {
        let buf = TraceBuffer::new(4, 8);
        buf.set_enabled(false);
        let ctx = buf.start("ignored");
        assert!(!ctx.is_enabled());
        {
            let _s = ctx.span("x", 0);
        }
        ctx.record("y", 0, 0.0, 1.0);
        ctx.finish_root("request", 0);
        assert!(buf.is_empty());
        assert_eq!(buf.started(), 0);
    }

    #[test]
    fn per_trace_span_cap_counts_overflow() {
        let buf = TraceBuffer::new(1, 2);
        let ctx = buf.start("busy");
        for i in 0..5 {
            ctx.record(format!("s{i}"), 0, 0.0, 1.0);
        }
        let t = &buf.recent(1)[0];
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.spans_dropped(), 3);
    }

    #[test]
    fn ambient_trace_follows_enter_guards() {
        let buf = TraceBuffer::new(1, 2);
        let ctx = buf.start("req");
        assert_eq!(current_trace(), 0);
        {
            let _g = ctx.enter();
            assert_eq!(current_trace(), ctx.trace_id());
        }
        assert_eq!(current_trace(), 0);
    }
}
