//! Telemetry substrate for the t2opt workspace.
//!
//! The paper (and the repo up to now) diagnoses memory-controller aliasing
//! only through end-to-end bandwidth: one aggregate
//! [`SimStats`](https://docs.rs/t2opt-sim) per run. *When* and *where* a
//! controller saturates is invisible, yet that is exactly the signal that
//! separates "all threads hit one controller at a time" (the mod-512
//! convoy of §2.1) from a genuinely balanced run. This crate supplies the
//! missing layers:
//!
//! * [`metrics`] — host-side primitives: atomic [`metrics::Counter`]s,
//!   fixed-log2-bucket [`metrics::Histogram`]s, span timers, a bounded
//!   [`metrics::RingLog`] event buffer, and a process-wide/thread-local
//!   [`metrics::Sink`] that is **disabled by default** and nearly free when
//!   disabled (one relaxed atomic load per probe).
//! * [`probe`] — the simulator-side hook trait [`probe::SimProbe`]. The
//!   engine is generic over it and runs with the no-op [`probe::NoProbe`]
//!   unless tracing is requested, so the uninstrumented path monomorphizes
//!   to exactly the pre-instrumentation code: disabled telemetry is
//!   *zero*-cost and bitwise deterministic.
//! * [`timeline`] — time-resolved collection: per-MC busy/queue/NACK
//!   samples bucketed into fixed windows of `interval` cycles, per-bank
//!   access counts, per-thread stall breakdowns, and a bounded event log,
//!   assembled into a serializable [`timeline::Timeline`].
//! * [`alias`] — the [`alias::AliasReport`] analysis pass: per-window MC
//!   imbalance (max/mean), effective-parallelism flagging (the runtime
//!   signature of mod-512 congruence aliasing), and naming of the offending
//!   address streams.
//! * [`export`] — JSON-lines, Chrome-trace (`chrome://tracing` /
//!   Perfetto), Prometheus text-exposition, and terminal ASCII-heatmap
//!   exporters.
//! * [`trace`] — request-scoped tracing for the serving stack: cheap
//!   xorshift trace/span ids, a [`trace::TraceCtx`] carried across the
//!   accept → parse → tier-decision → refinement → store chain, and a
//!   bounded [`trace::TraceBuffer`] retaining recent request traces.
//! * [`logger`] — a minimal leveled structured logger (JSON lines with
//!   the ambient trace id stamped on every line).

#![warn(missing_docs)]

pub mod alias;
pub mod export;
pub mod logger;
pub mod metrics;
pub mod probe;
pub mod timeline;
pub mod trace;

/// The most commonly used telemetry types.
pub mod prelude {
    pub use crate::alias::{AliasConfig, AliasReport};
    pub use crate::export::{
        ascii_heatmap, chrome_trace, prometheus_text, spans_chrome_trace, timeline_jsonl,
        traces_chrome_trace,
    };
    pub use crate::logger::{log_line, Level, Logger};
    pub use crate::metrics::{Counter, Histogram, RingLog, Sink, SpanRecord};
    pub use crate::probe::{NoProbe, SimProbe, StallKind};
    pub use crate::timeline::{StreamLabel, Timeline, TimelineRecorder, TraceConfig};
    pub use crate::trace::{TraceBuffer, TraceCtx};
}
