//! Time-resolved simulator telemetry: fixed-width cycle windows of per-MC
//! and per-bank activity, per-thread stall breakdowns, and a bounded event
//! log, assembled into a serializable [`Timeline`].
//!
//! The [`TimelineRecorder`] implements [`SimProbe`]: the engine calls its
//! hooks as requests are admitted, and the recorder buckets each
//! observation into the window `(cycle - origin) / interval`. The origin
//! follows the measurement window — a `window_reset` (warm-up barrier)
//! discards everything collected before it, mirroring
//! `SimStats::reset_window`.

use crate::metrics::RingLog;
use crate::probe::{SimProbe, StallKind};
use serde::Serialize;

/// A named address stream, used by the alias analysis to report *which*
/// arrays convoy (their congruence class mod 512 B is what matters).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct StreamLabel {
    /// Human-readable stream name (e.g. `"B"` or `"src row 3"`).
    pub name: String,
    /// Byte base address of the stream.
    pub base: u64,
}

impl StreamLabel {
    /// A label for the stream starting at `base`.
    pub fn new(name: impl Into<String>, base: u64) -> Self {
        StreamLabel {
            name: name.into(),
            base,
        }
    }
}

/// Configuration of a traced simulation run.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Window width in cycles. Values near the per-controller convoy dwell
    /// (1–2k cycles on the calibrated T2) resolve the one-hot-MC rotation;
    /// the default is 1024.
    pub interval: u64,
    /// Labels of the address streams the run touches (optional; enables
    /// stream naming in the alias report).
    pub streams: Vec<StreamLabel>,
    /// Capacity of the bounded event log (NACKs, barrier releases).
    pub event_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            interval: 1024,
            streams: Vec::new(),
            event_capacity: 4096,
        }
    }
}

impl TraceConfig {
    /// A config with the given window width and defaults otherwise.
    pub fn with_interval(interval: u64) -> Self {
        TraceConfig {
            interval: interval.max(1),
            ..Default::default()
        }
    }

    /// Sets the stream labels.
    pub fn streams(mut self, streams: Vec<StreamLabel>) -> Self {
        self.streams = streams;
        self
    }
}

/// One fixed-width window of simulator activity.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct Window {
    /// First cycle of the window.
    pub start_cycle: u64,
    /// Channel-busy cycles charged per memory controller.
    pub mc_busy: Vec<u64>,
    /// NACKs per memory controller.
    pub mc_nacks: Vec<u64>,
    /// Peak controller input-queue occupancy observed per controller.
    pub mc_queue_peak: Vec<u64>,
    /// L2 accesses per bank.
    pub bank_accesses: Vec<u64>,
    /// Total memory operations retired in the window.
    pub mem_ops: u64,
}

impl Window {
    fn new(start_cycle: u64, n_mcs: usize, n_banks: usize) -> Self {
        Window {
            start_cycle,
            mc_busy: vec![0; n_mcs],
            mc_nacks: vec![0; n_mcs],
            mc_queue_peak: vec![0; n_mcs],
            bank_accesses: vec![0; n_banks],
            mem_ops: 0,
        }
    }

    /// Effective memory parallelism of the window: total MC busy cycles
    /// over the busiest controller's (∈ `[1, n_mcs]`; 0 when idle). A
    /// convoyed run sits near 1, a balanced one near the controller count.
    pub fn effective_parallelism(&self) -> f64 {
        let max = self.mc_busy.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 0.0;
        }
        self.mc_busy.iter().sum::<u64>() as f64 / max as f64
    }

    /// Imbalance of the window: busiest controller over the mean (1.0 =
    /// even, `n_mcs` = one hotspot; 1.0 when idle).
    pub fn imbalance(&self) -> f64 {
        let max = self.mc_busy.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let mean = self.mc_busy.iter().sum::<u64>() as f64 / self.mc_busy.len() as f64;
        max as f64 / mean
    }
}

/// Per-thread cycles lost to each stall cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ThreadStalls {
    /// Outstanding-load-miss budget.
    pub load_miss: u64,
    /// Full TSO store buffer.
    pub store_buffer: u64,
    /// Memory-pipe issue slot.
    pub pipe: u64,
    /// Shared-FPU serialization.
    pub fpu: u64,
    /// NACK retry backoff.
    pub nack: u64,
    /// Gang drift window.
    pub drift: u64,
    /// Barrier waits.
    pub barrier: u64,
}

impl ThreadStalls {
    fn add(&mut self, kind: StallKind, cycles: u64) {
        match kind {
            StallKind::LoadMiss => self.load_miss += cycles,
            StallKind::StoreBuffer => self.store_buffer += cycles,
            StallKind::Pipe => self.pipe += cycles,
            StallKind::Fpu => self.fpu += cycles,
            StallKind::Nack => self.nack += cycles,
            StallKind::Drift => self.drift += cycles,
            StallKind::Barrier => self.barrier += cycles,
        }
    }

    /// Total stalled cycles across all causes.
    pub fn total(&self) -> u64 {
        self.load_miss
            + self.store_buffer
            + self.pipe
            + self.fpu
            + self.nack
            + self.drift
            + self.barrier
    }
}

/// A discrete simulator event retained in the bounded log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum SimEvent {
    /// A request was NACKed.
    Nack {
        /// Cycle of the rejection.
        cycle: u64,
        /// Issuing thread.
        tid: u32,
        /// Target controller.
        mc: u32,
        /// Target bank.
        bank: u32,
        /// Full controller queue (vs full bank miss buffer).
        mc_full: bool,
    },
    /// A barrier released all threads.
    BarrierRelease {
        /// Release cycle.
        cycle: u64,
        /// Barrier id.
        id: u32,
    },
}

/// The assembled time-resolved record of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct Timeline {
    /// Window width in cycles.
    pub interval: u64,
    /// Memory-controller count.
    pub n_mcs: usize,
    /// L2 bank count.
    pub n_banks: usize,
    /// First recorded cycle (measurement-window open).
    pub start_cycle: u64,
    /// Last simulated cycle.
    pub end_cycle: u64,
    /// Consecutive windows covering `[start_cycle, end_cycle)`.
    pub windows: Vec<Window>,
    /// Per-thread stall breakdowns.
    pub thread_stalls: Vec<ThreadStalls>,
    /// Stream labels carried through from the [`TraceConfig`].
    pub streams: Vec<StreamLabel>,
    /// Retained discrete events, oldest first.
    pub events: Vec<SimEvent>,
    /// Events dropped because the log filled up.
    pub events_dropped: u64,
}

impl Timeline {
    /// Recorded duration in cycles.
    pub fn duration(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Utilization of controller `mc` in window `w` as a fraction of the
    /// window, clamped to `[0, 1]` (busy cycles are attributed to the
    /// admission window, so a tail window can nominally exceed it).
    pub fn utilization(&self, w: usize, mc: usize) -> f64 {
        let busy = self.windows[w].mc_busy[mc];
        (busy as f64 / self.interval as f64).min(1.0)
    }
}

/// A [`SimProbe`] that collects a [`Timeline`]; see the module docs.
pub struct TimelineRecorder {
    interval: u64,
    n_mcs: usize,
    n_banks: usize,
    origin: u64,
    windows: Vec<Window>,
    stalls: Vec<ThreadStalls>,
    streams: Vec<StreamLabel>,
    events: RingLog<SimEvent>,
    event_capacity: usize,
}

impl TimelineRecorder {
    /// A recorder for a chip with `n_mcs` controllers and `n_banks` banks
    /// running `n_threads` simulated threads.
    pub fn new(n_mcs: usize, n_banks: usize, n_threads: usize, cfg: &TraceConfig) -> Self {
        TimelineRecorder {
            interval: cfg.interval.max(1),
            n_mcs,
            n_banks,
            origin: 0,
            windows: Vec::new(),
            stalls: vec![ThreadStalls::default(); n_threads],
            streams: cfg.streams.clone(),
            events: RingLog::new(cfg.event_capacity),
            event_capacity: cfg.event_capacity,
        }
    }

    fn window_mut(&mut self, cycle: u64) -> &mut Window {
        let idx = (cycle.saturating_sub(self.origin) / self.interval) as usize;
        while self.windows.len() <= idx {
            let start = self.origin + self.windows.len() as u64 * self.interval;
            self.windows
                .push(Window::new(start, self.n_mcs, self.n_banks));
        }
        &mut self.windows[idx]
    }

    /// Finalizes the record. `end_cycle` is the simulation's last cycle
    /// (`SimStats::end_cycle`); the window list is padded so it covers the
    /// whole measured span even if the tail was idle.
    pub fn finish(mut self, end_cycle: u64) -> Timeline {
        if end_cycle > self.origin {
            self.window_mut(end_cycle - 1);
        }
        Timeline {
            interval: self.interval,
            n_mcs: self.n_mcs,
            n_banks: self.n_banks,
            start_cycle: self.origin,
            end_cycle: end_cycle.max(self.origin),
            windows: self.windows,
            thread_stalls: self.stalls,
            streams: self.streams,
            events_dropped: self.events.dropped(),
            events: self.events.into_vec(),
        }
    }
}

impl SimProbe for TimelineRecorder {
    fn mc_service(
        &mut self,
        mc: usize,
        at_cycle: u64,
        busy_added: u64,
        queue_len: usize,
        _is_write: bool,
    ) {
        let w = self.window_mut(at_cycle);
        w.mc_busy[mc] += busy_added;
        w.mc_queue_peak[mc] = w.mc_queue_peak[mc].max(queue_len as u64);
    }

    fn bank_access(&mut self, bank: usize, at_cycle: u64) {
        let w = self.window_mut(at_cycle);
        w.bank_accesses[bank] += 1;
        w.mem_ops += 1;
    }

    fn nack(&mut self, at_cycle: u64, tid: u32, mc: usize, bank: usize, mc_full: bool) {
        self.window_mut(at_cycle).mc_nacks[mc] += 1;
        self.events.push(SimEvent::Nack {
            cycle: at_cycle,
            tid,
            mc: mc as u32,
            bank: bank as u32,
            mc_full,
        });
    }

    fn stall(&mut self, tid: u32, kind: StallKind, from_cycle: u64, until_cycle: u64) {
        // Stalls that began before the window opened count only their
        // in-window part.
        let from = from_cycle.max(self.origin);
        let cycles = until_cycle.saturating_sub(from);
        if cycles > 0 {
            self.stalls[tid as usize].add(kind, cycles);
        }
    }

    fn barrier_release(&mut self, id: u32, at_cycle: u64) {
        self.events.push(SimEvent::BarrierRelease {
            cycle: at_cycle,
            id,
        });
    }

    fn window_reset(&mut self, at_cycle: u64) {
        self.origin = at_cycle;
        self.windows.clear();
        for s in &mut self.stalls {
            *s = ThreadStalls::default();
        }
        self.events = RingLog::new(self.event_capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder() -> TimelineRecorder {
        TimelineRecorder::new(4, 8, 2, &TraceConfig::with_interval(100))
    }

    #[test]
    fn observations_land_in_their_window() {
        let mut r = recorder();
        r.mc_service(1, 50, 12, 3, false);
        r.mc_service(1, 250, 12, 5, false);
        r.bank_access(7, 250);
        let t = r.finish(300);
        assert_eq!(t.windows.len(), 3);
        assert_eq!(t.windows[0].mc_busy[1], 12);
        assert_eq!(t.windows[1].mc_busy[1], 0);
        assert_eq!(t.windows[2].mc_busy[1], 12);
        assert_eq!(t.windows[2].mc_queue_peak[1], 5);
        assert_eq!(t.windows[2].bank_accesses[7], 1);
        assert_eq!(t.windows[2].mem_ops, 1);
        assert_eq!(t.windows[1].start_cycle, 100);
    }

    #[test]
    fn window_reset_discards_warmup_and_rebases() {
        let mut r = recorder();
        r.mc_service(0, 10, 99, 1, false);
        r.stall(0, StallKind::Nack, 0, 50);
        r.nack(5, 0, 0, 0, true);
        r.window_reset(1000);
        r.mc_service(2, 1010, 7, 1, false);
        r.stall(1, StallKind::Barrier, 900, 1100); // clamped to origin
        let t = r.finish(1100);
        assert_eq!(t.start_cycle, 1000);
        assert_eq!(t.windows.len(), 1);
        assert_eq!(t.windows[0].start_cycle, 1000);
        assert_eq!(t.windows[0].mc_busy[2], 7);
        assert!(t.events.is_empty());
        assert_eq!(t.thread_stalls[0].total(), 0);
        assert_eq!(t.thread_stalls[1].barrier, 100);
    }

    #[test]
    fn stalls_accumulate_by_kind() {
        let mut r = recorder();
        r.stall(1, StallKind::LoadMiss, 0, 30);
        r.stall(1, StallKind::LoadMiss, 40, 50);
        r.stall(1, StallKind::Fpu, 0, 5);
        let t = r.finish(50);
        assert_eq!(t.thread_stalls[1].load_miss, 40);
        assert_eq!(t.thread_stalls[1].fpu, 5);
        assert_eq!(t.thread_stalls[1].total(), 45);
    }

    #[test]
    fn event_log_is_bounded() {
        let mut cfg = TraceConfig::with_interval(100);
        cfg.event_capacity = 2;
        let mut r = TimelineRecorder::new(4, 8, 1, &cfg);
        for i in 0..5 {
            r.nack(i, 0, 0, 0, false);
        }
        let t = r.finish(10);
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events_dropped, 3);
    }

    #[test]
    fn effective_parallelism_and_imbalance() {
        let mut w = Window::new(0, 4, 8);
        assert_eq!(w.effective_parallelism(), 0.0);
        assert_eq!(w.imbalance(), 1.0);
        w.mc_busy = vec![100, 100, 100, 100];
        assert!((w.effective_parallelism() - 4.0).abs() < 1e-12);
        assert!((w.imbalance() - 1.0).abs() < 1e-12);
        w.mc_busy = vec![400, 0, 0, 0];
        assert!((w.effective_parallelism() - 1.0).abs() < 1e-12);
        assert!((w.imbalance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn finish_pads_idle_tail() {
        let mut r = recorder();
        r.bank_access(0, 10);
        let t = r.finish(1000);
        assert_eq!(t.windows.len(), 10);
        assert_eq!(t.duration(), 1000);
    }
}
