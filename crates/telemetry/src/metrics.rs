//! Host-side metric primitives: counters, log2-bucket histograms, span
//! timers, a bounded ring-buffer event log, and the [`Sink`] registry.
//!
//! Everything here is built for *instrumenting real host code* (the thread
//! pool, the autotuner) rather than the simulator hot loop — the simulator
//! uses the zero-cost [`crate::probe::SimProbe`] path instead. The overhead
//! contract for host code is: a **disabled** sink costs one relaxed atomic
//! load per probe site (spans return a no-op guard, counters are still
//! plain atomics the caller may cache); an enabled sink costs an atomic
//! RMW per counter bump and a mutex push per finished span.

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value. For counters that *mirror* an authoritative
    /// counter owned elsewhere (the store's own atomics, say): repeated
    /// publishes are then idempotent, where repeated `add`s of a delta
    /// double-count under racing publishers.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: one per power of two of `u64`.
pub const HIST_BUCKETS: usize = 64;

/// A lock-free histogram with fixed log2 buckets: bucket 0 holds the value
/// 0, bucket `i > 0` holds values in `[2^(i-1), 2^i)`.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: 0 for 0, else `1 + floor(log2 v)`,
    /// saturated to the last bucket. Public so consumers comparing an
    /// externally measured value against an exported histogram (e.g. the
    /// serve load generator's p99 cross-check) can place the value in the
    /// same bucket space.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the current state (individual loads are
    /// relaxed; exact only once recording has stopped).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`Histogram`] for the mapping).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`
    /// (0 when empty). Resolution is one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        match self.quantile_bucket(q) {
            Some(0) | None => 0,
            Some(i) => 1u64 << i.min(63),
        }
    }

    /// Index of the log2 bucket containing quantile `q` in `[0, 1]`, or
    /// `None` when the histogram is empty. The bucket is found by walking
    /// the cumulative counts to `ceil(q · count)` (so `q = 0` is the
    /// smallest observation's bucket and `q = 1` the largest's).
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(i);
            }
        }
        // Bucket counts can lag `count` under concurrent recording; charge
        // the remainder to the last bucket rather than invent an index.
        Some(self.buckets.len().saturating_sub(1))
    }

    /// Inclusive `[lo, hi]` value bounds of the bucket containing quantile
    /// `q` (`(0, 0)` when empty). The true quantile of the recorded values
    /// is guaranteed to lie in this interval; its width is the histogram's
    /// documented error bound — one power of two, i.e. any point estimate
    /// taken from the bucket is within 2× of the true value.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        match self.quantile_bucket(q) {
            None | Some(0) => (0, 0),
            Some(i) => {
                let lo = 1u64 << (i - 1).min(63);
                let hi = if i >= 64 - 1 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                (lo, hi)
            }
        }
    }

    /// Median estimate: the upper bound of the p50 bucket (within 2× of
    /// the true median — see [`HistogramSnapshot::quantile_bounds`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (bucket upper bound).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// A bounded event log that overwrites nothing: once full, *new* entries
/// are dropped and counted, so the retained prefix stays contiguous in
/// time (the window-open edge is what the alias analysis needs; dropping
/// the tail is explicit in `dropped`).
#[derive(Debug, Clone)]
pub struct RingLog<T> {
    buf: Vec<T>,
    cap: usize,
    dropped: u64,
}

impl<T> RingLog<T> {
    /// A log holding at most `cap` entries (`cap = 0` drops everything).
    pub fn new(cap: usize) -> Self {
        RingLog {
            buf: Vec::with_capacity(cap.min(4096)),
            cap,
            dropped: 0,
        }
    }

    /// Appends an entry, or counts it as dropped when full.
    #[inline]
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.cap {
            self.buf.push(item);
        } else {
            self.dropped += 1;
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the log holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Entries rejected because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained entries in insertion order.
    pub fn as_slice(&self) -> &[T] {
        &self.buf
    }

    /// Consumes the log, returning the retained entries in insertion order.
    pub fn into_vec(self) -> Vec<T> {
        self.buf
    }
}

/// One completed span: a named timed region on a host thread.
///
/// The three id fields tie spans into request traces (see
/// [`crate::trace`]): all zero for plain un-traced spans, otherwise
/// `trace_id` groups the spans of one logical request, `span_id` names
/// this span, and `parent_id` is the enclosing span (0 for a root).
#[derive(Debug, Clone, Serialize)]
pub struct SpanRecord {
    /// Span name (e.g. `"trial offset=128"`).
    pub name: String,
    /// Logical thread id supplied by the instrumented code.
    pub tid: u32,
    /// Start time in microseconds since the sink's epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Trace this span belongs to (0 = not part of a trace).
    pub trace_id: u64,
    /// This span's own id (0 = un-traced legacy span).
    pub span_id: u64,
    /// Id of the enclosing span (0 = root of its trace).
    pub parent_id: u64,
}

/// A registry of named counters and histograms plus a span log, shared via
/// `Arc` between the instrumented code and the exporter.
///
/// Sinks start **disabled**: probes check [`Sink::enabled`] (one relaxed
/// atomic load) and bail out. Call [`Sink::set_enabled`] to start
/// recording.
pub struct Sink {
    enabled: AtomicBool,
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Sink {
    /// A fresh, disabled sink.
    pub fn new() -> Arc<Self> {
        Arc::new(Sink {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(Vec::new()),
        })
    }

    /// A fresh sink that is already recording.
    pub fn enabled() -> Arc<Self> {
        let s = Sink::new();
        s.set_enabled(true);
        s
    }

    /// Whether the sink records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Microseconds since the sink was created.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// The counter registered under `name` (created on first use). Cache
    /// the returned `Arc` outside loops — the lookup takes a mutex.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Starts a span; the span is recorded when the returned guard drops.
    /// On a disabled sink this is a no-op guard.
    pub fn span(self: &Arc<Self>, name: impl Into<String>, tid: u32) -> SpanGuard {
        self.span_with_ids(name, tid, 0, 0, 0)
    }

    /// Starts a span that is the **root of a fresh trace**: a new trace id
    /// and span id are drawn from [`crate::trace::next_id`], so child
    /// spans can parent to it via [`Sink::span_child`].
    pub fn span_root(self: &Arc<Self>, name: impl Into<String>, tid: u32) -> SpanGuard {
        if !self.is_enabled() {
            return self.span_with_ids(name, tid, 0, 0, 0);
        }
        let trace_id = crate::trace::next_id();
        let span_id = crate::trace::next_id();
        self.span_with_ids(name, tid, trace_id, span_id, 0)
    }

    /// Starts a span inside an existing trace, parented to `parent_id`.
    pub fn span_child(
        self: &Arc<Self>,
        name: impl Into<String>,
        tid: u32,
        trace_id: u64,
        parent_id: u64,
    ) -> SpanGuard {
        if !self.is_enabled() {
            return self.span_with_ids(name, tid, 0, 0, 0);
        }
        self.span_with_ids(name, tid, trace_id, crate::trace::next_id(), parent_id)
    }

    fn span_with_ids(
        self: &Arc<Self>,
        name: impl Into<String>,
        tid: u32,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
    ) -> SpanGuard {
        if self.is_enabled() {
            SpanGuard {
                sink: Some(Arc::clone(self)),
                name: name.into(),
                tid,
                start_us: self.now_us(),
                trace_id,
                span_id,
                parent_id,
            }
        } else {
            SpanGuard {
                sink: None,
                name: String::new(),
                tid: 0,
                start_us: 0.0,
                trace_id: 0,
                span_id: 0,
                parent_id: 0,
            }
        }
    }

    /// All completed spans so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("span log").clone()
    }

    /// All counters as `(name, value)`, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .expect("counter registry")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All histograms as `(name, snapshot)`, sorted by name.
    pub fn histogram_values(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .lock()
            .expect("histogram registry")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

/// RAII guard returned by [`Sink::span`]; records the span on drop.
pub struct SpanGuard {
    sink: Option<Arc<Sink>>,
    name: String,
    tid: u32,
    start_us: f64,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
}

impl SpanGuard {
    /// The trace id this span opened or joined (0 for a no-op guard).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// This span's id (0 for a no-op guard), usable as a child's parent.
    pub fn span_id(&self) -> u64 {
        self.span_id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(sink) = self.sink.take() {
            let record = SpanRecord {
                name: std::mem::take(&mut self.name),
                tid: self.tid,
                start_us: self.start_us,
                dur_us: sink.now_us() - self.start_us,
                trace_id: self.trace_id,
                span_id: self.span_id,
                parent_id: self.parent_id,
            };
            sink.spans.lock().expect("span log").push(record);
        }
    }
}

thread_local! {
    static THREAD_SINK: std::cell::RefCell<Option<Arc<Sink>>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs `sink` as this thread's ambient sink (for hot code that cannot
/// thread a handle through its signature).
pub fn install_thread_sink(sink: Arc<Sink>) {
    THREAD_SINK.with(|s| *s.borrow_mut() = Some(sink));
}

/// Removes this thread's ambient sink.
pub fn clear_thread_sink() {
    THREAD_SINK.with(|s| *s.borrow_mut() = None);
}

/// Runs `f` with this thread's ambient sink, if one is installed.
pub fn with_thread_sink<R>(f: impl FnOnce(&Arc<Sink>) -> R) -> Option<R> {
    THREAD_SINK.with(|s| s.borrow().as_ref().map(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 1); // 4
        assert_eq!(s.buckets[10], 1); // 1000 ∈ [512, 1024)
        assert_eq!(s.buckets[HIST_BUCKETS - 1], 1); // u64::MAX
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
        for _ in 0..99 {
            h.record(100); // bucket 7: [64, 128)
        }
        h.record(100_000); // bucket 17
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 128);
        assert_eq!(s.quantile(1.0), 1 << 17);
        assert!((s.mean() - (99.0 * 100.0 + 100_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn ring_log_drops_overflow_and_counts_it() {
        let mut log = RingLog::new(3);
        assert!(log.is_empty());
        for i in 0..10 {
            log.push(i);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.capacity(), 3);
        assert_eq!(log.dropped(), 7);
        assert_eq!(log.into_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn zero_capacity_ring_log_drops_everything() {
        let mut log: RingLog<u8> = RingLog::new(0);
        log.push(1);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn disabled_sink_records_no_spans() {
        let sink = Sink::new();
        {
            let _g = sink.span("ignored", 0);
        }
        assert!(sink.spans().is_empty());
    }

    #[test]
    fn enabled_sink_records_spans_and_counters() {
        let sink = Sink::enabled();
        {
            let _g = sink.span("work", 3);
            sink.counter("hits").add(2);
        }
        let spans = sink.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "work");
        assert_eq!(spans[0].tid, 3);
        assert!(spans[0].dur_us >= 0.0);
        assert_eq!(sink.counter_values(), vec![("hits".to_string(), 2)]);
    }

    #[test]
    fn parented_spans_share_a_trace() {
        let sink = Sink::enabled();
        let (trace, parent);
        {
            let root = sink.span_root("run", 0);
            trace = root.trace_id();
            parent = root.span_id();
            assert_ne!(trace, 0);
            assert_ne!(parent, 0);
            let _child = sink.span_child("trial", 1, trace, parent);
        }
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        // The child guard drops before the root guard.
        assert_eq!(spans[0].trace_id, trace);
        assert_eq!(spans[0].parent_id, parent);
        assert_ne!(spans[0].span_id, parent);
        assert_eq!(spans[1].span_id, parent);
        assert_eq!(spans[1].parent_id, 0);
    }

    #[test]
    fn quantile_bounds_bracket_the_true_value() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(100); // bucket 7: [64, 127]
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_bucket(0.5), Some(7));
        assert_eq!(s.quantile_bounds(0.5), (64, 127));
        assert_eq!(s.quantile_bounds(0.99), (64, 127));
        // Empty and zero-valued histograms pin to (0, 0).
        assert_eq!(Histogram::new().snapshot().quantile_bounds(0.5), (0, 0));
        let z = Histogram::new();
        z.record(0);
        assert_eq!(z.snapshot().quantile_bounds(0.99), (0, 0));
        // The last bucket's upper bound saturates to u64::MAX.
        let top = Histogram::new();
        top.record(u64::MAX);
        assert_eq!(top.snapshot().quantile_bounds(1.0), (1 << 62, u64::MAX));
    }

    #[test]
    fn thread_sink_is_ambient() {
        let sink = Sink::enabled();
        install_thread_sink(Arc::clone(&sink));
        with_thread_sink(|s| s.counter("x").inc()).expect("installed");
        clear_thread_sink();
        assert_eq!(with_thread_sink(|_| ()), None);
        assert_eq!(sink.counter("x").get(), 1);
    }
}
