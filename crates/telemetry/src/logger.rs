//! Minimal leveled structured logger: one JSON object per line, written
//! to stderr or a file, with the thread's ambient trace id
//! ([`crate::trace::current_trace`]) stamped on every line so a log line
//! joins to its request trace.
//!
//! There is deliberately no macro layer or dependency: the daemon calls
//! [`log_line`] (or [`Logger::log`] on an explicit instance, which tests
//! use to capture output). The global logger is installed once via
//! [`init`] / [`init_from_env`]; before installation — and in every
//! library context that never installs one — logging is a no-op, so
//! crates can log unconditionally without configuring anything.

use std::fmt;
use std::io::Write;
use std::str::FromStr;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered: a logger at level `Info` emits `Error`, `Warn`,
/// and `Info` lines and drops `Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The daemon cannot do what it was asked to (failed bind, lost store).
    Error,
    /// Degraded but continuing (dropped refinement job, slow scrape).
    Warn,
    /// Normal operational milestones (listening, shutdown, compaction).
    Info,
    /// Per-request detail; off by default.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!(
                "unknown log level {other:?} (expected error|warn|info|debug)"
            )),
        }
    }
}

/// A leveled JSONL writer. The daemon uses one global instance
/// ([`init`]); tests construct their own over a `Vec<u8>` to assert on
/// output.
pub struct Logger {
    level: Level,
    out: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for Logger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Logger")
            .field("level", &self.level)
            .finish()
    }
}

impl Logger {
    /// A logger emitting lines at `level` and above into `out`.
    pub fn new(level: Level, out: Box<dyn Write + Send>) -> Self {
        Logger {
            level,
            out: Mutex::new(out),
        }
    }

    /// A logger writing to stderr.
    pub fn stderr(level: Level) -> Self {
        Logger::new(level, Box::new(std::io::stderr()))
    }

    /// A logger appending to the file at `path`.
    pub fn file(level: Level, path: &str) -> std::io::Result<Self> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Logger::new(level, Box::new(f)))
    }

    /// The threshold this logger emits at.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Emits one JSON line: `ts` (unix seconds), `level`, `msg`, `trace`
    /// (hex, only when the thread is inside a traced request), plus
    /// `extra` key/value pairs (values emitted verbatim — pass already
    /// valid JSON, e.g. via [`json_str`] for strings). Drops the line if
    /// below the logger's level. I/O errors are swallowed: logging must
    /// never take the daemon down.
    pub fn log(&self, level: Level, msg: &str, extra: &[(&str, String)]) {
        if level > self.level {
            return;
        }
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0);
        let mut line = format!(
            "{{\"ts\":{ts:.6},\"level\":\"{}\",\"msg\":{}",
            level.as_str(),
            json_str(msg)
        );
        let trace = crate::trace::current_trace();
        if trace != 0 {
            line.push_str(&format!(",\"trace\":\"{trace:016x}\""));
        }
        for (k, v) in extra {
            line.push_str(&format!(",{}:{v}", json_str(k)));
        }
        line.push_str("}\n");
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }
}

/// Quotes and escapes `s` as a JSON string literal — for `extra` values
/// in [`Logger::log`] / [`log_line`].
pub fn json_str(s: &str) -> String {
    t2opt_core::json::to_json_string(&s)
}

static GLOBAL: OnceLock<Logger> = OnceLock::new();

/// Installs `logger` as the process-wide logger used by [`log_line`].
/// Returns `false` if one was already installed (the first wins).
pub fn init(logger: Logger) -> bool {
    GLOBAL.set(logger).is_ok()
}

/// Installs a global logger configured from the environment: level from
/// `T2OPT_LOG` (default `info`; unparsable values fall back to `info`),
/// writing to `log_path` if given, else stderr. Falls back to stderr if
/// the file cannot be opened (with a complaint on stderr).
pub fn init_from_env(log_path: Option<&str>) -> bool {
    let level = std::env::var("T2OPT_LOG")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(Level::Info);
    let logger = match log_path {
        Some(path) => Logger::file(level, path).unwrap_or_else(|e| {
            eprintln!("t2opt-serve: cannot open log file {path:?} ({e}); logging to stderr");
            Logger::stderr(level)
        }),
        None => Logger::stderr(level),
    };
    init(logger)
}

/// Logs through the global logger; a no-op until [`init`] runs.
pub fn log_line(level: Level, msg: &str, extra: &[(&str, String)]) {
    if let Some(logger) = GLOBAL.get() {
        logger.log(level, msg, extra);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A `Write` handle into a shared buffer so the test can read back
    /// what the logger wrote.
    #[derive(Clone)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn capture(level: Level) -> (Logger, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let logger = Logger::new(level, Box::new(Shared(Arc::clone(&buf))));
        (logger, buf)
    }

    fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
        String::from_utf8(buf.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn lines_are_json_with_level_and_msg() {
        let (logger, buf) = capture(Level::Info);
        logger.log(
            Level::Warn,
            "queue \"full\"\nreally",
            &[("depth", "3".into()), ("key", json_str("a\"b"))],
        );
        let out = lines(&buf);
        assert_eq!(out.len(), 1);
        let parsed = t2opt_core::json::parse_json(&out[0]).expect("line is valid JSON");
        let obj = parsed.as_object().unwrap();
        assert_eq!(obj["level"].as_str(), Some("warn"));
        assert_eq!(obj["msg"].as_str(), Some("queue \"full\"\nreally"));
        assert_eq!(obj["depth"].as_f64(), Some(3.0));
        assert_eq!(obj["key"].as_str(), Some("a\"b"));
        assert!(obj["ts"].as_f64().unwrap() > 1.0e9, "ts is unix seconds");
        assert!(!obj.contains_key("trace"), "no ambient trace, no field");
    }

    #[test]
    fn below_threshold_lines_are_dropped() {
        let (logger, buf) = capture(Level::Warn);
        logger.log(Level::Info, "not emitted", &[]);
        logger.log(Level::Debug, "not emitted either", &[]);
        logger.log(Level::Error, "emitted", &[]);
        assert_eq!(lines(&buf).len(), 1);
    }

    #[test]
    fn ambient_trace_id_is_stamped() {
        let trace_buf = crate::trace::TraceBuffer::new(2, 2);
        let ctx = trace_buf.start("req");
        let (logger, buf) = capture(Level::Debug);
        {
            let _g = ctx.enter();
            logger.log(Level::Debug, "inside", &[]);
        }
        logger.log(Level::Debug, "outside", &[]);
        let out = lines(&buf);
        let inside = t2opt_core::json::parse_json(&out[0]).unwrap();
        let expected = format!("{:016x}", ctx.trace_id());
        assert_eq!(
            inside.as_object().unwrap()["trace"].as_str(),
            Some(expected.as_str())
        );
        assert!(!out[1].contains("trace"));
    }

    #[test]
    fn level_parses_case_insensitively() {
        assert_eq!("DEBUG".parse::<Level>().unwrap(), Level::Debug);
        assert_eq!("warning".parse::<Level>().unwrap(), Level::Warn);
        assert!("verbose".parse::<Level>().is_err());
        assert!(Level::Debug > Level::Info);
    }
}
