//! The simulator-side instrumentation hook: [`SimProbe`].
//!
//! `t2opt_sim::engine` is generic over a `SimProbe` and calls these hooks
//! from its hot loop. The default implementation of every method is an
//! empty `#[inline]` body, and the uninstrumented entry points pass the
//! unit struct [`NoProbe`]; monomorphization therefore compiles the
//! disabled path down to exactly the code the engine had before
//! instrumentation — zero cost, and bitwise-identical `SimStats`
//! (pinned by a regression test in the workspace integration suite).

use serde::Serialize;

/// Why a simulated thread spent cycles not retiring ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum StallKind {
    /// Blocked on the per-thread outstanding-load-miss budget.
    LoadMiss,
    /// Blocked on a full TSO store buffer.
    StoreBuffer,
    /// Waiting for a core memory-pipe issue slot.
    Pipe,
    /// Serialized behind the core's shared FPU.
    Fpu,
    /// NACKed by a full controller queue or bank miss buffer, retrying.
    Nack,
    /// Parked by the gang drift window.
    Drift,
    /// Parked at a barrier.
    Barrier,
}

/// Engine instrumentation hooks. Every method defaults to an inlined no-op;
/// implementors override the subset they need. Cycle arguments are absolute
/// simulation cycles.
pub trait SimProbe {
    /// A memory controller admitted a request: `busy_added` channel-busy
    /// cycles charged at `at_cycle`, with `queue_len` entries occupying the
    /// controller's input queue afterwards.
    #[inline]
    fn mc_service(
        &mut self,
        _mc: usize,
        _at_cycle: u64,
        _busy_added: u64,
        _queue_len: usize,
        _is_write: bool,
    ) {
    }

    /// An L2 bank served an access.
    #[inline]
    fn bank_access(&mut self, _bank: usize, _at_cycle: u64) {}

    /// A request was NACKed (`mc_full` distinguishes a full controller
    /// queue from a full bank miss buffer).
    #[inline]
    fn nack(&mut self, _at_cycle: u64, _tid: u32, _mc: usize, _bank: usize, _mc_full: bool) {}

    /// Thread `tid` is stalled for `[from_cycle, until_cycle)`.
    #[inline]
    fn stall(&mut self, _tid: u32, _kind: StallKind, _from_cycle: u64, _until_cycle: u64) {}

    /// All threads passed barrier `id` at `at_cycle`.
    #[inline]
    fn barrier_release(&mut self, _id: u32, _at_cycle: u64) {}

    /// The measurement window (re)opened at `at_cycle`: discard everything
    /// collected so far.
    #[inline]
    fn window_reset(&mut self, _at_cycle: u64) {}
}

/// The no-op probe used by the uninstrumented simulator entry points.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl SimProbe for NoProbe {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noprobe_hooks_are_callable() {
        let mut p = NoProbe;
        p.mc_service(0, 0, 0, 0, false);
        p.bank_access(0, 0);
        p.nack(0, 0, 0, 0, true);
        p.stall(0, StallKind::Nack, 0, 1);
        p.barrier_release(0, 0);
        p.window_reset(0);
    }
}
