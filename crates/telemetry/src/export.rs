//! Exporters: JSON-lines, Chrome-trace (`chrome://tracing` / Perfetto),
//! Prometheus text exposition, and a terminal ASCII heatmap.
//!
//! All JSON is produced through `t2opt_core::json` (the workspace's
//! dependency-free serializer). The Chrome-trace envelope
//! (`{"traceEvents": [...]}`) is assembled by hand around
//! serde-serialized event objects because the vendored derive supports
//! plain structs only.

use crate::metrics::{HistogramSnapshot, SpanRecord};
use crate::timeline::Timeline;
use crate::trace::TraceRecord;
use serde::Serialize;
use t2opt_core::json::to_json_string;

#[derive(Serialize)]
struct NameArgs {
    name: String,
}

#[derive(Serialize)]
struct MetaEvent {
    ph: String,
    pid: u32,
    tid: u32,
    name: String,
    args: NameArgs,
}

#[derive(Serialize)]
struct SliceEvent {
    ph: String,
    pid: u32,
    tid: u32,
    name: String,
    cat: String,
    ts: f64,
    dur: f64,
}

#[derive(Serialize)]
struct ValueArgs {
    value: f64,
}

#[derive(Serialize)]
struct CounterEvent {
    ph: String,
    pid: u32,
    tid: u32,
    name: String,
    ts: f64,
    args: ValueArgs,
}

/// Process id used for simulator-timeline rows in the Chrome trace.
const SIM_PID: u32 = 1;
/// Process id used for host spans (pool workers, tuner trials).
const HOST_PID: u32 = 2;

fn meta(pid: u32, tid: u32, key: &str, name: &str) -> String {
    to_json_string(&MetaEvent {
        ph: "M".to_string(),
        pid,
        tid,
        name: key.to_string(),
        args: NameArgs {
            name: name.to_string(),
        },
    })
}

fn span_event(pid: u32, s: &SpanRecord) -> String {
    to_json_string(&SliceEvent {
        ph: "X".to_string(),
        pid,
        tid: s.tid,
        name: s.name.clone(),
        cat: "host".to_string(),
        ts: s.start_us,
        dur: s.dur_us,
    })
}

fn envelope(events: Vec<String>) -> String {
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

/// Renders a [`Timeline`] (plus optional host spans) as a Chrome-trace
/// JSON string. `cycles_per_us` converts simulator cycles to trace
/// microseconds (1200 for the 1.2 GHz T2); timeline timestamps are
/// rebased to the measurement-window open.
pub fn chrome_trace(timeline: &Timeline, spans: &[SpanRecord], cycles_per_us: f64) -> String {
    assert!(cycles_per_us > 0.0, "need a positive cycle rate");
    let us = |cycle: u64| cycle.saturating_sub(timeline.start_cycle) as f64 / cycles_per_us;
    let mut events = Vec::new();
    events.push(meta(SIM_PID, 0, "process_name", "t2opt-sim"));
    for mc in 0..timeline.n_mcs {
        events.push(meta(SIM_PID, mc as u32, "thread_name", &format!("MC{mc}")));
    }
    for w in &timeline.windows {
        for mc in 0..timeline.n_mcs {
            let busy = w.mc_busy[mc];
            if busy == 0 {
                continue;
            }
            events.push(to_json_string(&SliceEvent {
                ph: "X".to_string(),
                pid: SIM_PID,
                tid: mc as u32,
                name: "busy".to_string(),
                cat: "mc".to_string(),
                ts: us(w.start_cycle),
                dur: busy.min(timeline.interval) as f64 / cycles_per_us,
            }));
        }
        events.push(to_json_string(&CounterEvent {
            ph: "C".to_string(),
            pid: SIM_PID,
            tid: 0,
            name: "effective_parallelism".to_string(),
            ts: us(w.start_cycle),
            args: ValueArgs {
                value: w.effective_parallelism(),
            },
        }));
        events.push(to_json_string(&CounterEvent {
            ph: "C".to_string(),
            pid: SIM_PID,
            tid: 0,
            name: "nacks".to_string(),
            ts: us(w.start_cycle),
            args: ValueArgs {
                value: w.mc_nacks.iter().sum::<u64>() as f64,
            },
        }));
    }
    if !spans.is_empty() {
        events.push(meta(HOST_PID, 0, "process_name", "t2opt-host"));
        events.extend(spans.iter().map(|s| span_event(HOST_PID, s)));
    }
    envelope(events)
}

/// Renders host spans and counters alone (no simulator timeline) as a
/// Chrome-trace JSON string — the shape the autotuner exports.
pub fn spans_chrome_trace(spans: &[SpanRecord], counters: &[(String, u64)]) -> String {
    let mut events = Vec::new();
    events.push(meta(HOST_PID, 0, "process_name", "t2opt-host"));
    events.extend(spans.iter().map(|s| span_event(HOST_PID, s)));
    let end_us = spans
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .fold(0.0f64, f64::max);
    for (name, value) in counters {
        events.push(to_json_string(&CounterEvent {
            ph: "C".to_string(),
            pid: HOST_PID,
            tid: 0,
            name: name.clone(),
            ts: end_us,
            args: ValueArgs {
                value: *value as f64,
            },
        }));
    }
    envelope(events)
}

#[derive(Serialize)]
struct SpanIdArgs {
    trace: String,
    span: String,
    parent: String,
}

#[derive(Serialize)]
struct TracedSliceEvent {
    ph: String,
    pid: u32,
    tid: u32,
    name: String,
    cat: String,
    ts: f64,
    dur: f64,
    args: SpanIdArgs,
}

/// Renders recent request traces (from a [`crate::trace::TraceBuffer`])
/// as Chrome-trace JSON loadable in Perfetto / `chrome://tracing`. Each
/// trace becomes its own process row named `"<label> <trace-id-hex>"`;
/// span/parent ids ride along as hex strings in `args` so the tree is
/// reconstructable from the export alone.
pub fn traces_chrome_trace(traces: &[TraceRecord]) -> String {
    let mut events = Vec::new();
    for (i, t) in traces.iter().enumerate() {
        let pid = 100 + i as u32;
        events.push(meta(
            pid,
            0,
            "process_name",
            &format!("{} {:016x}", t.label, t.trace_id),
        ));
        for s in t.spans() {
            events.push(to_json_string(&TracedSliceEvent {
                ph: "X".to_string(),
                pid,
                tid: s.tid,
                name: s.name.clone(),
                cat: "request".to_string(),
                ts: s.start_us,
                dur: s.dur_us,
                args: SpanIdArgs {
                    trace: format!("{:016x}", s.trace_id),
                    span: format!("{:016x}", s.span_id),
                    parent: format!("{:016x}", s.parent_id),
                },
            }));
        }
    }
    envelope(events)
}

/// Sanitizes an internal dotted metric name (`serve.bad_requests`) into
/// the Prometheus name charset `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n` (the three escapes the text exposition format defines).
fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a `# HELP` docstring: `\` → `\\`, newline → `\n`.
fn prom_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One metric family being assembled: header lines emitted once, sample
/// lines in input order.
struct PromFamily {
    name: String,
    kind: &'static str,
    help: String,
    samples: Vec<String>,
}

fn family_mut<'a>(
    families: &'a mut Vec<PromFamily>,
    name: &str,
    kind: &'static str,
    help: String,
) -> &'a mut PromFamily {
    if let Some(i) = families.iter().position(|f| f.name == name) {
        &mut families[i]
    } else {
        families.push(PromFamily {
            name: name.to_string(),
            kind,
            help,
            samples: Vec::new(),
        });
        families.last_mut().expect("just pushed")
    }
}

/// Renders counters and histogram snapshots in the Prometheus text
/// exposition format (version 0.0.4): `# HELP`/`# TYPE` per family, all
/// of a family's samples grouped, label values escaped per the format.
///
/// `label_rules` maps an internal name *prefix* to a label name: a
/// counter `serve.bad_requests.parse` under the rule
/// `("serve.bad_requests.", "class")` renders as
/// `serve_bad_requests_total{class="parse"}`, so a family of sibling
/// counters becomes one labeled Prometheus family. Names are sanitized
/// to the Prometheus charset; counters get the conventional `_total`
/// suffix.
///
/// Histograms render with exact integer bucket bounds: the log2 bucket
/// `[2^(i-1), 2^i)` contains integers up to `2^i - 1`, so its cumulative
/// line is `le="2^i-1"` (and bucket 0, holding only the value 0, is
/// `le="0"`). Buckets above the highest non-empty one are elided; the
/// mandatory `le="+Inf"`, `_sum`, and `_count` lines always appear.
pub fn prometheus_text(
    counters: &[(String, u64)],
    histograms: &[(String, HistogramSnapshot)],
    label_rules: &[(&str, &str)],
) -> String {
    let mut families: Vec<PromFamily> = Vec::new();
    for (name, value) in counters {
        let rule = label_rules
            .iter()
            .find(|(prefix, _)| name.starts_with(prefix) && name.len() > prefix.len());
        match rule {
            Some((prefix, label)) => {
                let base = prefix.trim_end_matches('.');
                let fam_name = format!("{}_total", prom_name(base));
                let fam = family_mut(
                    &mut families,
                    &fam_name,
                    "counter",
                    format!("t2opt counter family {base}"),
                );
                fam.samples.push(format!(
                    "{fam_name}{{{label}=\"{}\"}} {value}",
                    prom_label_value(&name[prefix.len()..])
                ));
            }
            None => {
                let fam_name = format!("{}_total", prom_name(name));
                let fam = family_mut(
                    &mut families,
                    &fam_name,
                    "counter",
                    format!("t2opt counter {name}"),
                );
                fam.samples.push(format!("{fam_name} {value}"));
            }
        }
    }
    for (name, snap) in histograms {
        let fam_name = prom_name(name);
        let fam = family_mut(
            &mut families,
            &fam_name,
            "histogram",
            format!("t2opt log2-bucket histogram {name}"),
        );
        let highest = snap
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        let mut cumulative = 0u64;
        for (i, &c) in snap.buckets.iter().take(highest).enumerate() {
            cumulative += c;
            let le: u128 = if i == 0 { 0 } else { (1u128 << i) - 1 };
            fam.samples
                .push(format!("{fam_name}_bucket{{le=\"{le}\"}} {cumulative}"));
        }
        fam.samples.push(format!(
            "{fam_name}_bucket{{le=\"+Inf\"}} {}",
            cumulative.max(snap.count)
        ));
        fam.samples.push(format!("{fam_name}_sum {}", snap.sum));
        fam.samples
            .push(format!("{fam_name}_count {}", cumulative.max(snap.count)));
    }
    let mut out = String::new();
    for fam in families {
        out.push_str(&format!("# HELP {} {}\n", fam.name, prom_help(&fam.help)));
        out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind));
        for s in fam.samples {
            out.push_str(&s);
            out.push('\n');
        }
    }
    out
}

#[derive(Serialize)]
struct MetaLine {
    record: String,
    interval: u64,
    n_mcs: usize,
    n_banks: usize,
    start_cycle: u64,
    end_cycle: u64,
    events_dropped: u64,
}

#[derive(Serialize)]
struct WindowLine {
    record: String,
    index: usize,
    window: crate::timeline::Window,
}

#[derive(Serialize)]
struct StallLine {
    record: String,
    tid: usize,
    stalls: crate::timeline::ThreadStalls,
}

#[derive(Serialize)]
struct StreamLine {
    record: String,
    stream: crate::timeline::StreamLabel,
}

#[derive(Serialize)]
struct EventLine {
    record: String,
    event: crate::timeline::SimEvent,
}

/// Serializes a [`Timeline`] as JSON-lines: one `meta` record, then one
/// record per stream label, window, thread-stall row, and retained event.
pub fn timeline_jsonl(timeline: &Timeline) -> String {
    let mut lines = Vec::new();
    lines.push(to_json_string(&MetaLine {
        record: "meta".to_string(),
        interval: timeline.interval,
        n_mcs: timeline.n_mcs,
        n_banks: timeline.n_banks,
        start_cycle: timeline.start_cycle,
        end_cycle: timeline.end_cycle,
        events_dropped: timeline.events_dropped,
    }));
    for s in &timeline.streams {
        lines.push(to_json_string(&StreamLine {
            record: "stream".to_string(),
            stream: s.clone(),
        }));
    }
    for (index, w) in timeline.windows.iter().enumerate() {
        lines.push(to_json_string(&WindowLine {
            record: "window".to_string(),
            index,
            window: w.clone(),
        }));
    }
    for (tid, s) in timeline.thread_stalls.iter().enumerate() {
        lines.push(to_json_string(&StallLine {
            record: "stalls".to_string(),
            tid,
            stalls: *s,
        }));
    }
    for e in &timeline.events {
        lines.push(to_json_string(&EventLine {
            record: "event".to_string(),
            event: e.clone(),
        }));
    }
    lines.join("\n") + "\n"
}

/// Utilization shade ramp, lowest to highest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a `cycles × MC` utilization heatmap for the terminal: one row
/// per controller, one column per (group of) window(s), shaded by busy
/// fraction, plus an `eff` row showing each column's effective parallelism
/// as a digit.
pub fn ascii_heatmap(timeline: &Timeline, max_cols: usize) -> String {
    let max_cols = max_cols.max(1);
    let n = timeline.windows.len();
    if n == 0 {
        return "MC heatmap: (empty timeline)\n".to_string();
    }
    let group = n.div_ceil(max_cols);
    let cols = n.div_ceil(group);
    let mut out = format!(
        "MC utilization heatmap: cycles {}..{} ({} windows of {} cycles, {} per column)\n",
        timeline.start_cycle, timeline.end_cycle, n, timeline.interval, group,
    );
    for mc in 0..timeline.n_mcs {
        out.push_str(&format!("  MC{mc} |"));
        for c in 0..cols {
            let lo = c * group;
            let hi = (lo + group).min(n);
            let mean: f64 =
                (lo..hi).map(|w| timeline.utilization(w, mc)).sum::<f64>() / (hi - lo) as f64;
            let idx = (mean * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
        }
        out.push_str("|\n");
    }
    out.push_str("  eff |");
    for c in 0..cols {
        let lo = c * group;
        let hi = (lo + group).min(n);
        let mean: f64 = (lo..hi)
            .map(|w| timeline.windows[w].effective_parallelism())
            .sum::<f64>()
            / (hi - lo) as f64;
        let digit = (mean.round() as u64).min(9);
        out.push(char::from_digit(digit as u32, 10).unwrap_or('9'));
    }
    out.push_str("|\n");
    out.push_str(&format!(
        "  shade: '{}' = idle … '{}' = saturated; eff = Σbusy/max busy per column\n",
        RAMP[0] as char,
        RAMP[RAMP.len() - 1] as char,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::SimProbe;
    use crate::timeline::{StreamLabel, Timeline, TimelineRecorder, TraceConfig};
    use t2opt_core::json::parse_json;

    fn sample_timeline() -> Timeline {
        let cfg = TraceConfig::with_interval(100)
            .streams(vec![StreamLabel::new("A", 0), StreamLabel::new("B", 512)]);
        let mut r = TimelineRecorder::new(4, 8, 2, &cfg);
        r.mc_service(0, 10, 80, 4, false);
        r.mc_service(1, 120, 60, 2, true);
        r.bank_access(3, 15);
        r.nack(130, 1, 1, 3, true);
        r.stall(0, crate::probe::StallKind::Nack, 130, 160);
        r.barrier_release(0, 190);
        r.finish(200)
    }

    #[test]
    fn chrome_trace_parses_and_has_events() {
        let t = sample_timeline();
        let spans = vec![SpanRecord {
            name: "trial".to_string(),
            tid: 1,
            start_us: 5.0,
            dur_us: 10.0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
        }];
        let json = chrome_trace(&t, &spans, 1200.0);
        let v = parse_json(&json).expect("valid JSON");
        let events = v
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert!(events.len() >= 8);
        // Every event has a ph.
        assert!(events
            .iter()
            .all(|e| e.as_object().and_then(|o| o.get("ph")).is_some()));
    }

    #[test]
    fn spans_chrome_trace_parses() {
        let spans = vec![SpanRecord {
            name: "t".to_string(),
            tid: 0,
            start_us: 0.0,
            dur_us: 1.0,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
        }];
        let json = spans_chrome_trace(&spans, &[("cache_hits".to_string(), 7)]);
        let v = parse_json(&json).expect("valid JSON");
        let events = v
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let t = sample_timeline();
        let jsonl = timeline_jsonl(&t);
        let lines: Vec<&str> = jsonl.lines().collect();
        // meta + 2 streams + 2 windows + 2 stall rows + 2 events.
        assert_eq!(lines.len(), 9);
        for line in lines {
            parse_json(line).expect("each line is valid JSON");
        }
        assert!(jsonl.contains("\"record\": \"meta\"") || jsonl.contains("\"record\":\"meta\""));
    }

    #[test]
    fn heatmap_renders_all_mcs() {
        let t = sample_timeline();
        let map = ascii_heatmap(&t, 80);
        assert!(map.contains("MC0"));
        assert!(map.contains("MC3"));
        assert!(map.contains("eff"));
        // Window 0 has MC0 at 80% busy → a dense shade in row MC0.
        let mc0_row = map.lines().find(|l| l.contains("MC0")).unwrap();
        assert!(mc0_row.contains('%') || mc0_row.contains('@') || mc0_row.contains('#'));
    }

    #[test]
    fn heatmap_groups_windows_to_fit() {
        let t = sample_timeline();
        let map = ascii_heatmap(&t, 1);
        let mc0_row = map.lines().find(|l| l.contains("MC0")).unwrap();
        let cells = mc0_row.split('|').nth(1).unwrap();
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn empty_timeline_heatmap_is_graceful() {
        let cfg = TraceConfig::default();
        let t = TimelineRecorder::new(4, 8, 0, &cfg).finish(0);
        assert!(ascii_heatmap(&t, 80).contains("empty"));
    }

    #[test]
    fn traces_chrome_trace_is_perfetto_shaped() {
        let buf = crate::trace::TraceBuffer::new(4, 8);
        let ctx = buf.start("POST /advise");
        ctx.record("parse", 1, 0.5, 1.0);
        {
            let _s = ctx.span("store.miss", 1);
        }
        ctx.finish_root("request", 1);
        buf.start("GET /metrics").finish_root("request", 2);

        let json = traces_chrome_trace(&buf.recent(10));
        let v = parse_json(&json).expect("valid JSON");
        let events = v
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(|e| e.as_array())
            .expect("traceEvents array")
            .to_vec();
        // 2 process-name metas + 3 spans + 1 span.
        assert_eq!(events.len(), 6);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.as_object().unwrap()["ph"].as_str() == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        // Each trace gets its own pid row.
        let pids: std::collections::BTreeSet<i64> = metas
            .iter()
            .map(|e| e.as_object().unwrap()["pid"].as_f64().unwrap() as i64)
            .collect();
        assert_eq!(pids.len(), 2);
        // X events carry the span-id args for tree reconstruction.
        let x = events
            .iter()
            .map(|e| e.as_object().unwrap())
            .find(|o| o["ph"].as_str() == Some("X"))
            .unwrap();
        let args = x["args"].as_object().unwrap();
        for key in ["trace", "span", "parent"] {
            assert_eq!(args[key].as_str().map(str::len), Some(16), "{key} is hex64");
        }
    }

    #[test]
    fn prometheus_counters_group_into_labeled_families() {
        let counters = vec![
            ("serve.bad_requests.chip".to_string(), 2),
            ("serve.bad_requests.parse".to_string(), 5),
            ("serve.requests".to_string(), 40),
        ];
        let text = prometheus_text(&counters, &[], &[("serve.bad_requests.", "class")]);
        let lines: Vec<&str> = text.lines().collect();
        // One header pair per family, samples grouped under it.
        assert_eq!(
            lines
                .iter()
                .filter(|l| *l == &"# TYPE serve_bad_requests_total counter")
                .count(),
            1
        );
        assert!(lines.contains(&"serve_bad_requests_total{class=\"chip\"} 2"));
        assert!(lines.contains(&"serve_bad_requests_total{class=\"parse\"} 5"));
        assert!(lines.contains(&"serve_requests_total 40"));
        assert!(lines.contains(&"# TYPE serve_requests_total counter"));
    }

    #[test]
    fn prometheus_histogram_lines_are_cumulative_with_exact_bounds() {
        let h = crate::metrics::Histogram::new();
        h.record(0);
        h.record(1);
        h.record(100); // bucket 7
        h.record(100);
        let text = prometheus_text(
            &[],
            &[("serve.latency.cache_tier_us".to_string(), h.snapshot())],
            &[],
        );
        let expected = "\
# HELP serve_latency_cache_tier_us t2opt log2-bucket histogram serve.latency.cache_tier_us
# TYPE serve_latency_cache_tier_us histogram
serve_latency_cache_tier_us_bucket{le=\"0\"} 1
serve_latency_cache_tier_us_bucket{le=\"1\"} 2
serve_latency_cache_tier_us_bucket{le=\"3\"} 2
serve_latency_cache_tier_us_bucket{le=\"7\"} 2
serve_latency_cache_tier_us_bucket{le=\"15\"} 2
serve_latency_cache_tier_us_bucket{le=\"31\"} 2
serve_latency_cache_tier_us_bucket{le=\"63\"} 2
serve_latency_cache_tier_us_bucket{le=\"127\"} 4
serve_latency_cache_tier_us_bucket{le=\"+Inf\"} 4
serve_latency_cache_tier_us_sum 201
serve_latency_cache_tier_us_count 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_empty_histogram_still_has_inf_sum_count() {
        let h = crate::metrics::Histogram::new();
        let text = prometheus_text(&[], &[("x".to_string(), h.snapshot())], &[]);
        assert!(text.contains("x_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("x_sum 0\n"));
        assert!(text.contains("x_count 0\n"));
    }

    #[test]
    fn prometheus_label_escaping_golden() {
        // Exact-format golden: backslash, double quote, and newline in a
        // label value must escape per the text exposition format.
        let counters = vec![(
            "lbl.a\\b\"c\nd".to_string(),
            1, //
        )];
        let text = prometheus_text(&counters, &[], &[("lbl.", "v")]);
        let expected = "\
# HELP lbl_total t2opt counter family lbl
# TYPE lbl_total counter
lbl_total{v=\"a\\\\b\\\"c\\nd\"} 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        let text = prometheus_text(&[("1weird-name.x".to_string(), 3)], &[], &[]);
        assert!(text.contains("_1weird_name_x_total 3"));
    }
}
