//! Property tests for log2-bucket quantile estimation: whatever the
//! sample set, the p50/p90/p99 estimates must land inside the bucket that
//! actually contains the true quantile, and the documented bounds must
//! bracket the true value. Edge cases — empty, single sample, and a
//! saturated top bucket — are pinned exactly.

use proptest::prelude::*;
use t2opt_telemetry::metrics::{Histogram, HistogramSnapshot};

/// The true quantile of `samples` under the same convention the histogram
/// uses: rank `ceil(q·n)` (1-based) of the sorted samples.
fn true_quantile(samples: &[u64], q: f64) -> u64 {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
    sorted[rank - 1]
}

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

/// Full-range `u64` values with log-uniform spread (a raw draw shifted
/// right by 0..64), so every histogram bucket — including the saturated
/// last one — is exercised. The vendored proptest only implements
/// exclusive ranges, hence the map instead of `0..=u64::MAX`.
fn wide_u64() -> impl Strategy<Value = u64> {
    (0u64..64, 1u64..u64::MAX).prop_map(|(shift, raw)| raw >> shift)
}

proptest! {
    /// For every quantile we export, the inclusive `[lo, hi]` bounds
    /// bracket the true quantile, the point estimate (`quantile()`) is
    /// `hi + 1` rounded to a power of two (i.e. never below the true
    /// value's bucket), and the estimated bucket is exactly the bucket
    /// of the true value.
    #[test]
    fn quantile_estimates_land_in_the_true_values_bucket(
        samples in proptest::collection::vec(wide_u64(), 1..300),
        q_millis in 0u32..1001,
    ) {
        let q = q_millis as f64 / 1000.0;
        let snap = snapshot_of(&samples);
        let truth = true_quantile(&samples, q);
        let (lo, hi) = snap.quantile_bounds(q);
        prop_assert!(lo <= truth && truth <= hi,
            "true q{q} = {truth} outside bounds [{lo}, {hi}]");
        prop_assert_eq!(snap.quantile_bucket(q), Some(Histogram::bucket_of(truth)));
        // The interval is one log2 bucket wide: any point inside it is
        // within 2x of the true value (the documented error bound). The
        // exception is the saturated last bucket, which also absorbs
        // values >= 2^63 and is therefore wider.
        if lo > 0 && hi != u64::MAX {
            prop_assert!(hi < lo.saturating_mul(2));
        }
    }

    /// p50/p90/p99 are monotone in q and each sits at its bucket's upper
    /// power-of-two bound.
    #[test]
    fn named_quantiles_are_monotone(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let snap = snapshot_of(&samples);
        let (p50, p90, p99) = (snap.p50(), snap.p90(), snap.p99());
        prop_assert!(p50 <= p90 && p90 <= p99);
        for p in [p50, p90, p99] {
            prop_assert!(p == 0 || p.is_power_of_two());
        }
    }

    /// A single sample: every quantile collapses to that sample's bucket.
    #[test]
    fn single_sample_pins_every_quantile(v in wide_u64(), q_millis in 0u32..1001) {
        let q = q_millis as f64 / 1000.0;
        let snap = snapshot_of(&[v]);
        let (lo, hi) = snap.quantile_bounds(q);
        prop_assert!(lo <= v && v <= hi);
        prop_assert_eq!(snap.quantile_bucket(q), Some(Histogram::bucket_of(v)));
    }
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let snap = snapshot_of(&[]);
    assert_eq!(snap.quantile_bucket(0.5), None);
    assert_eq!(snap.quantile_bounds(0.99), (0, 0));
    assert_eq!(snap.p50(), 0);
    assert_eq!(snap.p99(), 0);
}

#[test]
fn saturated_top_bucket_reports_max_bounds() {
    // Values ≥ 2^63 all saturate into the last bucket; its bounds must
    // still bracket them (upper bound pinned to u64::MAX).
    let snap = snapshot_of(&[u64::MAX, u64::MAX - 1, 1u64 << 63]);
    let (lo, hi) = snap.quantile_bounds(0.99);
    assert_eq!((lo, hi), (1u64 << 62, u64::MAX));
    assert_eq!(snap.quantile_bucket(0.01), Some(63));
}
