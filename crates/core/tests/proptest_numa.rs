//! Property tests for the multi-socket topology model: socket helpers must
//! stay mutually consistent with the address map on *arbitrary* geometries
//! (not just the shipped presets), local/remote classification must
//! conserve totals, and the first-touch placement function must be
//! deterministic under any permutation of its input.

use proptest::prelude::*;
use t2opt_core::chip::{ChipSpec, SocketTopology};
use t2opt_core::mapping::{first_touch_homes, AddressMap, MapPolicy, PagePlacement, PageTouch};

/// An arbitrary multi-socket chip: the controller count is
/// `n_sockets × mcs_per_socket` by construction, cores divide evenly, and
/// the NUMA parameters stay in plausible ranges.
fn arb_numa_chip() -> impl Strategy<Value = ChipSpec> {
    (
        1usize..4, // log2 sockets → 2, 4, or 8 sockets
        0u32..3,   // log2 controllers per socket
        0u32..4,   // bank bits
        1usize..5, // cores per socket
        1u64..257, // remote read adder (write adder and link derive from it)
        9u32..15,  // log2 page bytes (512 B .. 16 KiB)
    )
        .prop_map(
            |(sock_bits, mc_sock_bits, bank_bits, cps, rr, page_shift)| {
                let n_sockets = 1usize << sock_bits;
                let mc_bits = sock_bits as u32 + mc_sock_bits;
                let (rw, link) = (rr / 2 + 1, rr % 31 + 1);
                ChipSpec {
                    name: format!("prop-{n_sockets}s-{}mc", 1u32 << mc_bits),
                    map: MapPolicy::Sliced(AddressMap {
                        line_bits: 6,
                        mc_lo_bit: 7,
                        mc_bits,
                        bank_lo_bit: 6,
                        bank_bits,
                    }),
                    clock_hz: 1.2e9,
                    n_cores: cps * n_sockets,
                    threads_per_core: 8,
                    read_service: 12,
                    write_service: 24,
                    sockets: SocketTopology {
                        n_sockets,
                        remote_read_extra: rr,
                        remote_write_extra: rw,
                        link_cycles_per_line: link,
                        page_bytes: 1 << page_shift,
                    },
                }
            },
        )
}

proptest! {
    /// The socket helpers agree with each other and with the address map:
    /// controllers partition into `n_sockets` contiguous groups of
    /// `mcs_per_socket`, cores into groups of `cores_per_socket`, and the
    /// local period times the socket count is the full period.
    #[test]
    fn socket_fields_are_consistent_with_the_map(spec in arb_numa_chip()) {
        let s = spec.n_sockets();
        prop_assert_eq!(s * spec.mcs_per_socket(), spec.num_controllers());
        prop_assert_eq!(s * spec.cores_per_socket(), spec.n_cores);
        prop_assert_eq!(s * spec.local_period(), spec.interleave_period());
        for mc in 0..spec.num_controllers() {
            prop_assert_eq!(spec.socket_of_controller(mc), mc / spec.mcs_per_socket());
            prop_assert!(spec.socket_of_controller(mc) < s);
        }
        for core in 0..spec.n_cores {
            prop_assert_eq!(spec.socket_of_core(core), core / spec.cores_per_socket());
            prop_assert!(spec.socket_of_core(core) < s);
        }
    }

    /// Local/remote classification conserves totals: for any set of
    /// (page, toucher) pairs and any placement, every page gets exactly
    /// one home in range, and the local + remote counts add up to the
    /// number of accesses. First-touch is all-local for the toucher,
    /// all-remote placement is all-remote, and interleave's remote count
    /// matches its analytic remote fraction page-for-page.
    #[test]
    fn local_remote_classification_conserves_totals(
        spec in arb_numa_chip(),
        pages in proptest::collection::vec(0u64..64, 1..80),
    ) {
        use std::collections::BTreeMap;
        use t2opt_core::mapping::PageHomes;
        let s = spec.n_sockets();
        for placement in PagePlacement::ALL {
            let mut homes = PageHomes::new(placement, s, spec.sockets.page_bytes);
            let mut first_toucher: BTreeMap<u64, u32> = BTreeMap::new();
            let mut resolved: BTreeMap<u64, u32> = BTreeMap::new();
            let mut local = 0usize;
            let mut remote = 0usize;
            for (i, &page) in pages.iter().enumerate() {
                let toucher = (i % s) as u32;
                first_toucher.entry(page).or_insert(toucher);
                let addr = page * spec.sockets.page_bytes + (i as u64 % 7) * 64;
                let home = homes.home(addr, toucher);
                prop_assert!((home as usize) < s, "home socket out of range");
                if let Some(&h) = resolved.get(&page) {
                    prop_assert_eq!(h, home, "a page's home must never change");
                } else {
                    resolved.insert(page, home);
                }
                if home == toucher { local += 1 } else { remote += 1 }
            }
            prop_assert_eq!(local + remote, pages.len(), "classification must cover every access");
            // Per-page semantics relative to each page's *first* toucher
            // (placement memoizes the first touch, so later touchers of a
            // shared page may land either way).
            for (&page, &home) in &resolved {
                let first = first_toucher[&page];
                match placement {
                    PagePlacement::FirstTouch => prop_assert_eq!(
                        home, first,
                        "first touch must home the page with its first toucher"
                    ),
                    PagePlacement::Remote => prop_assert!(
                        home != first,
                        "all-remote placement must never home with the first toucher"
                    ),
                    PagePlacement::Interleave => prop_assert_eq!(
                        home as u64, page % s as u64,
                        "interleave homes pages round-robin regardless of touchers"
                    ),
                }
            }
            // The analytic remote fraction brackets the observed one at
            // the extremes (0 for first-touch single-toucher pages, 1 for
            // all-remote).
            let f = placement.remote_fraction(s);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }

    /// A page touched only ever by one socket is local to that socket
    /// under first touch, however many times and in whatever order it is
    /// touched.
    #[test]
    fn first_touch_is_local_for_single_socket_pages(
        spec in arb_numa_chip(),
        hits in proptest::collection::vec((0u64..16, 0u64..1000), 1..50),
    ) {
        use t2opt_core::mapping::PageHomes;
        let s = spec.n_sockets();
        let mut homes = PageHomes::new(PagePlacement::FirstTouch, s, spec.sockets.page_bytes);
        for &(page, off) in &hits {
            // Socket = page % s for every touch of a page: one socket per page.
            let toucher = (page % s as u64) as u32;
            let addr = page * spec.sockets.page_bytes + off % spec.sockets.page_bytes;
            prop_assert_eq!(homes.home(addr, toucher), toucher);
        }
    }

    /// `first_touch_homes` is a function of the touch *set*: permuting the
    /// recorded touches never changes a single page's home socket.
    #[test]
    fn first_touch_homes_deterministic_under_permutation(
        spec in arb_numa_chip(),
        raw in proptest::collection::vec((0u64..32, 0u32..64, 0u64..100), 1..60),
        seed in 0u64..1000,
    ) {
        let s = spec.n_sockets();
        let touches: Vec<PageTouch> = raw
            .iter()
            .map(|&(page, thread, time)| PageTouch { page, thread, time })
            .collect();
        let socket_of = |thread: u32| (thread as usize) % s;

        let baseline = first_touch_homes(&touches, s, socket_of);

        // A deterministic pseudo-shuffle driven by `seed`.
        let mut shuffled = touches.clone();
        let n = shuffled.len();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let permuted = first_touch_homes(&shuffled, s, socket_of);
        prop_assert_eq!(baseline, permuted, "page homes must not depend on touch order");
    }
}
