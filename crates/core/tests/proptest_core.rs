//! Property-based tests for the core layout machinery.

use proptest::prelude::*;
use t2opt_core::advisor::{LayoutAdvisor, StreamDesc, StreamKind};
use t2opt_core::layout::{LayoutSpec, SegmentPlan};
use t2opt_core::mapping::AddressMap;
use t2opt_core::seg_array::SegArray;

/// Arbitrary layout specs. Shifts/offsets are multiples of 8 so the
/// layouts stay element-aligned for `u64`/`f64` host arrays (byte-granular
/// values are legal for trace-only layouts; `SegArray` rejects them).
fn arb_spec() -> impl Strategy<Value = LayoutSpec> {
    (
        prop_oneof![Just(64usize), Just(128), Just(512), Just(4096), Just(8192)],
        prop_oneof![Just(0usize), Just(1), Just(64), Just(512), Just(4096)],
        0usize..75,
        0usize..75,
    )
        .prop_map(|(base_align, seg_align, shift, offset)| {
            LayoutSpec::new()
                .base_align(base_align)
                .seg_align(seg_align)
                .shift(shift * 8)
                .block_offset(offset * 8)
        })
}

proptest! {
    /// Any (spec, len, segments) combination yields a valid layout:
    /// disjoint, ordered, exactly covering `len` elements.
    #[test]
    fn layout_plan_always_valid(
        spec in arb_spec(),
        len in 0usize..10_000,
        segs in 1usize..40,
    ) {
        let layout = spec.plan(len, 8, &SegmentPlan::Count(segs));
        layout.validate();
        prop_assert_eq!(layout.seg_sizes.iter().sum::<usize>(), len);
        // The paper's size rule: ⌊N/t⌋+1 for the first N mod t, ⌊N/t⌋ after.
        for (s, &size) in layout.seg_sizes.iter().enumerate() {
            let expected = len / segs + usize::from(s < len % segs);
            prop_assert_eq!(size, expected);
        }
    }

    /// Per-segment alignment (pre-shift) holds for every segment after the
    /// first, and the cumulative shift is exactly s·shift.
    #[test]
    fn shift_and_alignment_arithmetic(
        len in 1usize..5_000,
        segs in 1usize..30,
        shift in 0usize..300,
    ) {
        let spec = LayoutSpec::new().seg_align(512).shift(shift);
        let layout = spec.plan(len, 8, &SegmentPlan::Count(segs));
        for (s, &start) in layout.seg_byte_starts.iter().enumerate() {
            let unshifted = start - s * shift;
            if s > 0 {
                prop_assert_eq!(unshifted % 512, 0, "segment {} misaligned", s);
            }
        }
    }

    /// A built SegArray stores and retrieves every element faithfully for
    /// arbitrary layouts (no overlap, no loss).
    #[test]
    fn seg_array_round_trip(
        spec in arb_spec(),
        len in 0usize..4_096,
        segs in 1usize..20,
    ) {
        let mut arr = SegArray::<u64>::builder(len).segments(segs).spec(spec).build();
        arr.fill_with(|i| (i as u64).wrapping_mul(0x9E37_79B9) ^ 0xABCD);
        for i in (0..len).step_by(97.max(len / 50 + 1)) {
            prop_assert_eq!(arr.get(i), (i as u64).wrapping_mul(0x9E37_79B9) ^ 0xABCD);
        }
        let v = arr.to_vec();
        prop_assert_eq!(v.len(), len);
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(x, (i as u64).wrapping_mul(0x9E37_79B9) ^ 0xABCD);
        }
    }

    /// segments_mut hands out genuinely disjoint slices: writing a marker
    /// through one never shows through another.
    #[test]
    fn segments_mut_disjoint(
        len in 1usize..2_048,
        segs in 1usize..16,
        shift in 0usize..25,
    ) {
        let spec = LayoutSpec::new().seg_align(512).shift(shift * 8);
        let mut arr = SegArray::<u64>::builder(len).segments(segs).spec(spec).build();
        {
            let slices = arr.segments_mut();
            for (k, sl) in slices.into_iter().enumerate() {
                for x in sl.iter_mut() {
                    *x = k as u64 + 1;
                }
            }
        }
        for k in 0..arr.num_segments() {
            prop_assert!(arr.segment(k).iter().all(|&x| x == k as u64 + 1));
        }
    }

    /// The T2 mapping is a balanced 4-way split of any 512-aligned window:
    /// each controller serves exactly 2 of every 8 consecutive lines.
    #[test]
    fn mapping_balanced_over_any_window(start_line in 0u64..1_000_000) {
        let map = AddressMap::ultrasparc_t2();
        let base = start_line * 512; // super-line aligned
        let mut counts = [0u32; 4];
        for l in 0..8 {
            counts[map.controller(base + l * 64) as usize] += 1;
        }
        prop_assert_eq!(counts, [2, 2, 2, 2]);
    }

    /// Advisor efficiency is always in (0, 1], and adding 512 B to every
    /// base never changes the prediction (periodicity).
    #[test]
    fn advisor_bounds_and_periodicity(
        bases in proptest::collection::vec(0u64..4096, 1..6),
        write_mask in 0u32..64,
    ) {
        let advisor = LayoutAdvisor::t2();
        let streams: Vec<StreamDesc> = bases
            .iter()
            .enumerate()
            .map(|(i, &b)| StreamDesc {
                base: b,
                kind: if write_mask & (1 << i) != 0 {
                    StreamKind::Write
                } else {
                    StreamKind::Read
                },
            })
            .collect();
        let p = advisor.predict(&streams);
        prop_assert!(p.efficiency > 0.0 && p.efficiency <= 1.0 + 1e-12);
        let shifted: Vec<StreamDesc> = streams
            .iter()
            .map(|s| StreamDesc { base: s.base + 512, kind: s.kind })
            .collect();
        let q = advisor.predict(&shifted);
        prop_assert!((p.efficiency - q.efficiency).abs() < 1e-12);
    }

    /// The closed-form offset suggestion is never beaten by exhaustive
    /// search at 128 B granularity (read streams).
    #[test]
    fn suggestion_is_optimal_for_reads(n in 1usize..5) {
        let advisor = LayoutAdvisor::t2();
        let offs = advisor.suggest_offsets(n);
        let streams: Vec<StreamDesc> =
            offs.iter().map(|&o| StreamDesc::read(o as u64)).collect();
        let suggested = advisor.predict(&streams).efficiency;
        let (_, searched) = advisor.search_offsets(&vec![StreamKind::Read; n], 128);
        prop_assert!(suggested >= searched - 1e-12);
    }
}

/// Arbitrary bit-sliced geometries with disjoint fields: the bank field
/// starts at or above the line bits, the controller field at or above the
/// bank field (the T2 is the gap-free instance of this family). Covers
/// 1–8 controllers, 1–4 banks per controller, 16–128 B lines, and
/// super-lines from 128 B to 64 KiB.
fn arb_geometry() -> impl Strategy<Value = AddressMap> {
    (4u32..8, 0u32..3, 0u32..3, 1u32..4, 0u32..3).prop_map(
        |(line_bits, bank_gap, bank_bits, mc_bits, mc_gap)| {
            let bank_lo_bit = line_bits + bank_gap;
            let mc_lo_bit = bank_lo_bit + bank_bits + mc_gap;
            AddressMap {
                line_bits,
                mc_lo_bit,
                mc_bits,
                bank_lo_bit,
                bank_bits,
            }
        },
    )
}

proptest! {
    /// Over one super-line, consecutive cache lines visit every
    /// (controller, bank) combination equally often — the load-balance
    /// property the whole layout method depends on.
    #[test]
    fn geometry_uniform_over_one_super_line(
        geo in arb_geometry(),
        window in 0u64..1_000_000,
    ) {
        let base = window * geo.super_line();
        let lines = (geo.super_line() / geo.line_size()) as usize;
        let mut counts = vec![0u32; geo.num_banks() as usize];
        for l in 0..lines {
            counts[geo.bank(base + l as u64 * geo.line_size()) as usize] += 1;
        }
        let expected = lines as u32 / geo.num_banks();
        prop_assert!(
            counts.iter().all(|&c| c == expected),
            "non-uniform bank counts {counts:?} for {geo:?}"
        );
    }

    /// The mapping is periodic with period `super_line()` at every address
    /// (not only at line boundaries).
    #[test]
    fn geometry_periodic_with_super_line(
        geo in arb_geometry(),
        addr in 0u64..(1 << 40),
        periods in 1u64..8,
    ) {
        let shifted = addr + periods * geo.super_line();
        prop_assert_eq!(geo.controller(addr), geo.controller(shifted));
        prop_assert_eq!(geo.local_bank(addr), geo.local_bank(shifted));
        prop_assert_eq!(geo.bank(addr), geo.bank(shifted));
    }

    /// controller / local_bank / bank stay mutually consistent and within
    /// range for random geometries and addresses.
    #[test]
    fn geometry_fields_mutually_consistent(
        geo in arb_geometry(),
        addr in 0u64..(1 << 40),
    ) {
        let mc = geo.controller(addr);
        let local = geo.local_bank(addr);
        prop_assert!(mc < geo.num_controllers());
        prop_assert!(local < geo.banks_per_controller());
        prop_assert_eq!(geo.bank(addr), mc * geo.banks_per_controller() + local);
        prop_assert_eq!(
            geo.num_banks(),
            geo.num_controllers() * geo.banks_per_controller()
        );
        // Line arithmetic agrees with the bit fields.
        prop_assert_eq!(geo.line_base(addr) % geo.line_size(), 0);
        prop_assert_eq!(geo.line_index(addr), addr / geo.line_size());
        prop_assert_eq!(geo.bank(geo.line_base(addr)), geo.bank(addr));
    }
}
