//! [`SegArray`] — a segmented array placed by a [`LayoutSpec`].
//!
//! This is the Rust counterpart of the paper's C++ `seg_array` (§2.2): one
//! aligned allocation carved into segments whose base addresses are
//! controlled to the byte, so that concurrent access streams can be spread
//! across all memory controllers. Segments can be borrowed as independent
//! mutable slices ([`SegArray::segments_mut`]) for data-parallel kernels —
//! each worker thread gets the segment(s) it owns, with no aliasing and no
//! locks.

use crate::alloc::AlignedBuf;
use crate::layout::{LayoutSpec, SegLayout, SegmentPlan};

/// Element types storable in a [`SegArray`]: plain-old-data values that can
/// live in zero-initialized memory.
///
/// Implemented for the primitive numeric types and `bool`-free POD wrappers;
/// implement it for your own `#[repr(C)]` copy types when all-zero bytes are
/// a valid value.
///
/// # Safety
///
/// Implementors must guarantee that the all-zero bit pattern is a valid
/// value of the type: `SegArray` hands out references into freshly
/// zero-initialized allocations without running any constructor.
pub unsafe trait Pod: Copy + Default + 'static {}

// SAFETY: all-zero bytes are valid for every primitive numeric type.
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for isize {}

/// A segmented array of `T` with byte-exact layout control.
///
/// ```
/// use t2opt_core::prelude::*;
///
/// let mut a = SegArray::<f64>::builder(1000)
///     .segments(8)
///     .spec(LayoutSpec::t2_rotating())
///     .build();
/// a.fill_with(|i| i as f64);
/// assert_eq!(a.get(999), 999.0);
/// assert_eq!(a.num_segments(), 8);
/// // Successive segments rotate through the four T2 memory controllers:
/// let map = AddressMap::ultrasparc_t2();
/// assert_ne!(map.controller(a.segment_base_addr(0) as u64),
///            map.controller(a.segment_base_addr(1) as u64));
/// ```
pub struct SegArray<T: Pod> {
    buf: AlignedBuf,
    layout: SegLayout,
    /// Prefix sums of segment sizes: `prefix[s]` = global index of the first
    /// element of segment `s`; `prefix[num_segments]` = len.
    prefix: Vec<usize>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod> SegArray<T> {
    /// Starts building a segmented array of `len` elements.
    pub fn builder(len: usize) -> SegArrayBuilder<T> {
        SegArrayBuilder {
            len,
            plan: SegmentPlan::Single,
            spec: LayoutSpec::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Builds directly from a precomputed [`SegLayout`].
    ///
    /// # Panics
    /// Panics if the layout's element size does not match `T`, or if any
    /// segment start is not aligned for `T` (shift/offset values must be
    /// multiples of `align_of::<T>()` for host arrays; arbitrary byte
    /// offsets are only meaningful for simulator traces).
    pub fn from_layout(layout: SegLayout) -> Self {
        assert_eq!(
            layout.elem_size,
            std::mem::size_of::<T>(),
            "layout element size does not match T"
        );
        layout.validate();
        for (s, &start) in layout.seg_byte_starts.iter().enumerate() {
            assert_eq!(
                start % std::mem::align_of::<T>(),
                0,
                "segment {s} starts at byte {start}, misaligned for the element type; \
                 use shift/offset values that are multiples of {}",
                std::mem::align_of::<T>()
            );
        }
        let buf = AlignedBuf::new(layout.total_bytes, layout.spec.base_align.max(64));
        let mut prefix = Vec::with_capacity(layout.seg_sizes.len() + 1);
        let mut acc = 0;
        prefix.push(0);
        for &n in &layout.seg_sizes {
            acc += n;
            prefix.push(acc);
        }
        SegArray {
            buf,
            layout,
            prefix,
            _marker: std::marker::PhantomData,
        }
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.layout.len
    }

    /// Whether the array holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.layout.len == 0
    }

    /// Number of segments.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.layout.num_segments()
    }

    /// The byte-level layout of this array.
    #[inline]
    pub fn layout(&self) -> &SegLayout {
        &self.layout
    }

    /// Host virtual address of the first element of segment `s` — feed this
    /// to [`AddressMap`](crate::mapping::AddressMap) to see which controller
    /// the segment starts on.
    #[inline]
    pub fn segment_base_addr(&self, s: usize) -> usize {
        self.buf.base_addr() + self.layout.seg_byte_starts[s]
    }

    /// Host virtual address of the allocation base (aligned to
    /// `spec.base_align`).
    #[inline]
    pub fn base_addr(&self) -> usize {
        self.buf.base_addr()
    }

    /// Immutable view of segment `s`.
    #[inline]
    pub fn segment(&self, s: usize) -> &[T] {
        self.buf
            .typed(self.layout.seg_byte_starts[s], self.layout.seg_sizes[s])
    }

    /// Mutable view of segment `s`.
    #[inline]
    pub fn segment_mut(&mut self, s: usize) -> &mut [T] {
        self.buf
            .typed_mut(self.layout.seg_byte_starts[s], self.layout.seg_sizes[s])
    }

    /// Iterator over all segments as immutable slices.
    pub fn segments(&self) -> impl ExactSizeIterator<Item = &[T]> + '_ {
        (0..self.num_segments()).map(move |s| self.segment(s))
    }

    /// All segments as *independent* mutable slices, for handing to parallel
    /// workers. Sound because segment byte ranges are disjoint by
    /// construction ([`SegLayout::validate`]).
    pub fn segments_mut(&mut self) -> Vec<&mut [T]> {
        let base = self.buf.as_mut_ptr();
        self.layout
            .seg_byte_starts
            .iter()
            .zip(self.layout.seg_sizes.iter())
            .map(|(&start, &n)| {
                // SAFETY: ranges [start, start + n*size_of::<T>()) are
                // pairwise disjoint and in bounds (validated at build time);
                // alignment follows from elem_size-multiple starts over an
                // aligned base; &mut self guarantees no other borrows.
                unsafe { std::slice::from_raw_parts_mut(base.add(start) as *mut T, n) }
            })
            .collect()
    }

    /// Element at global index `idx` (segments scanned in order).
    #[inline]
    pub fn get(&self, idx: usize) -> T {
        let (s, i) = self.locate(idx);
        self.segment(s)[i]
    }

    /// Sets the element at global index `idx`.
    #[inline]
    pub fn set(&mut self, idx: usize, value: T) {
        let (s, i) = self.locate(idx);
        self.segment_mut(s)[i] = value;
    }

    /// (segment, local index) of a global index, via binary search on the
    /// segment prefix sums — O(log segments).
    #[inline]
    pub fn locate(&self, idx: usize) -> (usize, usize) {
        assert!(
            idx < self.len(),
            "index {idx} out of bounds (len {})",
            self.len()
        );
        let s = match self.prefix.binary_search(&idx) {
            Ok(mut s) => {
                // Land on the first non-empty segment starting at idx.
                while self.layout.seg_sizes[s] == 0 {
                    s += 1;
                }
                s
            }
            Err(ins) => ins - 1,
        };
        (s, idx - self.prefix[s])
    }

    /// Global index of the first element of segment `s`.
    #[inline]
    pub fn segment_start_index(&self, s: usize) -> usize {
        self.prefix[s]
    }

    /// Fills the array from a function of the global index.
    pub fn fill_with(&mut self, mut f: impl FnMut(usize) -> T) {
        let mut idx = 0;
        for s in 0..self.num_segments() {
            for x in self.segment_mut(s).iter_mut() {
                *x = f(idx);
                idx += 1;
            }
        }
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: T) {
        for s in 0..self.num_segments() {
            self.segment_mut(s).fill(value);
        }
    }

    /// Copies all elements out into a plain `Vec`, in global order.
    pub fn to_vec(&self) -> Vec<T> {
        let mut v = Vec::with_capacity(self.len());
        for seg in self.segments() {
            v.extend_from_slice(seg);
        }
        v
    }

    /// Copies from a slice of exactly `len` elements, in global order.
    pub fn copy_from_slice(&mut self, src: &[T]) {
        assert_eq!(src.len(), self.len(), "length mismatch");
        let mut off = 0;
        for s in 0..self.num_segments() {
            let n = self.layout.seg_sizes[s];
            self.segment_mut(s).copy_from_slice(&src[off..off + n]);
            off += n;
        }
    }

    /// Element-wise iterator across segment boundaries (a "segmented
    /// iterator" flattened; prefer segment-wise loops in hot kernels, see
    /// [`crate::iter`]).
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.segments().flatten()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for SegArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegArray")
            .field("len", &self.len())
            .field("segments", &self.num_segments())
            .field("base", &format_args!("{:#x}", self.base_addr()))
            .field("spec", &self.layout.spec)
            .finish()
    }
}

/// Builder for [`SegArray`]; see [`SegArray::builder`].
pub struct SegArrayBuilder<T: Pod> {
    len: usize,
    plan: SegmentPlan,
    spec: LayoutSpec,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod> SegArrayBuilder<T> {
    /// Splits into `t` segments with the paper's ⌊N/t⌋+1 / ⌊N/t⌋ rule.
    pub fn segments(mut self, t: usize) -> Self {
        self.plan = SegmentPlan::Count(t);
        self
    }

    /// Uses explicit per-segment sizes (must sum to the total length).
    pub fn segment_sizes(mut self, sizes: Vec<usize>) -> Self {
        self.plan = SegmentPlan::Sizes(sizes);
        self
    }

    /// Sets the full layout spec.
    pub fn spec(mut self, spec: LayoutSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Sets the base alignment (shorthand for editing the spec).
    pub fn base_align(mut self, align: usize) -> Self {
        self.spec = self.spec.base_align(align);
        self
    }

    /// Sets the per-segment alignment (shorthand).
    pub fn seg_align(mut self, align: usize) -> Self {
        self.spec = self.spec.seg_align(align);
        self
    }

    /// Sets the per-segment shift (shorthand).
    pub fn shift(mut self, shift: usize) -> Self {
        self.spec = self.spec.shift(shift);
        self
    }

    /// Sets the whole-block offset (shorthand).
    pub fn block_offset(mut self, offset: usize) -> Self {
        self.spec = self.spec.block_offset(offset);
        self
    }

    /// Allocates and zero-initializes the array.
    pub fn build(self) -> SegArray<T> {
        let layout = self
            .spec
            .plan(self.len, std::mem::size_of::<T>(), &self.plan);
        SegArray::from_layout(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_fill_read_back() {
        let mut a = SegArray::<f64>::builder(1000).segments(7).build();
        a.fill_with(|i| (i * 2) as f64);
        for i in (0..1000).step_by(97) {
            assert_eq!(a.get(i), (i * 2) as f64);
        }
        assert_eq!(
            a.to_vec(),
            (0..1000).map(|i| (i * 2) as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn segments_cover_exactly() {
        let a = SegArray::<f64>::builder(100).segments(8).build();
        let total: usize = a.segments().map(|s| s.len()).sum();
        assert_eq!(total, 100);
        assert_eq!(a.segment(0).len(), 13);
        assert_eq!(a.segment(7).len(), 12);
    }

    #[test]
    fn segments_mut_are_disjoint_and_writable() {
        let mut a = SegArray::<u64>::builder(64).segments(4).build();
        {
            let segs = a.segments_mut();
            assert_eq!(segs.len(), 4);
            for (s, seg) in segs.into_iter().enumerate() {
                for x in seg.iter_mut() {
                    *x = s as u64;
                }
            }
        }
        for s in 0..4 {
            assert!(a.segment(s).iter().all(|&x| x == s as u64));
        }
    }

    #[test]
    fn rotating_layout_hits_all_controllers() {
        use crate::mapping::AddressMap;
        let a = SegArray::<f64>::builder(4096)
            .segments(8)
            .spec(LayoutSpec::t2_rotating())
            .build();
        let map = AddressMap::ultrasparc_t2();
        let mcs: Vec<u32> = (0..8)
            .map(|s| map.controller(a.segment_base_addr(s) as u64))
            .collect();
        // Base is 8 kB aligned → MC 0; rotation 0,1,2,3,0,1,2,3.
        assert_eq!(mcs, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn block_offset_moves_base() {
        let a = SegArray::<f64>::builder(64)
            .base_align(8192)
            .block_offset(256)
            .build();
        assert_eq!(a.base_addr() % 8192, 0);
        assert_eq!(a.segment_base_addr(0) - a.base_addr(), 256);
    }

    #[test]
    fn locate_round_trip() {
        let a = SegArray::<f64>::builder(997).segments(13).build();
        for idx in 0..997 {
            let (s, i) = a.locate(idx);
            assert_eq!(a.segment_start_index(s) + i, idx);
        }
    }

    #[test]
    fn copy_from_slice_round_trip() {
        let src: Vec<f64> = (0..500).map(|i| i as f64 * 0.5).collect();
        let mut a = SegArray::<f64>::builder(500)
            .segments(9)
            .seg_align(512)
            .build();
        a.copy_from_slice(&src);
        assert_eq!(a.to_vec(), src);
    }

    #[test]
    fn explicit_row_sizes() {
        // One segment per matrix row, as in the Jacobi solver.
        let n = 33;
        let a = SegArray::<f64>::builder(n * n)
            .segment_sizes(vec![n; n])
            .seg_align(512)
            .shift(128)
            .build();
        assert_eq!(a.num_segments(), n);
        for s in 0..n {
            assert_eq!(a.segment(s).len(), n);
        }
    }

    #[test]
    fn iter_matches_to_vec() {
        let mut a = SegArray::<u32>::builder(77).segments(5).build();
        a.fill_with(|i| i as u32);
        let via_iter: Vec<u32> = a.iter().copied().collect();
        assert_eq!(via_iter, a.to_vec());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let a = SegArray::<f64>::builder(10).build();
        let _ = a.get(10);
    }

    #[test]
    fn empty_array() {
        let a = SegArray::<f64>::builder(0).build();
        assert!(a.is_empty());
        assert_eq!(a.num_segments(), 1);
        assert_eq!(a.to_vec(), Vec::<f64>::new());
    }

    #[test]
    fn more_segments_than_elements() {
        let a = SegArray::<f64>::builder(3).segments(8).build();
        let sizes: Vec<usize> = a.segments().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![1, 1, 1, 0, 0, 0, 0, 0]);
        assert_eq!(a.len(), 3);
    }
}
