//! First-class chip topology descriptions and the preset registry.
//!
//! The paper's analysis is phrased entirely in terms of one machine — the
//! UltraSPARC T2's bits 8:7 → controller, bit 6 → bank, 512 B super-line —
//! but the *method* (analytic layout advice plus measured offset sweeps)
//! only needs a mapping geometry and a handful of timing figures. A
//! [`ChipSpec`] bundles exactly that: a name, a [`MapPolicy`], and the
//! timing knobs the simulator's calibrated T2 template does not share with
//! other chips. Every layer above core (simulator configuration, autotune
//! grids, telemetry periods, bench CLIs) derives its constants from the
//! spec instead of re-hardcoding 512.
//!
//! Presets are registered by name (see [`ChipSpec::preset`]); the
//! `ultrasparc-t2` preset is the [`Default`] and reproduces the existing
//! behavior bit for bit.

use crate::advisor::LayoutAdvisor;
use crate::mapping::{AddressMap, MapPolicy};
use serde::{Deserialize, Serialize};

/// Names of all registered presets, in registry order. The first entry is
/// the default chip.
pub const PRESET_NAMES: [&str; 4] = [
    "ultrasparc-t2",
    "t2-page-interleave",
    "wide-8mc",
    "budget-2mc",
];

/// A chip topology: mapping geometry plus the timing figures that
/// distinguish one interleaved-controller machine from another.
///
/// The spec deliberately stays small — microarchitectural detail that the
/// paper calibrates once for the T2 (store buffers, L2 associativity, queue
/// depths) lives in the simulator's template and is inherited unchanged, so
/// that `ChipSpec` captures only what *varies* across topologies: the
/// address → controller map, the thread capacity, and the per-controller
/// service times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Preset name, recorded in result JSON for reproducibility.
    pub name: String,
    /// Address → controller/bank mapping policy.
    pub map: MapPolicy,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Number of cores.
    pub n_cores: usize,
    /// Hardware threads per core.
    pub threads_per_core: usize,
    /// Controller occupancy per 64 B read, in cycles.
    pub read_service: u64,
    /// Controller occupancy per 64 B write, in cycles.
    pub write_service: u64,
}

impl ChipSpec {
    /// The Sun UltraSPARC T2 of the paper: 8 cores × 8 threads at 1.2 GHz,
    /// four controllers selected by bits 8:7, 512 B super-line.
    pub fn ultrasparc_t2() -> Self {
        ChipSpec {
            name: "ultrasparc-t2".into(),
            map: MapPolicy::t2(),
            clock_hz: 1.2e9,
            n_cores: 8,
            threads_per_core: 8,
            read_service: 12,
            write_service: 24,
        }
    }

    /// The T2 with page-granular controller interleave instead of the
    /// bit-sliced map: controller = (addr / 4096) mod 4, so the layout
    /// period grows to `4096 × 4 = 16384` B and fine offsets below one
    /// page never change controllers.
    pub fn t2_page_interleave() -> Self {
        ChipSpec {
            name: "t2-page-interleave".into(),
            map: MapPolicy::PageInterleave {
                base: AddressMap::ultrasparc_t2(),
                page: 4096,
            },
            ..ChipSpec::ultrasparc_t2()
        }
    }

    /// A hypothetical wide chip: eight controllers (bits 9:7) with a single
    /// L2 bank each, giving a 1024 B super-line, and twice the T2's cores.
    pub fn wide_8mc() -> Self {
        ChipSpec {
            name: "wide-8mc".into(),
            map: MapPolicy::Sliced(AddressMap {
                line_bits: 6,
                mc_lo_bit: 7,
                mc_bits: 3,
                bank_lo_bit: 6,
                bank_bits: 0,
            }),
            clock_hz: 1.2e9,
            n_cores: 16,
            threads_per_core: 8,
            read_service: 12,
            write_service: 24,
        }
    }

    /// A budget chip: two controllers (bit 7) with two banks each, a 256 B
    /// super-line, four cores, and slower memory service.
    pub fn budget_2mc() -> Self {
        ChipSpec {
            name: "budget-2mc".into(),
            map: MapPolicy::Sliced(AddressMap {
                line_bits: 6,
                mc_lo_bit: 7,
                mc_bits: 1,
                bank_lo_bit: 6,
                bank_bits: 1,
            }),
            clock_hz: 1.2e9,
            n_cores: 4,
            threads_per_core: 8,
            read_service: 16,
            write_service: 32,
        }
    }

    /// Looks up a registered preset by name; `None` for unknown names.
    /// [`PRESET_NAMES`] lists the valid arguments.
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "ultrasparc-t2" => Some(ChipSpec::ultrasparc_t2()),
            "t2-page-interleave" => Some(ChipSpec::t2_page_interleave()),
            "wide-8mc" => Some(ChipSpec::wide_8mc()),
            "budget-2mc" => Some(ChipSpec::budget_2mc()),
            _ => None,
        }
    }

    /// Geometry of the underlying mapping.
    pub fn geometry(&self) -> &AddressMap {
        self.map.geometry()
    }

    /// Cache line size in bytes.
    pub fn line_size(&self) -> usize {
        self.geometry().line_size() as usize
    }

    /// Geometric super-line in bytes (the bit-field period of the
    /// underlying [`AddressMap`]; 512 on the T2).
    pub fn super_line(&self) -> usize {
        self.geometry().super_line() as usize
    }

    /// The layout-relevant interleave period in bytes — the policy-aware
    /// generalization of the super-line. See
    /// [`MapPolicy::interleave_period`].
    pub fn interleave_period(&self) -> usize {
        self.map.interleave_period() as usize
    }

    /// Number of memory controllers.
    pub fn num_controllers(&self) -> usize {
        self.geometry().num_controllers() as usize
    }

    /// Total hardware-thread capacity.
    pub fn max_threads(&self) -> usize {
        self.n_cores * self.threads_per_core
    }

    /// An analytic [`LayoutAdvisor`] for this chip's mapping.
    pub fn advisor(&self) -> LayoutAdvisor {
        LayoutAdvisor::new(self.map)
    }
}

impl Default for ChipSpec {
    fn default() -> Self {
        ChipSpec::ultrasparc_t2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_name_and_rejects_unknown() {
        for name in PRESET_NAMES {
            let spec = ChipSpec::preset(name).unwrap_or_else(|| panic!("missing preset {name}"));
            assert_eq!(spec.name, name);
        }
        assert!(ChipSpec::preset("pentium-4").is_none());
    }

    #[test]
    fn default_is_the_t2() {
        assert_eq!(ChipSpec::default(), ChipSpec::ultrasparc_t2());
        assert_eq!(PRESET_NAMES[0], "ultrasparc-t2");
    }

    #[test]
    fn t2_derivations_match_paper_constants() {
        let t2 = ChipSpec::ultrasparc_t2();
        assert_eq!(t2.line_size(), 64);
        assert_eq!(t2.super_line(), 512);
        assert_eq!(t2.interleave_period(), 512);
        assert_eq!(t2.num_controllers(), 4);
        assert_eq!(t2.max_threads(), 64);
        assert_eq!(t2.advisor().suggest_shift(), 128);
    }

    #[test]
    fn preset_periods_span_the_design_space() {
        assert_eq!(ChipSpec::wide_8mc().super_line(), 1024);
        assert_eq!(ChipSpec::wide_8mc().num_controllers(), 8);
        assert_eq!(ChipSpec::budget_2mc().super_line(), 256);
        assert_eq!(ChipSpec::budget_2mc().num_controllers(), 2);
        // Page interleave keeps the bit-field geometry but stretches the
        // layout period to page × n_mc.
        let pi = ChipSpec::t2_page_interleave();
        assert_eq!(pi.super_line(), 512);
        assert_eq!(pi.interleave_period(), 4096 * 4);
    }

    #[test]
    fn advisor_offsets_cover_all_controllers_for_each_preset() {
        for name in PRESET_NAMES {
            let spec = ChipSpec::preset(name).unwrap();
            let n_mc = spec.num_controllers();
            let offs = spec.advisor().suggest_offsets(n_mc);
            let mut mcs: Vec<u32> = offs
                .iter()
                .map(|&o| spec.map.controller(o as u64))
                .collect();
            mcs.sort_unstable();
            mcs.dedup();
            assert_eq!(
                mcs.len(),
                n_mc,
                "offsets must spread over all MCs on {name}"
            );
        }
    }
}
