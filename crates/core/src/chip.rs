//! First-class chip topology descriptions and the preset registry.
//!
//! The paper's analysis is phrased entirely in terms of one machine — the
//! UltraSPARC T2's bits 8:7 → controller, bit 6 → bank, 512 B super-line —
//! but the *method* (analytic layout advice plus measured offset sweeps)
//! only needs a mapping geometry and a handful of timing figures. A
//! [`ChipSpec`] bundles exactly that: a name, a [`MapPolicy`], and the
//! timing knobs the simulator's calibrated T2 template does not share with
//! other chips. Every layer above core (simulator configuration, autotune
//! grids, telemetry periods, bench CLIs) derives its constants from the
//! spec instead of re-hardcoding 512.
//!
//! Presets are registered by name (see [`ChipSpec::preset`]); the
//! `ultrasparc-t2` preset is the [`Default`] and reproduces the existing
//! behavior bit for bit.

use crate::advisor::LayoutAdvisor;
use crate::mapping::{AddressMap, MapPolicy};
use serde::{Deserialize, Serialize};

/// Names of all registered presets, in registry order. The first entry is
/// the default chip.
pub const PRESET_NAMES: [&str; 6] = [
    "ultrasparc-t2",
    "t2-page-interleave",
    "wide-8mc",
    "budget-2mc",
    "2s-numa",
    "4s-numa-wide",
];

/// The socket dimension of a chip: how the controllers (and cores) are
/// grouped into locality domains, and what crossing a domain costs.
///
/// Controllers are grouped *contiguously*: with `S` sockets and `M`
/// controllers, socket `s` owns controllers `[s·M/S, (s+1)·M/S)`, and the
/// cores split the same way. The single-socket instance (`n_sockets == 1`)
/// is the identity — every access is local, the link is never charged —
/// which is how all pre-NUMA presets keep their bitwise behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocketTopology {
    /// Number of sockets; controllers and cores divide evenly across them.
    pub n_sockets: usize,
    /// Extra cycles a remote *read* pays on top of the local service path
    /// (directory/coherence hop before the line can be returned).
    pub remote_read_extra: u64,
    /// Extra cycles a remote *write* (write-back or RFO drain) pays before
    /// the remote controller starts servicing it.
    pub remote_write_extra: u64,
    /// Inter-socket link occupancy per 64 B line. The link is modeled as
    /// one shared full-duplex-agnostic resource: every remote line
    /// serializes on it, so its inverse is the remote bandwidth cap.
    pub link_cycles_per_line: u64,
    /// OS page size in bytes — the granularity of first-touch placement.
    pub page_bytes: u64,
}

impl SocketTopology {
    /// The single-socket identity: no remote accesses exist, so the cost
    /// parameters are zero and only `page_bytes` carries a (moot) default.
    pub fn single() -> Self {
        SocketTopology {
            n_sockets: 1,
            remote_read_extra: 0,
            remote_write_extra: 0,
            link_cycles_per_line: 0,
            page_bytes: 4096,
        }
    }

    /// Whether this topology has more than one locality domain.
    pub fn is_numa(&self) -> bool {
        self.n_sockets > 1
    }
}

impl Default for SocketTopology {
    fn default() -> Self {
        SocketTopology::single()
    }
}

/// A chip topology: mapping geometry plus the timing figures that
/// distinguish one interleaved-controller machine from another.
///
/// The spec deliberately stays small — microarchitectural detail that the
/// paper calibrates once for the T2 (store buffers, L2 associativity, queue
/// depths) lives in the simulator's template and is inherited unchanged, so
/// that `ChipSpec` captures only what *varies* across topologies: the
/// address → controller map, the thread capacity, and the per-controller
/// service times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Preset name, recorded in result JSON for reproducibility.
    pub name: String,
    /// Address → controller/bank mapping policy.
    pub map: MapPolicy,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Number of cores.
    pub n_cores: usize,
    /// Hardware threads per core.
    pub threads_per_core: usize,
    /// Controller occupancy per 64 B read, in cycles.
    pub read_service: u64,
    /// Controller occupancy per 64 B write, in cycles.
    pub write_service: u64,
    /// Socket/locality structure. The single-socket identity
    /// (`SocketTopology::single()`) reproduces pre-NUMA behavior exactly.
    pub sockets: SocketTopology,
}

impl ChipSpec {
    /// The Sun UltraSPARC T2 of the paper: 8 cores × 8 threads at 1.2 GHz,
    /// four controllers selected by bits 8:7, 512 B super-line.
    pub fn ultrasparc_t2() -> Self {
        ChipSpec {
            name: "ultrasparc-t2".into(),
            map: MapPolicy::t2(),
            clock_hz: 1.2e9,
            n_cores: 8,
            threads_per_core: 8,
            read_service: 12,
            write_service: 24,
            sockets: SocketTopology::single(),
        }
    }

    /// The T2 with page-granular controller interleave instead of the
    /// bit-sliced map: controller = (addr / 4096) mod 4, so the layout
    /// period grows to `4096 × 4 = 16384` B and fine offsets below one
    /// page never change controllers.
    pub fn t2_page_interleave() -> Self {
        ChipSpec {
            name: "t2-page-interleave".into(),
            map: MapPolicy::PageInterleave {
                base: AddressMap::ultrasparc_t2(),
                page: 4096,
            },
            ..ChipSpec::ultrasparc_t2()
        }
    }

    /// A hypothetical wide chip: eight controllers (bits 9:7) with a single
    /// L2 bank each, giving a 1024 B super-line, and twice the T2's cores.
    pub fn wide_8mc() -> Self {
        ChipSpec {
            name: "wide-8mc".into(),
            map: MapPolicy::Sliced(AddressMap {
                line_bits: 6,
                mc_lo_bit: 7,
                mc_bits: 3,
                bank_lo_bit: 6,
                bank_bits: 0,
            }),
            clock_hz: 1.2e9,
            n_cores: 16,
            threads_per_core: 8,
            read_service: 12,
            write_service: 24,
            sockets: SocketTopology::single(),
        }
    }

    /// A budget chip: two controllers (bit 7) with two banks each, a 256 B
    /// super-line, four cores, and slower memory service.
    pub fn budget_2mc() -> Self {
        ChipSpec {
            name: "budget-2mc".into(),
            map: MapPolicy::Sliced(AddressMap {
                line_bits: 6,
                mc_lo_bit: 7,
                mc_bits: 1,
                bank_lo_bit: 6,
                bank_bits: 1,
            }),
            clock_hz: 1.2e9,
            n_cores: 4,
            threads_per_core: 8,
            read_service: 16,
            write_service: 32,
            sockets: SocketTopology::single(),
        }
    }

    /// A two-socket NUMA machine: each socket is a T2-like node with four
    /// controllers, so the raw map has eight controllers selected by bits
    /// 9:7 (1 KiB raw period, 512 B per-socket period). Remote lines pay a
    /// coherence hop and serialize on one inter-socket link whose per-line
    /// occupancy caps all-remote traffic well below one socket's local
    /// aggregate (Bergstrom's STREAM gap, arXiv:1103.3225).
    pub fn numa_2s() -> Self {
        ChipSpec {
            name: "2s-numa".into(),
            map: MapPolicy::Sliced(AddressMap {
                line_bits: 6,
                mc_lo_bit: 7,
                mc_bits: 3,
                bank_lo_bit: 6,
                bank_bits: 3,
            }),
            clock_hz: 1.2e9,
            n_cores: 16,
            threads_per_core: 8,
            read_service: 12,
            write_service: 24,
            sockets: SocketTopology {
                n_sockets: 2,
                remote_read_extra: 120,
                remote_write_extra: 60,
                link_cycles_per_line: 8,
                page_bytes: 4096,
            },
        }
    }

    /// A four-socket wide machine: 16 controllers (bits 10:7) over 16 L2
    /// banks in four groups of four, 32 cores. The per-socket period stays
    /// 512 B while the raw map period grows to 2 KiB, so affinity and
    /// in-socket offset tuning compose exactly as on `2s-numa` but with a
    /// deeper wrong-socket penalty (three of four sockets are remote).
    pub fn numa_4s_wide() -> Self {
        ChipSpec {
            name: "4s-numa-wide".into(),
            map: MapPolicy::Sliced(AddressMap {
                line_bits: 6,
                mc_lo_bit: 7,
                mc_bits: 4,
                bank_lo_bit: 6,
                bank_bits: 4,
            }),
            clock_hz: 1.2e9,
            n_cores: 32,
            threads_per_core: 8,
            read_service: 12,
            write_service: 24,
            sockets: SocketTopology {
                n_sockets: 4,
                remote_read_extra: 160,
                remote_write_extra: 80,
                link_cycles_per_line: 10,
                page_bytes: 4096,
            },
        }
    }

    /// Looks up a registered preset by name; `None` for unknown names.
    /// [`PRESET_NAMES`] lists the valid arguments.
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "ultrasparc-t2" => Some(ChipSpec::ultrasparc_t2()),
            "t2-page-interleave" => Some(ChipSpec::t2_page_interleave()),
            "wide-8mc" => Some(ChipSpec::wide_8mc()),
            "budget-2mc" => Some(ChipSpec::budget_2mc()),
            "2s-numa" => Some(ChipSpec::numa_2s()),
            "4s-numa-wide" => Some(ChipSpec::numa_4s_wide()),
            _ => None,
        }
    }

    /// Geometry of the underlying mapping.
    pub fn geometry(&self) -> &AddressMap {
        self.map.geometry()
    }

    /// Cache line size in bytes.
    pub fn line_size(&self) -> usize {
        self.geometry().line_size() as usize
    }

    /// Geometric super-line in bytes (the bit-field period of the
    /// underlying [`AddressMap`]; 512 on the T2).
    pub fn super_line(&self) -> usize {
        self.geometry().super_line() as usize
    }

    /// The layout-relevant interleave period in bytes — the policy-aware
    /// generalization of the super-line. See
    /// [`MapPolicy::interleave_period`].
    pub fn interleave_period(&self) -> usize {
        self.map.interleave_period() as usize
    }

    /// Number of memory controllers.
    pub fn num_controllers(&self) -> usize {
        self.geometry().num_controllers() as usize
    }

    /// Total hardware-thread capacity.
    pub fn max_threads(&self) -> usize {
        self.n_cores * self.threads_per_core
    }

    /// Number of sockets (1 for every pre-NUMA preset).
    pub fn n_sockets(&self) -> usize {
        self.sockets.n_sockets
    }

    /// Controllers per socket (contiguous grouping; see
    /// [`SocketTopology`]).
    pub fn mcs_per_socket(&self) -> usize {
        let s = self.n_sockets().max(1);
        debug_assert_eq!(self.num_controllers() % s, 0);
        (self.num_controllers() / s).max(1)
    }

    /// The *per-socket* interleave period in bytes: the layout period that
    /// matters once pages are placed socket-locally, because first-touch
    /// placement folds the raw controller index into the home socket's
    /// group. Equal to [`ChipSpec::interleave_period`] on one socket.
    pub fn local_period(&self) -> usize {
        self.interleave_period() / self.n_sockets().max(1)
    }

    /// Cores per socket (contiguous grouping, like the controllers).
    pub fn cores_per_socket(&self) -> usize {
        let s = self.n_sockets().max(1);
        debug_assert_eq!(self.n_cores % s, 0);
        (self.n_cores / s).max(1)
    }

    /// The socket that owns core `core`.
    pub fn socket_of_core(&self, core: usize) -> usize {
        (core / self.cores_per_socket()).min(self.n_sockets() - 1)
    }

    /// The socket that owns controller `mc`.
    pub fn socket_of_controller(&self, mc: usize) -> usize {
        (mc / self.mcs_per_socket()).min(self.n_sockets() - 1)
    }

    /// An analytic [`LayoutAdvisor`] for this chip's mapping and socket
    /// topology.
    pub fn advisor(&self) -> LayoutAdvisor {
        LayoutAdvisor::new(self.map).with_sockets(self.sockets)
    }
}

impl Default for ChipSpec {
    fn default() -> Self {
        ChipSpec::ultrasparc_t2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_every_name_and_rejects_unknown() {
        for name in PRESET_NAMES {
            let spec = ChipSpec::preset(name).unwrap_or_else(|| panic!("missing preset {name}"));
            assert_eq!(spec.name, name);
        }
        assert!(ChipSpec::preset("pentium-4").is_none());
    }

    #[test]
    fn default_is_the_t2() {
        assert_eq!(ChipSpec::default(), ChipSpec::ultrasparc_t2());
        assert_eq!(PRESET_NAMES[0], "ultrasparc-t2");
    }

    #[test]
    fn t2_derivations_match_paper_constants() {
        let t2 = ChipSpec::ultrasparc_t2();
        assert_eq!(t2.line_size(), 64);
        assert_eq!(t2.super_line(), 512);
        assert_eq!(t2.interleave_period(), 512);
        assert_eq!(t2.num_controllers(), 4);
        assert_eq!(t2.max_threads(), 64);
        assert_eq!(t2.advisor().suggest_shift(), 128);
    }

    #[test]
    fn preset_periods_span_the_design_space() {
        assert_eq!(ChipSpec::wide_8mc().super_line(), 1024);
        assert_eq!(ChipSpec::wide_8mc().num_controllers(), 8);
        assert_eq!(ChipSpec::budget_2mc().super_line(), 256);
        assert_eq!(ChipSpec::budget_2mc().num_controllers(), 2);
        // Page interleave keeps the bit-field geometry but stretches the
        // layout period to page × n_mc.
        let pi = ChipSpec::t2_page_interleave();
        assert_eq!(pi.super_line(), 512);
        assert_eq!(pi.interleave_period(), 4096 * 4);
    }

    #[test]
    fn numa_presets_group_controllers_and_cores_contiguously() {
        let two = ChipSpec::numa_2s();
        assert_eq!(two.num_controllers(), 8);
        assert_eq!(two.n_sockets(), 2);
        assert_eq!(two.mcs_per_socket(), 4);
        assert_eq!(two.interleave_period(), 1024);
        assert_eq!(two.local_period(), 512);
        assert_eq!(two.cores_per_socket(), 8);
        assert_eq!(two.socket_of_controller(3), 0);
        assert_eq!(two.socket_of_controller(4), 1);
        assert_eq!(two.socket_of_core(7), 0);
        assert_eq!(two.socket_of_core(8), 1);

        let four = ChipSpec::numa_4s_wide();
        assert_eq!(four.num_controllers(), 16);
        assert_eq!(four.n_sockets(), 4);
        assert_eq!(four.mcs_per_socket(), 4);
        assert_eq!(four.interleave_period(), 2048);
        assert_eq!(four.local_period(), 512);
        assert_eq!(four.max_threads(), 256);
        assert_eq!(four.socket_of_controller(15), 3);
    }

    #[test]
    fn single_socket_presets_stay_on_the_identity_topology() {
        for name in [
            "ultrasparc-t2",
            "t2-page-interleave",
            "wide-8mc",
            "budget-2mc",
        ] {
            let spec = ChipSpec::preset(name).unwrap();
            assert_eq!(spec.sockets, SocketTopology::single(), "{name}");
            assert!(!spec.sockets.is_numa());
            assert_eq!(spec.local_period(), spec.interleave_period());
        }
    }

    #[test]
    fn advisor_offsets_cover_all_local_controllers_for_each_preset() {
        // Under first-touch placement the raw controller folds into the
        // home socket's group, so the advisor's offsets must cover every
        // *local* controller; on one socket that is all controllers.
        for name in PRESET_NAMES {
            let spec = ChipSpec::preset(name).unwrap();
            let n_mc = spec.num_controllers();
            let mps = spec.mcs_per_socket();
            let offs = spec.advisor().suggest_offsets(n_mc);
            let mut mcs: Vec<u32> = offs
                .iter()
                .map(|&o| spec.map.controller(o as u64) % mps as u32)
                .collect();
            mcs.sort_unstable();
            mcs.dedup();
            assert_eq!(
                mcs.len(),
                mps,
                "offsets must spread over all local MCs on {name}"
            );
        }
    }
}
