//! Aligned raw allocation — the `posix_memalign` equivalent.
//!
//! The paper aligns array bases "to some boundary by allocating memory using
//! the standard `posix_memalign()` libc function" (§2.2). [`AlignedBuf`] is
//! the safe Rust counterpart: a zero-initialized byte buffer whose base
//! address is a multiple of a caller-chosen power-of-two alignment.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;

/// A heap allocation of raw bytes with guaranteed base alignment.
///
/// The buffer is zero-initialized. Typed views are carved out of it by
/// [`SegArray`](crate::seg_array::SegArray); it can also be used directly for
/// hand-rolled layouts.
///
/// ```
/// use t2opt_core::alloc::AlignedBuf;
/// let buf = AlignedBuf::new(4096, 8192);
/// assert_eq!(buf.base_addr() % 8192, 0);
/// assert_eq!(buf.len(), 4096);
/// ```
pub struct AlignedBuf {
    ptr: NonNull<u8>,
    len: usize,
    layout: Layout,
}

// SAFETY: AlignedBuf uniquely owns its allocation; sending it to another
// thread transfers that ownership, and shared references only permit reads.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocates `len` zeroed bytes aligned to `align` (a power of two).
    ///
    /// # Panics
    /// Panics if `align` is not a power of two or if `len` overflows the
    /// allocator's limits. A zero `len` is promoted to one line so the base
    /// address stays meaningful.
    pub fn new(len: usize, align: usize) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let len = len.max(1);
        let layout = Layout::from_size_align(len, align).expect("invalid layout");
        // SAFETY: layout has non-zero size.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        AlignedBuf { ptr, len, layout }
    }

    /// Number of bytes in the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty (never true: zero-sized requests are
    /// promoted to one byte).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Base address of the allocation as an integer, for mapping analysis.
    #[inline]
    pub fn base_addr(&self) -> usize {
        self.ptr.as_ptr() as usize
    }

    /// Raw base pointer.
    #[inline]
    pub fn as_ptr(&self) -> *const u8 {
        self.ptr.as_ptr()
    }

    /// Raw mutable base pointer.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// Immutable view of the whole buffer.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: ptr is valid for len bytes and we hand out a shared view.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable view of the whole buffer.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: ptr is valid for len bytes and &mut self guarantees
        // exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Interprets the byte range `[byte_off, byte_off + n * size_of::<T>())`
    /// as a typed slice.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or misaligned for `T`.
    #[inline]
    pub fn typed<T>(&self, byte_off: usize, n: usize) -> &[T] {
        self.check_range::<T>(byte_off, n);
        // SAFETY: range checked; alignment checked; shared borrow of self.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr().add(byte_off) as *const T, n) }
    }

    /// Mutable variant of [`AlignedBuf::typed`].
    #[inline]
    pub fn typed_mut<T>(&mut self, byte_off: usize, n: usize) -> &mut [T] {
        self.check_range::<T>(byte_off, n);
        // SAFETY: range checked; alignment checked; exclusive borrow of self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr().add(byte_off) as *mut T, n) }
    }

    #[inline]
    fn check_range<T>(&self, byte_off: usize, n: usize) {
        let bytes = n
            .checked_mul(std::mem::size_of::<T>())
            .expect("length overflow");
        assert!(
            byte_off
                .checked_add(bytes)
                .is_some_and(|end| end <= self.len),
            "typed range out of bounds: off={byte_off} n={n} len={}",
            self.len
        );
        assert_eq!(
            (self.base_addr() + byte_off) % std::mem::align_of::<T>(),
            0,
            "typed range misaligned for T"
        );
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        // SAFETY: ptr/layout come from alloc_zeroed with the same layout.
        unsafe { dealloc(self.ptr.as_ptr(), self.layout) };
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("base", &format_args!("{:#x}", self.base_addr()))
            .field("len", &self.len)
            .field("align", &self.layout.align())
            .finish()
    }
}

/// Rounds `x` up to the next multiple of `align` (power of two).
#[inline]
pub const fn align_up(x: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (x + align - 1) & !(align - 1)
}

/// Rounds `x` down to the previous multiple of `align` (power of two).
#[inline]
pub const fn align_down(x: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    x & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_respected() {
        for align in [64, 128, 512, 4096, 8192] {
            let buf = AlignedBuf::new(1000, align);
            assert_eq!(buf.base_addr() % align, 0, "align {align}");
        }
    }

    #[test]
    fn zero_initialized() {
        let buf = AlignedBuf::new(4096, 64);
        assert!(buf.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn typed_views_round_trip() {
        let mut buf = AlignedBuf::new(1024, 64);
        {
            let xs = buf.typed_mut::<f64>(64, 10);
            for (i, x) in xs.iter_mut().enumerate() {
                *x = i as f64;
            }
        }
        let xs = buf.typed::<f64>(64, 10);
        assert_eq!(xs[9], 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn typed_out_of_bounds_panics() {
        let buf = AlignedBuf::new(64, 64);
        let _ = buf.typed::<f64>(0, 9);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn typed_misaligned_panics() {
        let buf = AlignedBuf::new(64, 64);
        let _ = buf.typed::<f64>(4, 1);
    }

    #[test]
    fn zero_len_promoted() {
        let buf = AlignedBuf::new(0, 64);
        assert_eq!(buf.len(), 1);
        assert!(!buf.is_empty());
    }

    #[test]
    fn align_helpers() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 64), 128);
        assert_eq!(align_down(63, 64), 0);
        assert_eq!(align_down(64, 64), 64);
        assert_eq!(align_down(130, 64), 128);
    }
}
