//! Analytic layout advisor.
//!
//! §2.3 of the paper stresses that the optimal layout parameters "can be
//! obtained by analyzing the data access properties of the loop kernel,
//! together with some knowledge about the mapping between addresses and
//! memory controllers. No 'trial and error' is required."
//!
//! [`LayoutAdvisor`] is that analysis as a library: describe the concurrent
//! access streams of a kernel as [`StreamDesc`]s, and the advisor predicts
//! the controller-utilization efficiency of a candidate layout
//! ([`LayoutAdvisor::predict`]) and derives optimal byte offsets and shifts
//! ([`LayoutAdvisor::suggest_offsets`], [`LayoutAdvisor::suggest_shift`])
//! directly from the mapping geometry.
//!
//! # The prediction model
//!
//! All streams advance in lockstep, one cache line per *phase*. Each stream
//! contributes per line:
//!
//! * a **blocking** unit (a load or a read-for-ownership) that the issuing
//!   thread must wait for — on the T2 every thread is limited to a single
//!   outstanding miss, so blocking units cannot be smoothed across phases:
//!   a phase lasts at least as long as the most-loaded controller's blocking
//!   work (`max_c blocking_c`, the convoy constraint);
//! * optionally **buffered** units (write-backs) that drain through the
//!   controller queues whenever their controller is free — they constrain
//!   only the long-run per-controller and aggregate throughput.
//!
//! Total time over one mapping period is therefore
//!
//! ```text
//! T = max( Σ_p max_c blocking(c,p),   // convoy
//!          total_work / n_mc,         // aggregate capacity
//!          max_c Σ_p work(c,p) )      // per-controller capacity
//! ```
//!
//! and efficiency = `(total_work / n_mc) / T ∈ (0, 1]`. With every stream
//! congruent mod 512 B the convoy term dominates and efficiency collapses
//! toward `1/n_mc` — the Fig. 2/Fig. 4 dips; with the suggested offsets all
//! three terms coincide and efficiency is 1.

use crate::chip::SocketTopology;
use crate::mapping::{MapPolicy, PagePlacement};
use serde::{Deserialize, Serialize};

/// Direction of an access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamKind {
    /// Pure load stream: one blocking unit per line.
    Read,
    /// Store stream through a write-allocate cache: one blocking
    /// read-for-ownership unit plus a buffered write-back per line.
    Write,
    /// Pure write-back / non-temporal store stream: buffered units only
    /// (e.g. architectures that claim ownership without a prior read,
    /// footnote 1 of the paper).
    Writeback,
}

impl StreamKind {
    /// Blocking units per line (loads the thread must wait on).
    #[inline]
    pub fn blocking(self) -> u32 {
        match self {
            StreamKind::Read | StreamKind::Write => 1,
            StreamKind::Writeback => 0,
        }
    }

    /// Buffered units per line, in read-service equivalents. The T2's
    /// FB-DIMM channels write at half the read bandwidth (21 vs 42 GB/s
    /// nominal), so one written line costs two units.
    #[inline]
    pub fn buffered(self) -> u32 {
        match self {
            StreamKind::Read => 0,
            StreamKind::Write | StreamKind::Writeback => 2,
        }
    }

    /// Total controller occupancy per line.
    #[inline]
    pub fn weight(self) -> u32 {
        self.blocking() + self.buffered()
    }
}

/// One unit-stride access stream of a loop kernel: a base byte address (or
/// base offset within an allocation) plus its direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamDesc {
    /// Byte address of the stream's first element.
    pub base: u64,
    /// Access direction.
    pub kind: StreamKind,
}

impl StreamDesc {
    /// A read stream at `base`.
    pub fn read(base: u64) -> Self {
        StreamDesc {
            base,
            kind: StreamKind::Read,
        }
    }

    /// A store stream (RFO + write-back) at `base`.
    pub fn write(base: u64) -> Self {
        StreamDesc {
            base,
            kind: StreamKind::Write,
        }
    }

    /// A pure write-back / non-temporal store stream at `base`.
    pub fn writeback(base: u64) -> Self {
        StreamDesc {
            base,
            kind: StreamKind::Writeback,
        }
    }
}

/// Result of a layout prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Controller-utilization efficiency in (0, 1]. 1.0 = all controllers
    /// saturated; `→ 1/n_mc` = full convoy on a single controller.
    pub efficiency: f64,
    /// Which of the three constraints set the time (for diagnostics).
    pub bound: Bound,
    /// Total occupancy units per controller over one period (who is the
    /// hotspot).
    pub controller_load: Vec<u64>,
    /// Mean number of distinct controllers hit by blocking units per phase —
    /// the paper's informal "how many controllers are addressed
    /// concurrently".
    pub concurrent_controllers: f64,
}

/// Which constraint bounds the runtime in a [`Prediction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Convoy: blocking units concentrate on few controllers per phase.
    Convoy,
    /// Aggregate controller bandwidth.
    Aggregate,
    /// A single controller's long-run occupancy.
    Hotspot,
}

/// The analytic advisor for a given controller mapping policy (and, on
/// multi-socket chips, its socket topology).
///
/// # Affinity dominates aliasing
///
/// On a NUMA chip the advisor reasons in two stages, in order of impact:
///
/// 1. **Placement first.** Any page on the wrong socket pays the remote
///    latency hop *and* serializes on the shared inter-socket link, whose
///    per-line occupancy caps all-remote bandwidth far below one socket's
///    local aggregate. No byte offset can buy that back, so the advisor
///    always suggests socket-local (first-touch) placement before it
///    considers offsets ([`LayoutAdvisor::locality_factor`] quantifies the
///    cost of ignoring this).
/// 2. **Offset within the socket.** Under first-touch placement the raw
///    controller index folds into the home socket's group, so the
///    aliasing arithmetic happens modulo the *per-socket* period: all
///    offset/shift/alignment suggestions use `period / n_sockets` and the
///    `mcs_per_socket` local controllers.
#[derive(Debug, Clone)]
pub struct LayoutAdvisor {
    policy: MapPolicy,
    sockets: SocketTopology,
    /// One remote line's inter-socket-link occupancy, in units of one
    /// local controller's per-line read service (0 on a single socket).
    remote_cost_ratio: f64,
}

impl LayoutAdvisor {
    /// Advisor for the given mapping policy on a single socket.
    pub fn new(policy: MapPolicy) -> Self {
        LayoutAdvisor {
            policy,
            sockets: SocketTopology::single(),
            remote_cost_ratio: 0.0,
        }
    }

    /// Attaches a socket topology. `sockets.link_cycles_per_line` is
    /// normalized against `read_service` (the local controllers' per-line
    /// occupancy) so the placement factor compares link and controller
    /// capacity in the same units.
    pub fn with_numa(mut self, sockets: SocketTopology, read_service: u64) -> Self {
        self.sockets = sockets;
        self.remote_cost_ratio = if sockets.is_numa() {
            sockets.link_cycles_per_line as f64 / read_service.max(1) as f64
        } else {
            0.0
        };
        self
    }

    /// Attaches a socket topology with the T2's 12-cycle read service as
    /// the normalization base (every shipped preset's value except
    /// `budget-2mc`). Prefer [`crate::chip::ChipSpec::advisor`], which
    /// passes the chip's own service time through
    /// [`LayoutAdvisor::with_numa`].
    pub fn with_sockets(self, sockets: SocketTopology) -> Self {
        self.with_numa(sockets, 12)
    }

    /// Advisor for the real UltraSPARC T2 mapping.
    pub fn t2() -> Self {
        LayoutAdvisor::new(MapPolicy::t2())
    }

    /// Advisor for a chip preset's mapping policy and socket topology.
    pub fn for_chip(spec: &crate::chip::ChipSpec) -> Self {
        LayoutAdvisor::new(spec.map).with_numa(spec.sockets, spec.read_service)
    }

    /// The mapping policy in use.
    pub fn policy(&self) -> &MapPolicy {
        &self.policy
    }

    /// The socket topology in use.
    pub fn sockets(&self) -> &SocketTopology {
        &self.sockets
    }

    /// Controllers per socket under the contiguous grouping.
    fn mcs_per_socket(&self) -> usize {
        let n_mc = self.policy.geometry().num_controllers() as usize;
        (n_mc / self.sockets.n_sockets.max(1)).max(1)
    }

    /// The per-socket interleave period — the period the aliasing
    /// arithmetic actually runs at once pages are socket-local (equal to
    /// the full period on one socket).
    pub fn local_period(&self) -> usize {
        self.policy.interleave_period() as usize / self.sockets.n_sockets.max(1)
    }

    /// The bandwidth factor a page placement keeps relative to socket-local
    /// placement, in `(0, 1]`: 1.0 for first touch, and for placements
    /// with a remote line fraction `f` the ratio of the local aggregate
    /// rate to the link-throttled rate. This is the "affinity dominates
    /// aliasing" number — on the shipped NUMA presets it is far below the
    /// worst aliasing penalty, which tops out at `1/mcs_per_socket`.
    pub fn locality_factor(&self, placement: PagePlacement) -> f64 {
        let f = placement.remote_fraction(self.sockets.n_sockets);
        if f == 0.0 {
            return 1.0;
        }
        let n_mc = self.policy.geometry().num_controllers() as f64;
        // Per line: local service occupies one of n_mc controllers
        // (aggregate time 1/n_mc in service units); the remote fraction
        // additionally serializes on the single shared link.
        let local_time = 1.0 / n_mc;
        let link_time = f * self.remote_cost_ratio;
        local_time / local_time.max(link_time)
    }

    /// Predicts the controller-utilization efficiency of a set of lockstep
    /// streams. See the module docs for the model.
    ///
    /// On a multi-socket chip the streams are assumed socket-local
    /// (first-touch placement): the raw controller index folds into the
    /// home socket's group of `mcs_per_socket` controllers, so two
    /// addresses whose raw controllers differ only in the socket bits
    /// still alias. Combine with [`LayoutAdvisor::locality_factor`] for
    /// non-local placements.
    pub fn predict(&self, streams: &[StreamDesc]) -> Prediction {
        let geo = self.policy.geometry();
        let n_mc = geo.num_controllers() as usize;
        let mps = self.mcs_per_socket();
        let line = geo.line_size();
        // One full interleave period for policies whose period is exact
        // (bit-sliced and page-granular maps); a longer averaging window
        // for hashed policies, whose true period is impractically large.
        let phases = match self.policy {
            MapPolicy::Sliced(_) | MapPolicy::PageInterleave { .. } => {
                (self.policy.interleave_period() / line) as usize
            }
            MapPolicy::XorFold { .. } => 4 * (geo.super_line() / line) as usize * n_mc,
        };
        let mut load = vec![0u64; mps];
        let mut convoy_time = 0u64;
        let mut distinct_sum = 0usize;
        for p in 0..phases {
            let mut blocking = vec![0u64; mps];
            for s in streams {
                let addr = s.base + p as u64 * line;
                let mc = self.policy.controller(addr) as usize % mps;
                blocking[mc] += u64::from(s.kind.blocking());
                load[mc] += u64::from(s.kind.weight());
            }
            convoy_time += *blocking.iter().max().unwrap();
            distinct_sum += blocking.iter().filter(|&&b| b > 0).count();
        }
        let total: u64 = load.iter().sum();
        let ideal = total as f64 / mps as f64;
        let hotspot = *load.iter().max().unwrap() as f64;
        let convoy = convoy_time as f64;
        let actual = convoy.max(ideal).max(hotspot);
        let bound = if actual == convoy && convoy >= hotspot && convoy > ideal {
            Bound::Convoy
        } else if actual == hotspot && hotspot > ideal {
            Bound::Hotspot
        } else {
            Bound::Aggregate
        };
        Prediction {
            efficiency: if total == 0 { 1.0 } else { ideal / actual },
            bound,
            controller_load: load,
            concurrent_controllers: distinct_sum as f64 / phases as f64,
        }
    }

    /// Suggested byte offsets for `n` equally-important streams so that at
    /// every phase the streams spread maximally over the controllers: stream
    /// `i` is offset by `(i mod n_mc) · period / n_mc` bytes, where `period`
    /// is the policy's [`MapPolicy::interleave_period`].
    ///
    /// For four streams on the T2 this yields the paper's optimum
    /// `[0, 128, 256, 384]` (§2.2: offsets 128/256/384 for B, C, D with A at
    /// the page boundary). Under page interleave the step grows to one page,
    /// the smallest offset that changes controllers at all.
    /// On a NUMA chip the offsets stay inside the *per-socket* period and
    /// rotate over the local controllers — crossing into another socket's
    /// residues would trade a cheap aliasing fix for an expensive affinity
    /// break (see the type-level docs); the step is identical because both
    /// the period and the controller count divide by `n_sockets`.
    pub fn suggest_offsets(&self, n: usize) -> Vec<usize> {
        let mps = self.mcs_per_socket();
        let step = self.local_period() / mps;
        (0..n).map(|i| (i % mps) * step).collect()
    }

    /// Suggested per-segment shift so that successive segments rotate through
    /// the (socket-local) controllers: `period / n_mc` (128 B on the T2, the
    /// paper's Jacobi choice — and the same value on the NUMA presets, where
    /// it is `local_period / mcs_per_socket`).
    pub fn suggest_shift(&self) -> usize {
        self.local_period() / self.mcs_per_socket()
    }

    /// Suggested segment alignment: the interleave period (512 B on the T2),
    /// so that shifts translate exactly into controller rotation. On NUMA
    /// chips this is the per-socket period — the granularity the folded
    /// mapping actually repeats at.
    pub fn suggest_seg_align(&self) -> usize {
        self.local_period()
    }

    /// The advisor's complete closed-form layout for the mapping: page base
    /// alignment (so offsets are exact), segments padded to the super-line,
    /// successive segments shifted by [`LayoutAdvisor::suggest_shift`], and a
    /// per-array block offset of `super_line / n_mc` — array `j` of a
    /// multi-array kernel is placed at `j ·` that offset, reproducing
    /// [`LayoutAdvisor::suggest_offsets`]. On the T2 this is
    /// `base_align 8192, seg_align 512, shift 128, block_offset 128`.
    ///
    /// This is the seed the empirical autotuner's advisor-seeded search
    /// starts from (§2.3: the optimum "can be obtained by analyzing the data
    /// access properties of the loop kernel … no 'trial and error' is
    /// required").
    /// On NUMA chips the layout additionally pins first-touch placement —
    /// affinity before offsets — and all byte parameters use the
    /// per-socket period.
    pub fn suggest_layout(&self) -> crate::layout::LayoutSpec {
        let period = self.local_period();
        let page = 8192usize.max(period);
        crate::layout::LayoutSpec::new()
            .base_align(page)
            .seg_align(self.suggest_seg_align())
            .shift(self.suggest_shift())
            .block_offset(period / self.mcs_per_socket())
            .placement(PagePlacement::FirstTouch)
    }

    /// Brute-force check of the analytic suggestion: searches offsets over
    /// multiples of `granularity` bytes within one interleave period for the
    /// stream combination maximizing predicted efficiency. Stream 0's offset
    /// varies too (only relative placement matters, but the search space is
    /// cheap). Returns (offsets, efficiency).
    ///
    /// Exponential in the number of streams — intended for ≤ 4 streams, as a
    /// validation that the closed-form [`LayoutAdvisor::suggest_offsets`] is
    /// optimal, not as a production path.
    pub fn search_offsets(&self, kinds: &[StreamKind], granularity: usize) -> (Vec<usize>, f64) {
        assert!(!kinds.is_empty());
        assert!(granularity > 0);
        let period = self.policy.interleave_period() as usize;
        let choices = period / granularity;
        let n = kinds.len();
        let mut best = (vec![0usize; n], f64::NEG_INFINITY);
        let mut current = vec![0usize; n];
        self.search_rec(kinds, granularity, choices, 0, &mut current, &mut best);
        best
    }

    fn search_rec(
        &self,
        kinds: &[StreamKind],
        granularity: usize,
        choices: usize,
        depth: usize,
        current: &mut Vec<usize>,
        best: &mut (Vec<usize>, f64),
    ) {
        if depth == kinds.len() {
            let streams: Vec<StreamDesc> = kinds
                .iter()
                .zip(current.iter())
                .map(|(&kind, &off)| StreamDesc {
                    base: off as u64,
                    kind,
                })
                .collect();
            let eff = self.predict(&streams).efficiency;
            if eff > best.1 {
                *best = (current.clone(), eff);
            }
            return;
        }
        for c in 0..choices {
            current[depth] = c * granularity;
            self.search_rec(kinds, granularity, choices, depth + 1, current, best);
        }
    }
}

impl Default for LayoutAdvisor {
    fn default() -> Self {
        LayoutAdvisor::t2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Vector triad A = B + C·D: store A, load B, C, D.
    fn triad_streams(offsets: [u64; 4]) -> Vec<StreamDesc> {
        vec![
            StreamDesc::write(offsets[0]),
            StreamDesc::read(offsets[1]),
            StreamDesc::read(offsets[2]),
            StreamDesc::read(offsets[3]),
        ]
    }

    #[test]
    fn congruent_streams_convoy() {
        // All four arrays congruent mod 512 B — the Fig. 4 "align 8k" floor.
        // Blocking units pile 4-deep on a single controller every phase.
        let adv = LayoutAdvisor::t2();
        let p = adv.predict(&triad_streams([0, 0, 0, 0]));
        assert_eq!(p.bound, Bound::Convoy);
        assert!((p.concurrent_controllers - 1.0).abs() < 1e-12);
        // total work/phase = 3 reads + 1 rfo + 2 wb = 6; ideal 1.5; convoy 4.
        assert!(
            (p.efficiency - 1.5 / 4.0).abs() < 1e-12,
            "got {}",
            p.efficiency
        );
    }

    #[test]
    fn suggested_offsets_reach_full_efficiency() {
        let adv = LayoutAdvisor::t2();
        let offs = adv.suggest_offsets(4);
        assert_eq!(offs, vec![0, 128, 256, 384]);
        let p = adv.predict(&triad_streams([
            offs[0] as u64,
            offs[1] as u64,
            offs[2] as u64,
            offs[3] as u64,
        ]));
        assert!(
            (p.efficiency - 1.0).abs() < 1e-12,
            "paper's optimal offsets must saturate all controllers, got {}",
            p.efficiency
        );
        assert!((p.concurrent_controllers - 4.0).abs() < 1e-12);
    }

    #[test]
    fn congruent_vs_optimal_ratio_matches_fig4() {
        // Fig. 4: hard limits at ~16 and ~3.7 GB/s — a factor ≈ 4.3. Our
        // model predicts optimal/congruent = 1.0 / 0.375 ≈ 2.7 from
        // bandwidth terms alone (the rest is latency serialization, which
        // the simulator adds). Require at least the 2.5× bandwidth part.
        let adv = LayoutAdvisor::t2();
        let worst = adv.predict(&triad_streams([0, 0, 0, 0])).efficiency;
        let best = adv.predict(&triad_streams([0, 128, 256, 384])).efficiency;
        assert!(best / worst > 2.5, "ratio {}", best / worst);
    }

    #[test]
    fn offset_64_words_is_as_bad_as_zero() {
        // Fig. 2: performance "returns to the same level at an offset of 64
        // [DP words]" = 512 B.
        let adv = LayoutAdvisor::t2();
        let zero = adv.predict(&triad_streams([0, 0, 0, 0])).efficiency;
        let off512 = adv.predict(&triad_streams([0, 512, 1024, 1536])).efficiency;
        assert!((zero - off512).abs() < 1e-12);
    }

    #[test]
    fn odd_multiple_of_32_words_improves() {
        // Fig. 2: "At odd multiples of 32, the situation is improved because
        // bit 8 is different for array B's base and thus two controllers are
        // addressed" — the paper expects up to 100%; the bandwidth part of
        // our model gives 1.5×, the rest is latency (simulator territory).
        let adv = LayoutAdvisor::t2();
        // STREAM triad A = B + s·C with COMMON-block layout: B and C offset
        // from A by k and 2k DP words.
        let stream_triad = |k: u64| {
            vec![
                StreamDesc::write(0),
                StreamDesc::read(k * 8),
                StreamDesc::read(2 * k * 8),
            ]
        };
        let zero = adv.predict(&stream_triad(0));
        let thirty_two = adv.predict(&stream_triad(32));
        assert!((zero.concurrent_controllers - 1.0).abs() < 1e-12);
        assert!((thirty_two.concurrent_controllers - 2.0).abs() < 1e-12);
        assert!(
            thirty_two.efficiency > 1.45 * zero.efficiency,
            "offset 32 should improve efficiency: {} -> {}",
            zero.efficiency,
            thirty_two.efficiency
        );
    }

    #[test]
    fn shift_suggestion_is_128_bytes_on_t2() {
        let adv = LayoutAdvisor::t2();
        assert_eq!(adv.suggest_shift(), 128);
        assert_eq!(adv.suggest_seg_align(), 512);
    }

    #[test]
    fn suggested_layout_is_the_paper_optimum() {
        let spec = LayoutAdvisor::t2().suggest_layout();
        assert_eq!(spec.base_align, 8192);
        assert_eq!(spec.seg_align, 512);
        assert_eq!(spec.shift, 128);
        assert_eq!(spec.block_offset, 128);
        // Per-array offsets j · block_offset reproduce suggest_offsets.
        let offs: Vec<usize> = (0..4).map(|j| j * spec.block_offset).collect();
        assert_eq!(offs, LayoutAdvisor::t2().suggest_offsets(4));
    }

    #[test]
    fn search_confirms_analytic_offsets() {
        // Exhaustive search at 128 B granularity over 4 read streams must
        // find a layout with all controllers concurrently busy
        // (efficiency 1.0), matching the closed form.
        let adv = LayoutAdvisor::t2();
        let kinds = [StreamKind::Read; 4];
        let (offs, eff) = adv.search_offsets(&kinds, 128);
        assert!(
            (eff - 1.0).abs() < 1e-12,
            "search should reach 1.0, got {eff}"
        );
        let mut mcs: Vec<u32> = offs
            .iter()
            .map(|&o| adv.policy().controller(o as u64))
            .collect();
        mcs.sort_unstable();
        assert_eq!(mcs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn controller_load_histogram_accounts_all_units() {
        let adv = LayoutAdvisor::t2();
        let streams = triad_streams([0, 128, 256, 384]);
        let p = adv.predict(&streams);
        // 8 phases × (write 3 + read 1 × 3) = 48.
        assert_eq!(p.controller_load.iter().sum::<u64>(), 48);
    }

    #[test]
    fn writeback_only_streams_never_convoy() {
        // Pure write-back traffic is buffered: even congruent streams rotate
        // through all controllers over the period and the queues smooth them
        // out, so there is no convoy and no hotspot — this is why footnote 1
        // of the paper notes that non-temporal stores help on x86.
        let adv = LayoutAdvisor::t2();
        let streams = vec![
            StreamDesc::writeback(0),
            StreamDesc::writeback(0),
            StreamDesc::writeback(0),
        ];
        let p = adv.predict(&streams);
        assert_ne!(p.bound, Bound::Convoy);
        assert!((p.efficiency - 1.0).abs() < 1e-12, "got {}", p.efficiency);
    }

    #[test]
    fn empty_streams_are_trivially_efficient() {
        let adv = LayoutAdvisor::t2();
        assert_eq!(adv.predict(&[]).efficiency, 1.0);
    }

    #[test]
    fn page_interleave_suggestions_operate_at_page_granularity() {
        use crate::mapping::AddressMap;
        let adv = LayoutAdvisor::new(MapPolicy::PageInterleave {
            base: AddressMap::ultrasparc_t2(),
            page: 4096,
        });
        // Sub-page offsets cannot change the controller, so the advisor
        // must step whole pages: [0, 4096, 8192, 12288].
        let offs = adv.suggest_offsets(4);
        assert_eq!(offs, vec![0, 4096, 8192, 12288]);
        assert_eq!(adv.suggest_shift(), 4096);
        assert_eq!(adv.suggest_seg_align(), 16384);
        let spec = adv.suggest_layout();
        assert_eq!(spec.base_align, 16384);
        assert_eq!(spec.block_offset, 4096);
        // The page-stepped streams saturate all four controllers, while the
        // T2's 128 B offsets are near-worthless under page interleave: the
        // streams share a page (and thus a controller) for all but the few
        // boundary-straddling phases per page.
        let streams: Vec<StreamDesc> = offs.iter().map(|&o| StreamDesc::read(o as u64)).collect();
        assert!((adv.predict(&streams).efficiency - 1.0).abs() < 1e-12);
        let fine: Vec<StreamDesc> = [0u64, 128, 256, 384]
            .iter()
            .map(|&o| StreamDesc::read(o))
            .collect();
        let eff = adv.predict(&fine).efficiency;
        assert!((0.25..0.30).contains(&eff), "got {eff}");
    }

    #[test]
    fn numa_advisor_folds_aliasing_into_the_socket() {
        let spec = crate::chip::ChipSpec::numa_2s();
        let adv = spec.advisor();
        // Offsets stay inside the 512 B per-socket period with the T2 step.
        assert_eq!(adv.suggest_offsets(4), vec![0, 128, 256, 384]);
        assert_eq!(adv.suggest_shift(), 128);
        assert_eq!(adv.suggest_seg_align(), 512);
        assert_eq!(adv.local_period(), 512);
        // A 512 B offset changes the *raw* controller (bit 9) but not the
        // local one — under first-touch placement it still aliases.
        assert_ne!(
            spec.map.controller(0),
            spec.map.controller(512),
            "raw map must differ so the fold is doing real work"
        );
        let aliased = adv.predict(&triad_streams([0, 512, 1024, 1536]));
        assert_eq!(aliased.bound, Bound::Convoy);
        assert!((aliased.concurrent_controllers - 1.0).abs() < 1e-12);
        let spread = adv.predict(&triad_streams([0, 128, 256, 384]));
        assert!((spread.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn affinity_dominates_aliasing_on_the_numa_presets() {
        for name in ["2s-numa", "4s-numa-wide"] {
            let spec = crate::chip::ChipSpec::preset(name).unwrap();
            let adv = spec.advisor();
            let local = adv.locality_factor(PagePlacement::FirstTouch);
            let inter = adv.locality_factor(PagePlacement::Interleave);
            let remote = adv.locality_factor(PagePlacement::Remote);
            assert_eq!(local, 1.0);
            assert!(local > inter && inter > remote, "{name}: {inter} {remote}");
            // The worst aliasing penalty within a socket is 1/mps; the
            // wrong-socket penalty must be deeper than that.
            let worst_alias = 1.0 / spec.mcs_per_socket() as f64;
            assert!(
                remote < worst_alias,
                "{name}: wrong socket ({remote}) must cost more than \
                 the worst convoy ({worst_alias})"
            );
            // The suggested layout pins first-touch placement.
            assert_eq!(adv.suggest_layout().placement, PagePlacement::FirstTouch);
        }
        // Single-socket chips: placement is a no-op.
        let t2 = LayoutAdvisor::t2();
        for p in PagePlacement::ALL {
            assert_eq!(t2.locality_factor(p), 1.0);
        }
    }

    #[test]
    fn xor_fold_policy_makes_congruent_streams_benign() {
        use crate::mapping::{AddressMap, MapPolicy};
        let adv = LayoutAdvisor::new(MapPolicy::XorFold {
            base: AddressMap::ultrasparc_t2(),
            folds: 8, // folds cover bits 7..23, reaching the 2^20 separation
        });
        // Large power-of-two separations, congruent mod 512 — catastrophic
        // on the sliced map, mostly fine under the fold.
        let sep = 1u64 << 20;
        let streams: Vec<StreamDesc> = (0..4).map(|i| StreamDesc::read(i as u64 * sep)).collect();
        let folded = adv.predict(&streams).efficiency;
        let sliced = LayoutAdvisor::t2().predict(&streams).efficiency;
        assert!((sliced - 0.25).abs() < 1e-12);
        assert!(
            folded > 0.5,
            "fold should spread congruent streams, got {folded}"
        );
    }
}
