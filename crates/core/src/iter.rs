//! Segmented iterators and hierarchical algorithms.
//!
//! The paper (§2.2) discourages element-wise iteration over a segmented
//! container in hot loops — the "required conditional branches in, e.g.,
//! `operator++()`" kill performance — and instead uses *segmented iterators*
//! in the sense of Austern: algorithms are written hierarchically, an outer
//! loop over segments and a tight, branch-free inner loop over each
//! contiguous segment. The inner loop sees a plain slice and compiles to the
//! same machine code as a C or Fortran loop.
//!
//! This module provides both styles:
//!
//! * [`FlatIter`] — the discouraged element-wise iterator (kept for
//!   correctness tests and for measuring exactly the overhead the paper
//!   warns about, Fig. 5);
//! * [`seg_zip2`], [`seg_zip3`], [`seg_zip4`] — hierarchical zips over
//!   structurally identical segmented arrays, the workhorses for STREAM-like
//!   kernels (`A(:) = B(:) + s*C(:)` runs as one `seg_zip3` whose inner
//!   closure is a plain slice loop);
//! * [`HierExt`] — fold/reduce conveniences written hierarchically.

use crate::seg_array::{Pod, SegArray};

/// Element-wise iterator across segment boundaries, with the per-step bounds
/// branch the paper warns about. Use only outside hot loops.
pub struct FlatIter<'a, T: Pod> {
    arr: &'a SegArray<T>,
    seg: usize,
    local: usize,
}

impl<'a, T: Pod> FlatIter<'a, T> {
    /// Creates a flat element iterator over `arr`.
    pub fn new(arr: &'a SegArray<T>) -> Self {
        FlatIter {
            arr,
            seg: 0,
            local: 0,
        }
    }
}

impl<'a, T: Pod> Iterator for FlatIter<'a, T> {
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        // The branchy "operator++" of the paper: every step checks whether
        // the segment is exhausted.
        while self.seg < self.arr.num_segments() {
            let s = self.arr.segment(self.seg);
            if self.local < s.len() {
                let v = s[self.local];
                self.local += 1;
                return Some(v);
            }
            self.seg += 1;
            self.local = 0;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let done: usize = (0..self.seg)
            .map(|s| self.arr.segment(s).len())
            .sum::<usize>()
            + self.local;
        let left = self.arr.len() - done;
        (left, Some(left))
    }
}

/// Asserts that two segmented arrays have identical segment structure, a
/// precondition for hierarchical zips.
#[inline]
fn assert_same_structure<A: Pod, B: Pod>(a: &SegArray<A>, b: &SegArray<B>) {
    assert_eq!(
        a.layout().seg_sizes,
        b.layout().seg_sizes,
        "segmented arrays must have identical segment structure"
    );
}

/// Hierarchical zip over (dst, src): calls `f(dst_seg, src_seg)` once per
/// segment with plain slices.
///
/// ```
/// use t2opt_core::prelude::*;
/// use t2opt_core::iter::seg_zip2;
/// let mut a = SegArray::<f64>::builder(100).segments(4).build();
/// let mut c = SegArray::<f64>::builder(100).segments(4).build();
/// c.fill(2.0);
/// // STREAM copy: A(:) = C(:)
/// seg_zip2(&mut a, &c, |a, c| a.copy_from_slice(c));
/// assert_eq!(a.get(57), 2.0);
/// ```
pub fn seg_zip2<T: Pod, U: Pod>(
    dst: &mut SegArray<T>,
    src: &SegArray<U>,
    mut f: impl FnMut(&mut [T], &[U]),
) {
    assert_same_structure(dst, src);
    for s in 0..dst.num_segments() {
        f(dst.segment_mut(s), src.segment(s));
    }
}

/// Hierarchical zip over (dst, src1, src2): `f(dst_seg, s1_seg, s2_seg)` per
/// segment. STREAM add/triad shape.
pub fn seg_zip3<T: Pod, U: Pod, V: Pod>(
    dst: &mut SegArray<T>,
    src1: &SegArray<U>,
    src2: &SegArray<V>,
    mut f: impl FnMut(&mut [T], &[U], &[V]),
) {
    assert_same_structure(dst, src1);
    assert_same_structure(dst, src2);
    for s in 0..dst.num_segments() {
        f(dst.segment_mut(s), src1.segment(s), src2.segment(s));
    }
}

/// Hierarchical zip over (dst, src1, src2, src3): the vector-triad shape
/// `A(:) = B(:) + C(:)*D(:)`.
pub fn seg_zip4<T: Pod, U: Pod, V: Pod, W: Pod>(
    dst: &mut SegArray<T>,
    src1: &SegArray<U>,
    src2: &SegArray<V>,
    src3: &SegArray<W>,
    mut f: impl FnMut(&mut [T], &[U], &[V], &[W]),
) {
    assert_same_structure(dst, src1);
    assert_same_structure(dst, src2);
    assert_same_structure(dst, src3);
    for s in 0..dst.num_segments() {
        f(
            dst.segment_mut(s),
            src1.segment(s),
            src2.segment(s),
            src3.segment(s),
        );
    }
}

/// A segment together with the global index of its first element — what a
/// parallel dispatcher hands to each worker.
#[derive(Debug)]
pub struct SegChunk<'a, T: Pod> {
    /// Index of this segment.
    pub segment: usize,
    /// Global index of the first element.
    pub start: usize,
    /// The segment's elements.
    pub data: &'a [T],
}

/// Iterator over [`SegChunk`]s of a segmented array.
pub struct SegChunks<'a, T: Pod> {
    arr: &'a SegArray<T>,
    seg: usize,
}

impl<'a, T: Pod> SegChunks<'a, T> {
    /// Creates the chunk iterator.
    pub fn new(arr: &'a SegArray<T>) -> Self {
        SegChunks { arr, seg: 0 }
    }
}

impl<'a, T: Pod> Iterator for SegChunks<'a, T> {
    type Item = SegChunk<'a, T>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.seg >= self.arr.num_segments() {
            return None;
        }
        let s = self.seg;
        self.seg += 1;
        Some(SegChunk {
            segment: s,
            start: self.arr.segment_start_index(s),
            data: self.arr.segment(s),
        })
    }
}

/// Hierarchical fold/inspection conveniences on [`SegArray`].
pub trait HierExt<T: Pod> {
    /// Hierarchical fold: tight inner loop per segment.
    fn hier_fold<B>(&self, init: B, f: impl FnMut(B, T) -> B) -> B;

    /// Sum of all elements (hierarchical).
    fn hier_sum(&self) -> T
    where
        T: std::ops::Add<Output = T>;

    /// Maximum absolute difference against a reference slice — the
    /// correctness metric used throughout the kernel tests.
    fn max_abs_diff(&self, reference: &[f64]) -> f64
    where
        T: Into<f64>;

    /// Element-wise iterator (the branchy kind; see [`FlatIter`]).
    fn flat_iter(&self) -> FlatIter<'_, T>;

    /// Chunk iterator pairing each segment with its global start index.
    fn chunks(&self) -> SegChunks<'_, T>;
}

impl<T: Pod> HierExt<T> for SegArray<T> {
    fn hier_fold<B>(&self, init: B, mut f: impl FnMut(B, T) -> B) -> B {
        let mut acc = init;
        for seg in self.segments() {
            for &x in seg {
                acc = f(acc, x);
            }
        }
        acc
    }

    fn hier_sum(&self) -> T
    where
        T: std::ops::Add<Output = T>,
    {
        self.hier_fold(T::default(), |a, x| a + x)
    }

    fn max_abs_diff(&self, reference: &[f64]) -> f64
    where
        T: Into<f64>,
    {
        assert_eq!(reference.len(), self.len(), "length mismatch");
        let mut worst = 0f64;
        let mut idx = 0;
        for seg in self.segments() {
            for &x in seg {
                let d = (x.into() - reference[idx]).abs();
                if d > worst {
                    worst = d;
                }
                idx += 1;
            }
        }
        worst
    }

    fn flat_iter(&self) -> FlatIter<'_, T> {
        FlatIter::new(self)
    }

    fn chunks(&self) -> SegChunks<'_, T> {
        SegChunks::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutSpec;

    fn numbered(len: usize, segs: usize) -> SegArray<f64> {
        let mut a = SegArray::<f64>::builder(len)
            .segments(segs)
            .spec(LayoutSpec::t2_rotating())
            .build();
        a.fill_with(|i| i as f64);
        a
    }

    #[test]
    fn flat_iter_visits_everything_in_order() {
        let a = numbered(101, 7);
        let v: Vec<f64> = a.flat_iter().collect();
        assert_eq!(v.len(), 101);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as f64);
        }
    }

    #[test]
    fn flat_iter_size_hint_is_exact() {
        let a = numbered(50, 3);
        let mut it = a.flat_iter();
        assert_eq!(it.size_hint(), (50, Some(50)));
        it.next();
        it.next();
        assert_eq!(it.size_hint(), (48, Some(48)));
    }

    #[test]
    fn seg_zip2_copies() {
        let src = numbered(100, 4);
        let mut dst = SegArray::<f64>::builder(100).segments(4).build();
        seg_zip2(&mut dst, &src, |d, s| d.copy_from_slice(s));
        assert_eq!(dst.to_vec(), src.to_vec());
    }

    #[test]
    fn seg_zip3_stream_triad() {
        let b = numbered(100, 4);
        let c = numbered(100, 4);
        let mut a = SegArray::<f64>::builder(100).segments(4).build();
        let scalar = 3.0;
        seg_zip3(&mut a, &b, &c, |a, b, c| {
            for i in 0..a.len() {
                a[i] = b[i] + scalar * c[i];
            }
        });
        for i in (0..100).step_by(13) {
            assert_eq!(a.get(i), i as f64 + 3.0 * i as f64);
        }
    }

    #[test]
    fn seg_zip4_vector_triad() {
        let b = numbered(64, 8);
        let c = numbered(64, 8);
        let d = numbered(64, 8);
        let mut a = SegArray::<f64>::builder(64).segments(8).build();
        seg_zip4(&mut a, &b, &c, &d, |a, b, c, d| {
            for i in 0..a.len() {
                a[i] = b[i] + c[i] * d[i];
            }
        });
        for i in 0..64 {
            let x = i as f64;
            assert_eq!(a.get(i), x + x * x);
        }
    }

    #[test]
    #[should_panic(expected = "identical segment structure")]
    fn zip_requires_same_structure() {
        let src = numbered(100, 4);
        let mut dst = SegArray::<f64>::builder(100).segments(5).build();
        seg_zip2(&mut dst, &src, |d, _s| d.fill(0.0));
    }

    #[test]
    fn hier_sum_matches_formula() {
        let a = numbered(1000, 9);
        assert_eq!(a.hier_sum(), (999.0 * 1000.0) / 2.0);
    }

    #[test]
    fn hier_fold_order_is_global_order() {
        let a = numbered(10, 3);
        let collected = a.hier_fold(Vec::new(), |mut v, x| {
            v.push(x);
            v
        });
        assert_eq!(collected, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn max_abs_diff_detects_mismatch() {
        let a = numbered(10, 2);
        let mut reference: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(a.max_abs_diff(&reference), 0.0);
        reference[7] += 0.5;
        assert_eq!(a.max_abs_diff(&reference), 0.5);
    }

    #[test]
    fn chunks_give_global_starts() {
        let a = numbered(100, 8);
        let mut expected_start = 0;
        for chunk in a.chunks() {
            assert_eq!(chunk.start, expected_start);
            assert_eq!(chunk.data[0], expected_start as f64);
            expected_start += chunk.data.len();
        }
        assert_eq!(expected_start, 100);
    }
}
