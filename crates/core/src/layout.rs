//! The four-parameter segment layout model of the paper's Fig. 3.
//!
//! A `seg_array` places `N` elements into consecutive *segments* inside one
//! allocation, under four controls:
//!
//! 1. **base alignment** — the allocation base is aligned to a boundary
//!    (`posix_memalign` style), e.g. a memory page;
//! 2. **padding** — every segment except the first is aligned to another
//!    boundary (`seg_align`) by inserting padding;
//! 3. **shift** — a constant amount of additional padding is inserted before
//!    each segment (cumulatively displacing later segments), so that the base
//!    addresses of *successive* segments are shifted against each other —
//!    "shift a segment that would be assigned to thread *t* by *t* · 128
//!    bytes";
//! 4. **offset** — finally the whole data block is shifted by some offset.
//!
//! With `seg_align = 512` and `shift = 128` (the paper's Jacobi optimum on
//! the UltraSPARC T2) segment `s` starts at byte residue `(s·128) mod 512`,
//! i.e. successive segments rotate through all four memory controllers.
//!
//! [`LayoutSpec::plan`] turns a spec plus a [`SegmentPlan`] into a concrete
//! [`SegLayout`] — pure address arithmetic, usable both to place real memory
//! ([`SegArray`](crate::seg_array::SegArray)) and to generate synthetic
//! address traces for the T2 simulator.

use crate::alloc::align_up;
use serde::{Deserialize, Serialize};

/// How the element count is split into segments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentPlan {
    /// A single segment holding everything.
    Single,
    /// `t` segments with the paper's split: the first `N mod t` segments get
    /// `⌊N/t⌋ + 1` elements, the rest `⌊N/t⌋` (§2.2: "we choose the number of
    /// segments equal to the number of OpenMP threads and do manual
    /// scheduling with segment sizes ⌊N/t⌋+1 and ⌊N/t⌋, respectively").
    Count(usize),
    /// Explicit per-segment element counts (e.g. one segment per matrix row).
    Sizes(Vec<usize>),
}

impl SegmentPlan {
    /// Resolves the plan into per-segment element counts for `len` elements.
    ///
    /// # Panics
    /// Panics if a `Count(0)` is given, or if explicit `Sizes` do not sum to
    /// `len`.
    pub fn sizes(&self, len: usize) -> Vec<usize> {
        match self {
            SegmentPlan::Single => vec![len],
            SegmentPlan::Count(t) => {
                assert!(*t > 0, "segment count must be positive");
                let t = *t;
                let base = len / t;
                let rem = len % t;
                (0..t).map(|s| base + usize::from(s < rem)).collect()
            }
            SegmentPlan::Sizes(sizes) => {
                assert_eq!(
                    sizes.iter().sum::<usize>(),
                    len,
                    "explicit segment sizes must sum to the total length"
                );
                sizes.clone()
            }
        }
    }
}

/// The four layout parameters of Fig. 3. All byte-valued; `base_align` must
/// be a power of two, `seg_align` a power of two or 0/1 for "packed".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutSpec {
    /// Allocation base alignment in bytes (power of two). Default 64
    /// (one cache line).
    pub base_align: usize,
    /// Per-segment alignment boundary in bytes; segments after the first are
    /// padded up to a multiple of this. `0` or `1` disables padding
    /// (segments are packed back to back; `0` is normalized to the canonical
    /// `1` by the [`LayoutSpec::seg_align`] setter). Default 1.
    pub seg_align: usize,
    /// Constant extra padding inserted before each segment after the first;
    /// segment `s` is displaced by `s · shift` bytes relative to its padded
    /// position. Default 0.
    pub shift: usize,
    /// Whole-block offset in bytes, applied after everything else. The block
    /// begins `block_offset` bytes past the aligned base. Default 0.
    pub block_offset: usize,
    /// NUMA page placement for the block's pages. Byte positions are
    /// unaffected — this rides along so the tuner can co-optimize affinity
    /// with the four byte-level parameters. Default first-touch (the OS
    /// default, and a no-op on single-socket chips).
    pub placement: crate::mapping::PagePlacement,
}

impl LayoutSpec {
    /// A fresh spec: 64-byte base alignment, packed segments, no shift, no
    /// offset, first-touch placement.
    pub fn new() -> Self {
        LayoutSpec {
            base_align: 64,
            seg_align: 1,
            shift: 0,
            block_offset: 0,
            placement: crate::mapping::PagePlacement::FirstTouch,
        }
    }

    /// Sets the allocation base alignment (power of two). `0` is normalized
    /// to `1` (byte alignment, i.e. no constraint) so that sweeping a
    /// parameter space that includes "unaligned" needs no special casing.
    pub fn base_align(mut self, align: usize) -> Self {
        let align = align.max(1);
        assert!(align.is_power_of_two(), "base_align must be a power of two");
        self.base_align = align;
        self
    }

    /// Sets the per-segment alignment boundary (power of two, or 0/1 to
    /// pack). `0` is normalized to `1`: both mean packed segments, and
    /// storing the canonical form keeps specs that behave identically equal
    /// (important for the autotuner's content-addressed result cache).
    pub fn seg_align(mut self, align: usize) -> Self {
        let align = align.max(1);
        assert!(
            align.is_power_of_two(),
            "seg_align must be a power of two (or 0/1 for packed)"
        );
        self.seg_align = align;
        self
    }

    /// Sets the per-segment shift in bytes.
    pub fn shift(mut self, shift: usize) -> Self {
        self.shift = shift;
        self
    }

    /// Sets the whole-block offset in bytes.
    pub fn block_offset(mut self, offset: usize) -> Self {
        self.block_offset = offset;
        self
    }

    /// Sets the NUMA page placement.
    pub fn placement(mut self, placement: crate::mapping::PagePlacement) -> Self {
        self.placement = placement;
        self
    }

    /// The paper's Jacobi optimum for the T2: every segment on a 512-byte
    /// boundary, successive segments shifted by 128 bytes so they rotate
    /// through the four memory controllers (§2.3).
    pub fn t2_rotating() -> Self {
        LayoutSpec::new().base_align(8192).seg_align(512).shift(128)
    }

    /// Computes the concrete byte layout for `len` elements of `elem_size`
    /// bytes split according to `plan`.
    pub fn plan(&self, len: usize, elem_size: usize, plan: &SegmentPlan) -> SegLayout {
        assert!(elem_size > 0, "element size must be positive");
        let sizes = plan.sizes(len);
        let pad = self.seg_align.max(1);
        let mut starts = Vec::with_capacity(sizes.len());
        // First pass: padded positions in "pre-shift" space.
        let mut cursor = 0usize;
        for (s, &n) in sizes.iter().enumerate() {
            if s > 0 && pad > 1 {
                cursor = align_up(cursor, pad);
            }
            starts.push(cursor);
            cursor += n * elem_size;
        }
        let packed_end = cursor;
        // Second pass: cumulative shift + whole-block offset.
        for (s, start) in starts.iter_mut().enumerate() {
            *start += s * self.shift + self.block_offset;
        }
        let total_bytes = match sizes.last() {
            Some(&last_n) => starts.last().unwrap() + last_n * elem_size,
            None => self.block_offset,
        };
        debug_assert!(total_bytes >= packed_end);
        SegLayout {
            spec: self.clone(),
            elem_size,
            len,
            seg_sizes: sizes,
            seg_byte_starts: starts,
            total_bytes,
        }
    }
}

impl Default for LayoutSpec {
    fn default() -> Self {
        LayoutSpec::new()
    }
}

/// A concrete byte-level placement of segments inside one allocation:
/// the output of [`LayoutSpec::plan`].
///
/// All positions are relative to the (aligned) allocation base, so the same
/// `SegLayout` can describe a host allocation or a synthetic address space
/// fed to the simulator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegLayout {
    /// The spec this layout was derived from.
    pub spec: LayoutSpec,
    /// Element size in bytes.
    pub elem_size: usize,
    /// Total element count across all segments.
    pub len: usize,
    /// Element count per segment.
    pub seg_sizes: Vec<usize>,
    /// Byte offset of each segment's first element, relative to the aligned
    /// allocation base.
    pub seg_byte_starts: Vec<usize>,
    /// Bytes needed for the whole block (including all padding/shift/offset).
    pub total_bytes: usize,
}

impl SegLayout {
    /// Number of segments.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.seg_sizes.len()
    }

    /// Byte offset of element `i` of segment `s` from the allocation base.
    #[inline]
    pub fn elem_byte_offset(&self, s: usize, i: usize) -> usize {
        debug_assert!(i < self.seg_sizes[s]);
        self.seg_byte_starts[s] + i * self.elem_size
    }

    /// Byte offset of a *global* element index (scanning segments in order).
    pub fn global_elem_byte_offset(&self, mut idx: usize) -> usize {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        for (s, &n) in self.seg_sizes.iter().enumerate() {
            if idx < n {
                return self.elem_byte_offset(s, idx);
            }
            idx -= n;
        }
        unreachable!("index checked against len");
    }

    /// (segment, local) coordinates of a global element index.
    pub fn locate(&self, mut idx: usize) -> (usize, usize) {
        assert!(
            idx < self.len,
            "index {idx} out of bounds (len {})",
            self.len
        );
        for (s, &n) in self.seg_sizes.iter().enumerate() {
            if idx < n {
                return (s, idx);
            }
            idx -= n;
        }
        unreachable!("index checked against len");
    }

    /// Checks the fundamental soundness invariants: segments are disjoint,
    /// in increasing order, inside the allocation, and cover `len` elements.
    /// Used by tests and debug assertions.
    pub fn validate(&self) {
        assert_eq!(self.seg_sizes.len(), self.seg_byte_starts.len());
        assert_eq!(self.seg_sizes.iter().sum::<usize>(), self.len);
        let mut prev_end = 0usize;
        for (s, (&start, &n)) in self
            .seg_byte_starts
            .iter()
            .zip(self.seg_sizes.iter())
            .enumerate()
        {
            assert!(
                start >= prev_end,
                "segment {s} overlaps its predecessor: start {start} < prev end {prev_end}"
            );
            let pad = self.spec.seg_align.max(1);
            if pad > 1 {
                let unshifted = start - s * self.spec.shift - self.spec.block_offset;
                if s > 0 {
                    assert_eq!(
                        unshifted % pad,
                        0,
                        "segment {s} not on its padding boundary before shift"
                    );
                }
            }
            prev_end = start + n * self.elem_size;
        }
        assert!(prev_end <= self.total_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_plan_matches_paper_split() {
        // N = 100, t = 8: ⌊N/t⌋ = 12, rem = 4 → four 13s then four 12s.
        let sizes = SegmentPlan::Count(8).sizes(100);
        assert_eq!(sizes, vec![13, 13, 13, 13, 12, 12, 12, 12]);
        assert_eq!(sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn count_plan_exact_division() {
        let sizes = SegmentPlan::Count(4).sizes(64);
        assert_eq!(sizes, vec![16; 4]);
    }

    #[test]
    fn single_plan() {
        assert_eq!(SegmentPlan::Single.sizes(42), vec![42]);
    }

    #[test]
    #[should_panic(expected = "sum to the total length")]
    fn sizes_plan_must_sum() {
        SegmentPlan::Sizes(vec![1, 2, 3]).sizes(7);
    }

    #[test]
    fn packed_layout_is_contiguous() {
        let spec = LayoutSpec::new();
        let l = spec.plan(100, 8, &SegmentPlan::Count(4));
        l.validate();
        assert_eq!(l.seg_byte_starts, vec![0, 200, 400, 600]);
        assert_eq!(l.total_bytes, 800);
    }

    #[test]
    fn seg_align_pads_each_segment() {
        let spec = LayoutSpec::new().seg_align(512);
        // 4 segments of 10 doubles = 80 bytes each; each next segment starts
        // on the next 512-byte boundary.
        let l = spec.plan(40, 8, &SegmentPlan::Count(4));
        l.validate();
        assert_eq!(l.seg_byte_starts, vec![0, 512, 1024, 1536]);
    }

    #[test]
    fn shift_rotates_controllers() {
        // The paper's Jacobi optimum: seg_align 512, shift 128 → residues
        // 0, 128, 256, 384, 0, ... mod 512 → MCs 0,1,2,3,0,...
        let spec = LayoutSpec::t2_rotating();
        let l = spec.plan(8 * 64, 8, &SegmentPlan::Count(8));
        l.validate();
        let map = crate::mapping::AddressMap::ultrasparc_t2();
        let mcs: Vec<u32> = l
            .seg_byte_starts
            .iter()
            .map(|&b| map.controller(b as u64))
            .collect();
        assert_eq!(mcs, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn block_offset_displaces_everything() {
        let spec = LayoutSpec::new().seg_align(512).block_offset(256);
        let l = spec.plan(40, 8, &SegmentPlan::Count(4));
        l.validate();
        assert_eq!(
            l.seg_byte_starts,
            vec![256, 512 + 256, 1024 + 256, 1536 + 256]
        );
    }

    #[test]
    fn global_indexing_matches_segment_indexing() {
        let spec = LayoutSpec::new().seg_align(512).shift(128);
        let l = spec.plan(100, 8, &SegmentPlan::Count(3));
        l.validate();
        let mut idx = 0;
        for s in 0..l.num_segments() {
            for i in 0..l.seg_sizes[s] {
                assert_eq!(l.global_elem_byte_offset(idx), l.elem_byte_offset(s, i));
                assert_eq!(l.locate(idx), (s, i));
                idx += 1;
            }
        }
        assert_eq!(idx, 100);
    }

    #[test]
    fn empty_plan() {
        let l = LayoutSpec::new().plan(0, 8, &SegmentPlan::Single);
        l.validate();
        assert_eq!(l.seg_sizes, vec![0]);
        assert_eq!(l.total_bytes, 0);
    }

    #[test]
    fn zero_base_align_normalizes_to_byte_alignment() {
        // `base_align(0)` used to panic (`0` is not a power of two); it now
        // means "no alignment constraint", canonicalized to 1.
        let spec = LayoutSpec::new().base_align(0);
        assert_eq!(spec.base_align, 1);
        assert_eq!(spec, LayoutSpec::new().base_align(1));
        spec.plan(100, 8, &SegmentPlan::Count(4)).validate();
    }

    #[test]
    fn zero_seg_align_normalizes_to_packed() {
        // 0 and 1 both mean packed; the setter stores the canonical 1 so
        // that behaviorally identical specs compare (and hash) equal.
        let spec = LayoutSpec::new().seg_align(0);
        assert_eq!(spec.seg_align, 1);
        assert_eq!(spec, LayoutSpec::new().seg_align(1));
        let l = spec.plan(100, 8, &SegmentPlan::Count(4));
        l.validate();
        assert_eq!(l.seg_byte_starts, vec![0, 200, 400, 600]);
    }

    #[test]
    fn proptest_regression_empty_block_with_offset() {
        // Recorded proptest shrink case (see
        // tests/proptest_core.proptest-regressions): seg_align = 0,
        // block_offset = 1, len = 0, one segment.
        let spec = LayoutSpec::new().seg_align(0).block_offset(1);
        let l = spec.plan(0, 8, &SegmentPlan::Count(1));
        l.validate();
        assert_eq!(l.seg_byte_starts, vec![1]);
        assert_eq!(l.total_bytes, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_base_align_still_rejected() {
        let _ = LayoutSpec::new().base_align(48);
    }

    #[test]
    fn shift_never_overlaps() {
        // shift displaces later segments further, so disjointness holds for
        // any parameters; validate() asserts it.
        for shift in [0, 8, 64, 128, 513] {
            for seg_align in [0, 64, 512] {
                let spec = LayoutSpec::new().seg_align(seg_align).shift(shift);
                spec.plan(1000, 8, &SegmentPlan::Count(7)).validate();
            }
        }
    }
}
