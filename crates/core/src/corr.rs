//! Rank-correlation statistics shared by every layer that cross-validates
//! one predictor against another.
//!
//! The autotuner compares the analytic advisor's ranking against simulated
//! measurements, and the `t2opt-model` validation harness compares the
//! closed-form performance model against the simulator. Both use the same
//! statistic — Spearman rank correlation with fractional (tie-averaged)
//! ranks — so it lives here, in the one crate everything depends on.

/// Spearman rank correlation between two equally long samples; `None` when
/// undefined (fewer than two points, or a constant side).
pub fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() < 2 || a.len() != b.len() {
        return None;
    }
    pearson(&ranks(a), &ranks(b))
}

/// Fractional ranks (ties share their average rank), 1-based.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&i, &j| {
        xs[i]
            .partial_cmp(&xs[j])
            .expect("rank input is finite")
            .then(i.cmp(&j))
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation coefficient; `None` when either side is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || a.len() != b.len() {
        return None;
    }
    let n = a.len() as f64;
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / n;
    let (ma, mb) = (mean(a), mean(b));
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
    let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
    if va <= 0.0 || vb <= 0.0 {
        return None;
    }
    Some(cov / (va * vb).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_handles_ties_and_degenerate_inputs() {
        assert_eq!(spearman(&[1.0], &[2.0]), None);
        assert_eq!(spearman(&[1.0, 1.0], &[1.0, 2.0]), None);
        assert_eq!(spearman(&[1.0, 2.0], &[1.0]), None);
        let s = spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
        let s = spearman(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]).unwrap();
        assert!((s + 1.0).abs() < 1e-12);
        // Ties get averaged ranks, keeping the coefficient in [-1, 1].
        let s = spearman(&[1.0, 1.0, 2.0, 3.0], &[5.0, 6.0, 7.0, 8.0]).unwrap();
        assert!(s > 0.9 && s <= 1.0);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[3.0, 1.0, 2.0]), vec![3.0, 1.0, 2.0]);
        assert_eq!(ranks(&[1.0, 1.0, 2.0]), vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn pearson_of_constant_is_undefined() {
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
        assert_eq!(pearson(&[], &[]), None);
    }
}
