//! # t2opt-core
//!
//! Data-layout control for highly threaded multi-core CPUs with multiple
//! memory controllers — the software contribution of Hager, Zeiser & Wellein,
//! *"Data Access Optimizations for Highly Threaded Multi-Core CPUs with
//! Multiple Memory Controllers"* (2008).
//!
//! On processors like the Sun UltraSPARC T2, physical addresses are mapped to
//! memory controllers by a handful of low address bits (bits 8:7 on the T2,
//! with bit 6 selecting the L2 bank). Concurrent access streams whose base
//! addresses are congruent modulo the 512-byte "super-line" therefore pile up
//! on a single controller and lose up to 4× of the achievable bandwidth.
//!
//! This crate provides the tools the paper develops to defeat that aliasing:
//!
//! * [`mapping`] — models of the address → controller/bank mapping
//!   ([`mapping::AddressMap`], [`mapping::MapPolicy`]).
//! * [`alloc`] — aligned raw allocation ([`alloc::AlignedBuf`]), the
//!   `posix_memalign` equivalent used to place arrays on exact boundaries.
//! * [`layout`] — the four-parameter layout model of the paper's Fig. 3:
//!   base *alignment*, per-segment *padding* (segment alignment), per-segment
//!   *shift*, and whole-block *offset* ([`layout::LayoutSpec`]).
//! * [`seg_array`] — [`seg_array::SegArray`], a segmented array placed
//!   according to a [`layout::LayoutSpec`]; segments can be handed out as
//!   independent mutable slices for parallel kernels.
//! * [`iter`] — segmented iterators and hierarchical algorithms in the style
//!   of Austern's *Segmented Iterators and Hierarchical Algorithms*: an outer
//!   iteration over segments and a tight inner loop over contiguous slices,
//!   so that STL-style genericity costs nothing in the kernel.
//! * [`advisor`] — the analytic layout advisor: predicts how a set of
//!   concurrent streams distributes over the memory controllers and derives
//!   optimal offsets/shifts *without trial and error* (§2.3 of the paper).
//! * [`chip`] — named chip topologies ([`chip::ChipSpec`]): the preset
//!   registry from which every higher layer (simulator, autotuner,
//!   telemetry, bench CLIs) derives its geometry instead of assuming T2.
//! * [`corr`] — rank-correlation statistics ([`corr::spearman`]) shared by
//!   every layer that cross-validates one predictor against another.
//!
//! ## Quick example
//!
//! ```
//! use t2opt_core::prelude::*;
//!
//! // Four read/write streams of a vector triad A = B + C * D, laid out with
//! // the paper's optimal byte offsets 0, 128, 256, 384 so that at any loop
//! // index all four UltraSPARC T2 memory controllers are addressed at once.
//! let map = AddressMap::ultrasparc_t2();
//! let spec = LayoutSpec::new()
//!     .base_align(8192)
//!     .block_offset(128); // applied per array below
//!
//! let a = SegArray::<f64>::builder(1 << 16).segments(8).spec(spec.clone().block_offset(0)).build();
//! let b = SegArray::<f64>::builder(1 << 16).segments(8).spec(spec.clone().block_offset(128)).build();
//! assert_ne!(map.controller(a.segment_base_addr(0) as u64),
//!            map.controller(b.segment_base_addr(0) as u64));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod advisor;
pub mod alloc;
pub mod chip;
pub mod corr;
pub mod iter;
pub mod json;
pub mod layout;
pub mod mapping;
pub mod seg_array;

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use crate::advisor::{LayoutAdvisor, StreamDesc, StreamKind};
    pub use crate::alloc::AlignedBuf;
    pub use crate::chip::ChipSpec;
    pub use crate::iter::{HierExt, SegChunks};
    pub use crate::layout::{LayoutSpec, SegmentPlan};
    pub use crate::mapping::{AddressMap, MapPolicy, PagePlacement};
    pub use crate::seg_array::{SegArray, SegArrayBuilder};
}

/// Cache line size of the UltraSPARC T2 (and virtually every modern CPU), in
/// bytes. Used as the default granularity for offsets and padding.
pub const CACHE_LINE: usize = 64;

/// The T2 "super-line": the period, in bytes, after which the
/// line → controller/bank mapping repeats (4 controllers × 2 banks × 64 B).
pub const SUPER_LINE: usize = 512;
