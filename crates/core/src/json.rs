//! Minimal JSON support shared by the workspace: serialization of any
//! `serde::Serialize` type via serde's data model, and a small
//! recursive-descent parser into [`JsonValue`] for reading results back
//! (e.g. the autotuner's persistent result cache).
//!
//! This avoids a `serde_json` dependency: only the constructs our results
//! use — objects, arrays, strings, numbers, bools, null — are supported.

use serde::Serialize;
use std::collections::BTreeMap;
use std::io::Write;

/// Serializes `data` as JSON into `path`.
pub fn write_json<T: Serialize>(path: &str, data: &T) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    let json = to_json_string(data);
    file.write_all(json.as_bytes())
}

/// Serializes `data` to a compact JSON string.
///
/// # Panics
/// Panics if the type reports a serialization error (none of the workspace
/// result types do).
pub fn to_json_string<T: Serialize>(data: &T) -> String {
    let mut ser = MiniJson { out: String::new() };
    data.serialize(&mut ser).expect("JSON serialization failed");
    ser.out
}

struct MiniJson {
    out: String,
}

/// Error type of the minimal JSON serializer.
#[derive(Debug)]
pub struct JsonErr(String);

impl std::fmt::Display for JsonErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for JsonErr {}
impl serde::ser::Error for JsonErr {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        JsonErr(msg.to_string())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

macro_rules! simple_num {
    ($($fn_name:ident: $ty:ty),* $(,)?) => {
        $(fn $fn_name(self, v: $ty) -> Result<(), JsonErr> {
            self.out.push_str(&v.to_string());
            Ok(())
        })*
    };
}

impl<'a> serde::Serializer for &'a mut MiniJson {
    type Ok = ();
    type Error = JsonErr;
    type SerializeSeq = SeqSer<'a>;
    type SerializeTuple = SeqSer<'a>;
    type SerializeTupleStruct = SeqSer<'a>;
    type SerializeTupleVariant = SeqSer<'a>;
    type SerializeMap = MapSer<'a>;
    type SerializeStruct = MapSer<'a>;
    type SerializeStructVariant = MapSer<'a>;

    simple_num! {
        serialize_i8: i8, serialize_i16: i16, serialize_i32: i32, serialize_i64: i64,
        serialize_u8: u8, serialize_u16: u16, serialize_u32: u32, serialize_u64: u64,
    }

    fn serialize_bool(self, v: bool) -> Result<(), JsonErr> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), JsonErr> {
        self.serialize_f64(v as f64)
    }

    fn serialize_f64(self, v: f64) -> Result<(), JsonErr> {
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), JsonErr> {
        self.out.push_str(&escape(&v.to_string()));
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), JsonErr> {
        self.out.push_str(&escape(v));
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), JsonErr> {
        use serde::ser::SerializeSeq;
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            seq.serialize_element(b)?;
        }
        seq.end()
    }

    fn serialize_none(self) -> Result<(), JsonErr> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), JsonErr> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), JsonErr> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonErr> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
    ) -> Result<(), JsonErr> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonErr> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonErr> {
        self.out.push('{');
        self.out.push_str(&escape(variant));
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<SeqSer<'a>, JsonErr> {
        self.out.push('[');
        Ok(SeqSer {
            ser: self,
            first: true,
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<SeqSer<'a>, JsonErr> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<SeqSer<'a>, JsonErr> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<SeqSer<'a>, JsonErr> {
        self.out.push('{');
        self.out.push_str(&escape(variant));
        self.out.push(':');
        self.serialize_seq(Some(len))
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<MapSer<'a>, JsonErr> {
        self.out.push('{');
        Ok(MapSer {
            ser: self,
            first: true,
            close_extra: false,
        })
    }

    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<MapSer<'a>, JsonErr> {
        self.serialize_map(Some(len))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _idx: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<MapSer<'a>, JsonErr> {
        self.out.push('{');
        self.out.push_str(&escape(variant));
        self.out.push(':');
        let mut m = self.serialize_map(Some(len))?;
        m.close_extra = true;
        Ok(m)
    }
}

/// Sequence serializer.
pub struct SeqSer<'a> {
    ser: &'a mut MiniJson,
    first: bool,
}

impl SeqSer<'_> {
    fn sep(&mut self) {
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
    }
}

impl serde::ser::SerializeSeq for SeqSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonErr> {
        self.sep();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonErr> {
        self.ser.out.push(']');
        Ok(())
    }
}

impl serde::ser::SerializeTuple for SeqSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonErr> {
        serde::ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonErr> {
        serde::ser::SerializeSeq::end(self)
    }
}

impl serde::ser::SerializeTupleStruct for SeqSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonErr> {
        serde::ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonErr> {
        serde::ser::SerializeSeq::end(self)
    }
}

impl serde::ser::SerializeTupleVariant for SeqSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonErr> {
        serde::ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result<(), JsonErr> {
        self.ser.out.push_str("]}");
        Ok(())
    }
}

/// Map/struct serializer.
pub struct MapSer<'a> {
    ser: &'a mut MiniJson,
    first: bool,
    close_extra: bool,
}

impl MapSer<'_> {
    fn sep(&mut self) {
        if !self.first {
            self.ser.out.push(',');
        }
        self.first = false;
    }
}

impl serde::ser::SerializeMap for MapSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), JsonErr> {
        self.sep();
        // Keys must serialize as strings; serialize into a scratch buffer
        // and quote if the result isn't already a string.
        let mut scratch = MiniJson { out: String::new() };
        key.serialize(&mut scratch)?;
        if scratch.out.starts_with('"') {
            self.ser.out.push_str(&scratch.out);
        } else {
            self.ser.out.push_str(&escape(&scratch.out));
        }
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonErr> {
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result<(), JsonErr> {
        self.ser.out.push('}');
        if self.close_extra {
            self.ser.out.push('}');
        }
        Ok(())
    }
}

impl serde::ser::SerializeStruct for MapSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonErr> {
        serde::ser::SerializeMap::serialize_key(self, key)?;
        serde::ser::SerializeMap::serialize_value(self, value)
    }
    fn end(self) -> Result<(), JsonErr> {
        serde::ser::SerializeMap::end(self)
    }
}

impl serde::ser::SerializeStructVariant for MapSer<'_> {
    type Ok = ();
    type Error = JsonErr;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonErr> {
        serde::ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result<(), JsonErr> {
        serde::ser::SerializeStruct::end(self)
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as f64, which covers every value this
    /// workspace writes).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, with keys in sorted order.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object map, if this value is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The numeric value, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this value is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses a JSON document.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonErr> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonErr(format!("trailing garbage at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonErr> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonErr(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonErr> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') if self.literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(JsonErr(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonErr> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => {
                    return Err(JsonErr(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonErr> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(JsonErr(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonErr> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonErr("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonErr("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| JsonErr("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| JsonErr("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonErr("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(JsonErr(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8 by
                    // construction of &str).
                    let s = &self.bytes[self.pos..];
                    let ch_len = match s[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    out.push_str(std::str::from_utf8(&s[..ch_len]).unwrap());
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonErr> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| JsonErr(format!("bad number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Row {
        n: usize,
        gbs: f64,
        label: String,
        flag: bool,
        opt: Option<u32>,
    }

    #[test]
    fn json_round_trippable_shape() {
        let row = Row {
            n: 42,
            gbs: 12.5,
            label: "tri\"ad".into(),
            flag: true,
            opt: None,
        };
        let json = to_json_string(&row);
        assert_eq!(
            json,
            r#"{"n":42,"gbs":12.5,"label":"tri\"ad","flag":true,"opt":null}"#
        );
    }

    #[test]
    fn json_vec_of_structs() {
        #[derive(Serialize)]
        struct P {
            x: u32,
        }
        let json = to_json_string(&vec![P { x: 1 }, P { x: 2 }]);
        assert_eq!(json, r#"[{"x":1},{"x":2}]"#);
    }

    #[test]
    fn json_enum_variants() {
        #[derive(Serialize)]
        enum E {
            Unit,
            Tuple(u32, u32),
            Struct { a: u32 },
        }
        assert_eq!(to_json_string(&E::Unit), r#""Unit""#);
        assert_eq!(to_json_string(&E::Tuple(1, 2)), r#"{"Tuple":[1,2]}"#);
        assert_eq!(to_json_string(&E::Struct { a: 3 }), r#"{"Struct":{"a":3}}"#);
    }

    #[test]
    fn json_nested_map() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert("a", vec![1u32, 2]);
        m.insert("b", vec![]);
        assert_eq!(to_json_string(&m), r#"{"a":[1,2],"b":[]}"#);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("-1.5e2").unwrap(), JsonValue::Number(-150.0));
        assert_eq!(
            parse_json(r#""a\nbA""#).unwrap(),
            JsonValue::String("a\nbA".into())
        );
    }

    #[test]
    fn parse_nested() {
        let v = parse_json(r#"{"a": [1, 2, {"b": "x"}], "c": {}}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj["a"].as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].as_object().unwrap()["b"].as_str(), Some("x"));
        assert!(obj["c"].as_object().unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn serializer_output_parses_back() {
        let row = Row {
            n: 7,
            gbs: 3.25,
            label: "stream \"x\"\n".into(),
            flag: false,
            opt: Some(9),
        };
        let parsed = parse_json(&to_json_string(&row)).unwrap();
        let obj = parsed.as_object().unwrap();
        assert_eq!(obj["n"].as_f64(), Some(7.0));
        assert_eq!(obj["gbs"].as_f64(), Some(3.25));
        assert_eq!(obj["label"].as_str(), Some("stream \"x\"\n"));
        assert_eq!(obj["flag"], JsonValue::Bool(false));
        assert_eq!(obj["opt"].as_f64(), Some(9.0));
    }
}
