//! Address → memory-controller / L2-bank mapping models.
//!
//! The Sun UltraSPARC T2 employs "a very simple scheme to map addresses to
//! controllers and banks: bits 8 and 7 of the physical memory address select
//! the memory controller to use, while bit 6 determines the L2 bank"
//! (Hager et al. 2008, §1). Consecutive 64-byte cache lines are thus served
//! in turn by consecutive cache banks and memory controllers, with the whole
//! mapping repeating every 512 bytes.
//!
//! [`AddressMap`] captures that bit-sliced interleave in a configurable way;
//! [`MapPolicy`] adds alternative mappings used by the ablation studies
//! (XOR-folded hashing, page-granular interleave).

use serde::{Deserialize, Serialize};

/// A bit-sliced interleave map from byte addresses to memory controllers and
/// cache banks.
///
/// The default [`AddressMap::ultrasparc_t2`] instance reproduces the T2:
/// 64-byte lines, controller = bits 8:7, bank-within-controller = bit 6
/// (so the *global* bank index is bits 8:6 — eight banks, two per controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    /// log2 of the cache line size in bytes (6 on the T2 → 64 B lines).
    pub line_bits: u32,
    /// Lowest bit of the controller-select field (7 on the T2).
    pub mc_lo_bit: u32,
    /// Number of controller-select bits (2 on the T2 → 4 controllers).
    pub mc_bits: u32,
    /// Lowest bit of the bank-select field *within* a controller
    /// (6 on the T2).
    pub bank_lo_bit: u32,
    /// Number of bank-select bits per controller (1 on the T2 → 2 banks per
    /// controller, 8 global banks).
    pub bank_bits: u32,
}

impl AddressMap {
    /// The UltraSPARC T2 mapping: line 64 B, controller = bits 8:7,
    /// bank = bit 6.
    pub const fn ultrasparc_t2() -> Self {
        AddressMap {
            line_bits: 6,
            mc_lo_bit: 7,
            mc_bits: 2,
            bank_lo_bit: 6,
            bank_bits: 1,
        }
    }

    /// Cache line size in bytes.
    #[inline]
    pub const fn line_size(&self) -> u64 {
        1 << self.line_bits
    }

    /// Number of memory controllers.
    #[inline]
    pub const fn num_controllers(&self) -> u32 {
        1 << self.mc_bits
    }

    /// Number of L2 banks per controller.
    #[inline]
    pub const fn banks_per_controller(&self) -> u32 {
        1 << self.bank_bits
    }

    /// Total number of L2 banks.
    #[inline]
    pub const fn num_banks(&self) -> u32 {
        1 << (self.bank_bits + self.mc_bits)
    }

    /// The period, in bytes, after which the mapping repeats
    /// (512 B on the T2).
    #[inline]
    pub const fn super_line(&self) -> u64 {
        1 << (self.mc_lo_bit + self.mc_bits)
    }

    /// Memory controller serving `addr`.
    #[inline]
    pub const fn controller(&self, addr: u64) -> u32 {
        ((addr >> self.mc_lo_bit) & ((1 << self.mc_bits) - 1)) as u32
    }

    /// Bank index *within* the controller serving `addr`.
    #[inline]
    pub const fn local_bank(&self, addr: u64) -> u32 {
        ((addr >> self.bank_lo_bit) & ((1 << self.bank_bits) - 1)) as u32
    }

    /// Global L2 bank index of `addr` (controller-major).
    #[inline]
    pub const fn bank(&self, addr: u64) -> u32 {
        self.controller(addr) * self.banks_per_controller() + self.local_bank(addr)
    }

    /// Index of the cache line containing `addr`.
    #[inline]
    pub const fn line_index(&self, addr: u64) -> u64 {
        addr >> self.line_bits
    }

    /// Base address of the cache line containing `addr`.
    #[inline]
    pub const fn line_base(&self, addr: u64) -> u64 {
        addr & !((1 << self.line_bits) - 1)
    }
}

impl Default for AddressMap {
    fn default() -> Self {
        AddressMap::ultrasparc_t2()
    }
}

/// Controller-selection policy. [`MapPolicy::Sliced`] is the real T2;
/// the other variants exist for ablation experiments ("what would a less
/// aliasing-prone controller hash have done?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapPolicy {
    /// Plain bit-sliced interleave, exactly as on the T2.
    Sliced(AddressMap),
    /// Bit-sliced interleave whose controller bits are XOR-folded with
    /// higher address bits, destroying the simple congruence classes that
    /// cause stream aliasing (the classic "XOR bank hash" used by several
    /// later designs).
    XorFold {
        /// Underlying sliced map supplying geometry (line size, counts).
        base: AddressMap,
        /// How many higher `mc_bits`-wide fields get folded in.
        folds: u32,
    },
    /// Page-granular interleave: controller = (addr / page) mod n_mc. This
    /// turns fine-grained aliasing into coarse page-placement effects.
    PageInterleave {
        /// Underlying sliced map supplying geometry.
        base: AddressMap,
        /// Interleave granularity in bytes (e.g. 4096).
        page: u64,
    },
}

impl MapPolicy {
    /// The real T2 policy.
    pub const fn t2() -> Self {
        MapPolicy::Sliced(AddressMap::ultrasparc_t2())
    }

    /// The period, in bytes, at which controller selection repeats for the
    /// purposes of data layout — the policy-aware generalization of
    /// [`AddressMap::super_line`].
    ///
    /// * [`MapPolicy::Sliced`]: the geometric super-line (512 B on the T2).
    /// * [`MapPolicy::XorFold`]: the exact period is `super_line <<
    ///   (folds · mc_bits)` — astronomically large for realistic folds and
    ///   useless as a layout granularity. The low `mc`-field residues are
    ///   still the classes a layout can steer, so the super-line is kept as
    ///   the practical period.
    /// * [`MapPolicy::PageInterleave`]: `page × num_controllers` — offsets
    ///   below one page never change controllers, so layout advice must
    ///   operate at page granularity.
    #[inline]
    pub const fn interleave_period(&self) -> u64 {
        match self {
            MapPolicy::Sliced(m) => m.super_line(),
            MapPolicy::XorFold { base, .. } => base.super_line(),
            MapPolicy::PageInterleave { base, page } => *page * base.num_controllers() as u64,
        }
    }

    /// Geometry of the underlying map.
    #[inline]
    pub const fn geometry(&self) -> &AddressMap {
        match self {
            MapPolicy::Sliced(m) => m,
            MapPolicy::XorFold { base, .. } => base,
            MapPolicy::PageInterleave { base, .. } => base,
        }
    }

    /// Memory controller serving `addr` under this policy.
    #[inline]
    pub fn controller(&self, addr: u64) -> u32 {
        match *self {
            MapPolicy::Sliced(m) => m.controller(addr),
            MapPolicy::XorFold { base, folds } => {
                let mask = (1u64 << base.mc_bits) - 1;
                let mut sel = (addr >> base.mc_lo_bit) & mask;
                let mut bit = base.mc_lo_bit + base.mc_bits;
                for _ in 0..folds {
                    sel ^= (addr >> bit) & mask;
                    bit += base.mc_bits;
                }
                sel as u32
            }
            MapPolicy::PageInterleave { base, page } => {
                ((addr / page) % base.num_controllers() as u64) as u32
            }
        }
    }

    /// Global L2 bank of `addr` under this policy. Bank selection follows the
    /// controller selection so that banks stay associated with controllers.
    #[inline]
    pub fn bank(&self, addr: u64) -> u32 {
        let g = self.geometry();
        self.controller(addr) * g.banks_per_controller() + g.local_bank(addr)
    }
}

impl Default for MapPolicy {
    fn default() -> Self {
        MapPolicy::t2()
    }
}

/// OS page-placement policy on a multi-socket machine: which socket a
/// page's backing memory lives on. On a single socket every policy is the
/// identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PagePlacement {
    /// The page lives on the socket of the thread that touched it first —
    /// the default policy of every mainstream OS, and the locality-optimal
    /// one for socket-partitioned streams.
    #[default]
    FirstTouch,
    /// Pages round-robin over sockets (`page_index mod n_sockets`),
    /// trading peak local bandwidth for uniformity: a fraction
    /// `(S-1)/S` of all lines crosses the inter-socket link.
    Interleave,
    /// Adversarial placement: every page lands one socket away from its
    /// first toucher. This is Bergstrom's all-remote STREAM configuration
    /// — the far end of the local/remote bandwidth gap — and the
    /// wrong-socket baseline the advisor must beat.
    Remote,
}

impl PagePlacement {
    /// All placements, in the order the tuner's placement axis uses.
    pub const ALL: [PagePlacement; 3] = [
        PagePlacement::FirstTouch,
        PagePlacement::Interleave,
        PagePlacement::Remote,
    ];

    /// Stable lower-case label (CLI/JSON spelling).
    pub fn label(&self) -> &'static str {
        match self {
            PagePlacement::FirstTouch => "first-touch",
            PagePlacement::Interleave => "interleave",
            PagePlacement::Remote => "remote",
        }
    }

    /// Parses a [`PagePlacement::label`] spelling.
    pub fn parse(s: &str) -> Option<Self> {
        PagePlacement::ALL.into_iter().find(|p| p.label() == s)
    }

    /// The fraction of lines that cross the inter-socket link under this
    /// placement when every thread streams through its own data, assuming
    /// balanced sockets. First touch is fully local; interleave spreads
    /// pages uniformly so `(S-1)/S` of them are remote to any one thread;
    /// remote placement is remote by construction.
    pub fn remote_fraction(&self, n_sockets: usize) -> f64 {
        if n_sockets <= 1 {
            return 0.0;
        }
        match self {
            PagePlacement::FirstTouch => 0.0,
            PagePlacement::Interleave => (n_sockets - 1) as f64 / n_sockets as f64,
            PagePlacement::Remote => 1.0,
        }
    }
}

/// One recorded first access to a page: who touched it, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTouch {
    /// Page index (`addr / page_bytes`).
    pub page: u64,
    /// Touching thread id.
    pub thread: u32,
    /// Touch time (simulator cycles or any monotone stamp).
    pub time: u64,
}

/// The pure first-touch page-placement model: given *all* recorded touches
/// of a run, assigns each page a home socket. The winner per page is the
/// earliest touch, ties broken by the lowest thread id — so the assignment
/// is a function of the touch *set*, deterministic under any permutation
/// of the input order (the property `tests/proptest_numa.rs` pins).
///
/// `thread_socket` maps a thread id to its socket.
pub fn first_touch_homes(
    touches: &[PageTouch],
    n_sockets: usize,
    thread_socket: impl Fn(u32) -> usize,
) -> std::collections::BTreeMap<u64, usize> {
    let mut winner: std::collections::BTreeMap<u64, (u64, u32)> = std::collections::BTreeMap::new();
    for t in touches {
        let cand = (t.time, t.thread);
        winner
            .entry(t.page)
            .and_modify(|w| {
                if cand < *w {
                    *w = cand;
                }
            })
            .or_insert(cand);
    }
    winner
        .into_iter()
        .map(|(page, (_, thread))| (page, thread_socket(thread).min(n_sockets - 1)))
        .collect()
}

/// Incremental page → home-socket table, the engine-facing counterpart of
/// [`first_touch_homes`]: pages are resolved in access order (the
/// simulator is deterministic, so "first access wins" is well-defined
/// there). `Interleave` needs no state; the other policies memoize the
/// first toucher's verdict.
#[derive(Debug, Clone)]
pub struct PageHomes {
    placement: PagePlacement,
    n_sockets: usize,
    page_shift: u32,
    homes: std::collections::HashMap<u64, u32>,
}

impl PageHomes {
    /// A table for `n_sockets` sockets and `page_bytes`-sized pages
    /// (rounded to a power of two shift).
    pub fn new(placement: PagePlacement, n_sockets: usize, page_bytes: u64) -> Self {
        assert!(n_sockets >= 1, "need at least one socket");
        let page_shift = page_bytes.max(1).next_power_of_two().trailing_zeros();
        PageHomes {
            placement,
            n_sockets,
            page_shift,
            homes: std::collections::HashMap::new(),
        }
    }

    /// The home socket of the page containing `addr`, resolving it on
    /// first touch by `toucher_socket`.
    #[inline]
    pub fn home(&mut self, addr: u64, toucher_socket: u32) -> u32 {
        if self.n_sockets == 1 {
            return 0;
        }
        let page = addr >> self.page_shift;
        match self.placement {
            PagePlacement::Interleave => (page % self.n_sockets as u64) as u32,
            PagePlacement::FirstTouch => *self.homes.entry(page).or_insert(toucher_socket),
            PagePlacement::Remote => *self
                .homes
                .entry(page)
                .or_insert((toucher_socket + 1) % self.n_sockets as u32),
        }
    }

    /// Number of distinct pages resolved so far (0 for `Interleave`).
    pub fn resolved_pages(&self) -> usize {
        self.homes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t2_constants() {
        let m = AddressMap::ultrasparc_t2();
        assert_eq!(m.line_size(), 64);
        assert_eq!(m.num_controllers(), 4);
        assert_eq!(m.banks_per_controller(), 2);
        assert_eq!(m.num_banks(), 8);
        assert_eq!(m.super_line(), 512);
    }

    #[test]
    fn consecutive_lines_rotate_banks_then_controllers() {
        // §1: "Consecutive 64-byte cache lines are thus served in turn by
        // consecutive cache banks and memory controllers."
        let m = AddressMap::ultrasparc_t2();
        let banks: Vec<u32> = (0..8).map(|i| m.bank(i * 64)).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mcs: Vec<u32> = (0..8).map(|i| m.controller(i * 64)).collect();
        assert_eq!(mcs, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn mapping_is_periodic_with_super_line() {
        let m = AddressMap::ultrasparc_t2();
        for addr in (0..4096u64).step_by(8) {
            assert_eq!(m.controller(addr), m.controller(addr + 512));
            assert_eq!(m.bank(addr), m.bank(addr + 512));
        }
    }

    #[test]
    fn offset_512_bytes_same_controller() {
        // The Fig. 2 pathology: base addresses congruent mod 512 B share a
        // controller.
        let m = AddressMap::ultrasparc_t2();
        let a = 0x1000_0000u64;
        let b = a + 64 * 8; // offset of 64 DP words = 512 B
        assert_eq!(m.controller(a), m.controller(b));
        // Odd multiple of 32 DP words (256 B) flips bit 8 → different MC.
        let c = a + 32 * 8;
        assert_ne!(m.controller(a), m.controller(c));
    }

    #[test]
    fn line_arithmetic() {
        let m = AddressMap::ultrasparc_t2();
        assert_eq!(m.line_index(0), 0);
        assert_eq!(m.line_index(63), 0);
        assert_eq!(m.line_index(64), 1);
        assert_eq!(m.line_base(130), 128);
    }

    #[test]
    fn xor_fold_breaks_congruence() {
        // Two addresses 512 B apart map to the same MC under the sliced
        // policy but (for suitable high bits) not under XOR folding.
        let sliced = MapPolicy::t2();
        let folded = MapPolicy::XorFold {
            base: AddressMap::ultrasparc_t2(),
            folds: 4,
        };
        let a = 0x1000_0000u64;
        let mut diverged = false;
        for k in 1..64u64 {
            let b = a + k * 512;
            assert_eq!(sliced.controller(a), sliced.controller(b));
            if folded.controller(a) != folded.controller(b) {
                diverged = true;
            }
        }
        assert!(diverged, "XOR fold should break the 512 B congruence class");
    }

    #[test]
    fn page_interleave_constant_within_page() {
        let p = MapPolicy::PageInterleave {
            base: AddressMap::ultrasparc_t2(),
            page: 4096,
        };
        let base = 7 * 4096u64;
        let mc = p.controller(base);
        for off in (0..4096).step_by(64) {
            assert_eq!(p.controller(base + off), mc);
        }
        assert_ne!(p.controller(base), p.controller(base + 4096));
    }

    #[test]
    fn interleave_period_tracks_the_policy() {
        assert_eq!(MapPolicy::t2().interleave_period(), 512);
        let folded = MapPolicy::XorFold {
            base: AddressMap::ultrasparc_t2(),
            folds: 4,
        };
        assert_eq!(folded.interleave_period(), 512);
        let paged = MapPolicy::PageInterleave {
            base: AddressMap::ultrasparc_t2(),
            page: 4096,
        };
        assert_eq!(paged.interleave_period(), 4096 * 4);
        // Controller selection genuinely repeats with that period.
        for addr in (0..paged.interleave_period()).step_by(64) {
            assert_eq!(
                paged.controller(addr),
                paged.controller(addr + paged.interleave_period())
            );
        }
    }

    #[test]
    fn first_touch_homes_pick_earliest_touch_lowest_thread() {
        let touches = [
            PageTouch {
                page: 0,
                thread: 5,
                time: 10,
            },
            PageTouch {
                page: 0,
                thread: 1,
                time: 10,
            }, // tie → lower thread
            PageTouch {
                page: 1,
                thread: 7,
                time: 3,
            },
            PageTouch {
                page: 1,
                thread: 0,
                time: 4,
            }, // later → loses
        ];
        let homes = first_touch_homes(&touches, 2, |t| (t / 4) as usize);
        assert_eq!(homes[&0], 0, "thread 1 wins the tie and lives on socket 0");
        assert_eq!(homes[&1], 1, "thread 7 touched first and lives on socket 1");
    }

    #[test]
    fn page_homes_policies_resolve_as_documented() {
        let mut ft = PageHomes::new(PagePlacement::FirstTouch, 2, 4096);
        assert_eq!(ft.home(0, 1), 1);
        assert_eq!(ft.home(64, 0), 1, "same page keeps its first home");
        assert_eq!(ft.home(4096, 0), 0);
        assert_eq!(ft.resolved_pages(), 2);

        let mut il = PageHomes::new(PagePlacement::Interleave, 2, 4096);
        assert_eq!(il.home(0, 1), 0);
        assert_eq!(il.home(4096, 1), 1);
        assert_eq!(il.resolved_pages(), 0, "interleave is stateless");

        let mut rm = PageHomes::new(PagePlacement::Remote, 2, 4096);
        assert_eq!(rm.home(0, 0), 1, "remote places one socket away");
        assert_eq!(rm.home(0, 1), 1, "…and sticks");

        let mut single = PageHomes::new(PagePlacement::Remote, 1, 4096);
        assert_eq!(single.home(0, 0), 0, "one socket: everything is local");
    }

    #[test]
    fn placement_labels_round_trip_and_remote_fractions_bound() {
        for p in PagePlacement::ALL {
            assert_eq!(PagePlacement::parse(p.label()), Some(p));
            assert_eq!(p.remote_fraction(1), 0.0);
            let f = p.remote_fraction(4);
            assert!((0.0..=1.0).contains(&f));
        }
        assert_eq!(PagePlacement::FirstTouch.remote_fraction(4), 0.0);
        assert_eq!(PagePlacement::Remote.remote_fraction(4), 1.0);
        assert!((PagePlacement::Interleave.remote_fraction(4) - 0.75).abs() < 1e-12);
        assert_eq!(PagePlacement::parse("nope"), None);
    }

    #[test]
    fn xor_fold_uniform_over_all_controllers() {
        let folded = MapPolicy::XorFold {
            base: AddressMap::ultrasparc_t2(),
            folds: 4,
        };
        let mut counts = [0usize; 4];
        for line in 0..4096u64 {
            counts[folded.controller(line * 64) as usize] += 1;
        }
        for c in counts {
            assert_eq!(c, 1024, "XOR fold must remain a balanced hash");
        }
    }
}
