//! Store-level counters: hits, misses, log appends, compactions, and an
//! optional shard-lock wait-time histogram.
//!
//! The counters are plain relaxed atomics owned by the store (the
//! telemetry [`Sink`]'s counters are add-only and shared, so they cannot
//! back a resettable hit/miss pair). [`StoreMetrics::publish`] mirrors
//! the totals into a `Sink` by **setting** the sink counters to the
//! store's current totals: publishing is idempotent, so any number of
//! concurrent or repeated publishes (a Prometheus scrape racing a JSON
//! scrape, say) leaves the sink exactly at the authoritative totals —
//! where the old delta-push scheme could double count under racing
//! publishers.

use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use t2opt_telemetry::metrics::{Histogram, HistogramSnapshot, Sink};

/// Monotone counters for one [`crate::Store`].
#[derive(Debug, Default)]
pub struct StoreMetrics {
    hits: AtomicU64,
    misses: AtomicU64,
    appends: AtomicU64,
    compactions: AtomicU64,
    // Shard-lock acquisition wait, microseconds. Recording is gated by
    // `lock_timing` because it needs two `Instant::now()` calls per
    // access — cheap, but not free like the counters.
    lock_wait_us: Histogram,
    lock_timing: AtomicBool,
}

/// Point-in-time copy of the counters plus occupancy, serializable into
/// `/metrics` responses and bench envelopes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StoreSnapshot {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Records appended to shard logs (or dirtied in snapshot-only modes).
    pub appends: u64,
    /// Shard compactions performed.
    pub compactions: u64,
    /// Total entries across all shards.
    pub entries: usize,
    /// Entries per shard, indexed by shard number.
    pub shard_occupancy: Vec<usize>,
}

impl StoreMetrics {
    /// Records a lookup that found its key.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a lookup that missed.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one appended (or dirtied) entry write.
    pub fn append(&self) {
        self.appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one shard compaction.
    pub fn compaction(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Lookups answered from the store since the last reset.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed since the last reset.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Records appended since the store was opened.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Compactions performed since the store was opened.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Zeroes the hit/miss counters (append/compaction totals describe the
    /// store's whole life and are left alone).
    pub fn reset_hit_miss(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Turns shard-lock wait timing on or off (off by default).
    pub fn set_lock_timing(&self, on: bool) {
        self.lock_timing.store(on, Ordering::Relaxed);
    }

    /// Whether shard-lock wait timing is on (one relaxed load — this is
    /// the store's whole overhead when timing is off).
    #[inline]
    pub fn lock_timing(&self) -> bool {
        self.lock_timing.load(Ordering::Relaxed)
    }

    /// Records one shard-lock acquisition wait (call only when
    /// [`StoreMetrics::lock_timing`] is on).
    #[inline]
    pub fn record_lock_wait(&self, us: u64) {
        self.lock_wait_us.record(us);
    }

    /// Snapshot of the shard-lock wait histogram (microseconds).
    pub fn lock_wait(&self) -> HistogramSnapshot {
        self.lock_wait_us.snapshot()
    }

    /// Mirrors the counters into a telemetry [`Sink`] under the `store.*`
    /// namespace by setting each sink counter to the store's current
    /// total. Idempotent: concurrent or repeated publishes all converge
    /// on the authoritative totals, never double counting.
    pub fn publish(&self, sink: &Sink) {
        sink.counter("store.hits").set(self.hits());
        sink.counter("store.misses").set(self.misses());
        sink.counter("store.appends").set(self.appends());
        sink.counter("store.compactions").set(self.compactions());
    }

    /// Snapshot with the given occupancy vector (the store supplies it —
    /// the counters alone do not know the shard layout).
    pub fn snapshot(&self, shard_occupancy: Vec<usize>) -> StoreSnapshot {
        StoreSnapshot {
            hits: self.hits(),
            misses: self.misses(),
            appends: self.appends(),
            compactions: self.compactions(),
            entries: shard_occupancy.iter().sum(),
            shard_occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = StoreMetrics::default();
        m.hit();
        m.hit();
        m.miss();
        m.append();
        m.compaction();
        assert_eq!((m.hits(), m.misses()), (2, 1));
        assert_eq!((m.appends(), m.compactions()), (1, 1));
        m.reset_hit_miss();
        assert_eq!((m.hits(), m.misses()), (0, 0));
        assert_eq!(m.appends(), 1, "append total survives a counter reset");
    }

    #[test]
    fn publish_is_idempotent_set_to_current() {
        let m = StoreMetrics::default();
        let sink = Sink::enabled();
        m.hit();
        m.publish(&sink);
        m.hit();
        m.hit();
        // Repeated publishes (e.g. a Prometheus scrape racing a JSON
        // scrape) must converge on the totals, never accumulate.
        m.publish(&sink);
        m.publish(&sink);
        m.publish(&sink);
        assert_eq!(sink.counter("store.hits").get(), 3);
        m.miss();
        m.publish(&sink);
        assert_eq!(sink.counter("store.hits").get(), 3);
        assert_eq!(sink.counter("store.misses").get(), 1);
    }

    #[test]
    fn concurrent_publishes_converge_on_totals() {
        use std::sync::Arc;
        let m = Arc::new(StoreMetrics::default());
        let sink = Sink::enabled();
        for _ in 0..100 {
            m.hit();
        }
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        m.publish(&sink);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sink.counter("store.hits").get(), 100);
    }

    #[test]
    fn lock_wait_histogram_is_gated() {
        let m = StoreMetrics::default();
        assert!(!m.lock_timing(), "timing starts off");
        m.set_lock_timing(true);
        m.record_lock_wait(5);
        m.record_lock_wait(300);
        let snap = m.lock_wait();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 305);
    }

    #[test]
    fn snapshot_sums_occupancy() {
        let m = StoreMetrics::default();
        m.miss();
        let snap = m.snapshot(vec![2, 0, 3]);
        assert_eq!(snap.entries, 5);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.shard_occupancy, vec![2, 0, 3]);
    }
}
