//! Store-level counters: hits, misses, log appends, compactions.
//!
//! The counters are plain relaxed atomics owned by the store (the
//! telemetry [`Sink`]'s counters are add-only and shared, so they cannot
//! back a resettable hit/miss pair). [`StoreMetrics::publish`] pushes the
//! totals into a `Sink` as deltas, so repeated publishes never double
//! count and external telemetry consumers see the same monotone counters
//! they get from every other subsystem.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use t2opt_telemetry::metrics::Sink;

/// Monotone counters for one [`crate::Store`].
#[derive(Debug, Default)]
pub struct StoreMetrics {
    hits: AtomicU64,
    misses: AtomicU64,
    appends: AtomicU64,
    compactions: AtomicU64,
    // Totals already pushed to a Sink, so publish() adds only the delta.
    published: [AtomicU64; 4],
}

/// Point-in-time copy of the counters plus occupancy, serializable into
/// `/metrics` responses and bench envelopes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StoreSnapshot {
    /// Lookups answered from the store.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Records appended to shard logs (or dirtied in snapshot-only modes).
    pub appends: u64,
    /// Shard compactions performed.
    pub compactions: u64,
    /// Total entries across all shards.
    pub entries: usize,
    /// Entries per shard, indexed by shard number.
    pub shard_occupancy: Vec<usize>,
}

impl StoreMetrics {
    /// Records a lookup that found its key.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a lookup that missed.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one appended (or dirtied) entry write.
    pub fn append(&self) {
        self.appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one shard compaction.
    pub fn compaction(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Lookups answered from the store since the last reset.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed since the last reset.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Records appended since the store was opened.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Compactions performed since the store was opened.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Zeroes the hit/miss counters (append/compaction totals describe the
    /// store's whole life and are left alone).
    pub fn reset_hit_miss(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Pushes the counters into a telemetry [`Sink`] under the `store.*`
    /// namespace. Only the delta since the previous publish is added, so
    /// calling this periodically (or once at shutdown) yields correct
    /// monotone sink counters either way.
    pub fn publish(&self, sink: &Sink) {
        let pairs = [
            ("store.hits", &self.hits),
            ("store.misses", &self.misses),
            ("store.appends", &self.appends),
            ("store.compactions", &self.compactions),
        ];
        for (i, (name, total)) in pairs.iter().enumerate() {
            let current = total.load(Ordering::Relaxed);
            let previous = self.published[i].swap(current, Ordering::Relaxed);
            sink.counter(name).add(current.saturating_sub(previous));
        }
    }

    /// Snapshot with the given occupancy vector (the store supplies it —
    /// the counters alone do not know the shard layout).
    pub fn snapshot(&self, shard_occupancy: Vec<usize>) -> StoreSnapshot {
        StoreSnapshot {
            hits: self.hits(),
            misses: self.misses(),
            appends: self.appends(),
            compactions: self.compactions(),
            entries: shard_occupancy.iter().sum(),
            shard_occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = StoreMetrics::default();
        m.hit();
        m.hit();
        m.miss();
        m.append();
        m.compaction();
        assert_eq!((m.hits(), m.misses()), (2, 1));
        assert_eq!((m.appends(), m.compactions()), (1, 1));
        m.reset_hit_miss();
        assert_eq!((m.hits(), m.misses()), (0, 0));
        assert_eq!(m.appends(), 1, "append total survives a counter reset");
    }

    #[test]
    fn publish_pushes_deltas_not_totals() {
        let m = StoreMetrics::default();
        let sink = Sink::enabled();
        m.hit();
        m.publish(&sink);
        m.hit();
        m.hit();
        m.publish(&sink);
        m.publish(&sink);
        assert_eq!(sink.counter("store.hits").get(), 3);
    }

    #[test]
    fn snapshot_sums_occupancy() {
        let m = StoreMetrics::default();
        m.miss();
        let snap = m.snapshot(vec![2, 0, 3]);
        assert_eq!(snap.entries, 5);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.shard_occupancy, vec![2, 0, 3]);
    }
}
