//! On-disk codecs: the v2 single-file snapshot format inherited from the
//! autotuner's `ResultCache`, and the JSON-lines append-log record.
//!
//! The snapshot format is byte-compatible with what `ResultCache::save`
//! has always written, so existing cache files keep loading and files
//! written through the store keep loading in old checkouts:
//!
//! ```json
//! {"version":2,"entries":{"89ab…":12.5},"meta":{"89ab…":{"tag":"triad",…}}}
//! ```
//!
//! Version-1 files (no `meta` side-table) still parse; their entries simply
//! carry no transfer metadata. The append log is one JSON object per line —
//! `{"key":"…","gbs":12.5,"meta":{…}}` — replayed over the snapshot on
//! open. A torn final line (the crash case an append-only log exists for)
//! is discarded, never an error.

use crate::{Entry, TrialMeta};
use std::collections::BTreeMap;
use t2opt_core::json::{parse_json, to_json_string, JsonValue};
use t2opt_core::layout::LayoutSpec;

/// Snapshot format version; bump when the entry semantics change in a way
/// that invalidates old measurements.
pub const FORMAT_VERSION: f64 = 2.0;

/// Serializes a shard's entries as a v2 snapshot document.
pub fn snapshot_to_string(entries: &BTreeMap<String, Entry>) -> String {
    let values: BTreeMap<&str, f64> = entries.iter().map(|(k, e)| (k.as_str(), e.gbs)).collect();
    let meta: BTreeMap<&str, &TrialMeta> = entries
        .iter()
        .filter_map(|(k, e)| e.meta.as_ref().map(|m| (k.as_str(), m)))
        .collect();
    format!(
        r#"{{"version":{FORMAT_VERSION},"entries":{},"meta":{}}}"#,
        to_json_string(&values),
        to_json_string(&meta)
    )
}

/// Parses a v1/v2 snapshot document into a unified entry table.
pub fn parse_snapshot(text: &str) -> Result<BTreeMap<String, Entry>, String> {
    let doc = parse_json(text).map_err(|e| e.to_string())?;
    let obj = doc.as_object().ok_or("top level must be an object")?;
    match obj.get("version").and_then(JsonValue::as_f64) {
        // Version 1 lacks the meta side-table but its entries are still
        // valid measurements; load them (they just cannot seed transfers).
        Some(v) if v == 1.0 || v == FORMAT_VERSION => {}
        other => return Err(format!("unsupported cache version {other:?}")),
    }
    let mut entries: BTreeMap<String, Entry> = obj
        .get("entries")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"entries\" object")?
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|gbs| (k.clone(), Entry { gbs, meta: None }))
                .ok_or_else(|| format!("entry {k:?} is not a number"))
        })
        .collect::<Result<_, _>>()?;
    if let Some(table) = obj.get("meta").and_then(JsonValue::as_object) {
        for (k, v) in table {
            let meta = parse_meta(v).map_err(|e| format!("meta {k:?}: {e}"))?;
            // Meta without a value row is tolerated but unreachable data;
            // attach it only where an entry exists.
            if let Some(entry) = entries.get_mut(k) {
                entry.meta = Some(meta);
            }
        }
    }
    Ok(entries)
}

/// Serializes one append-log record — a key plus its entry, self-delimited
/// by the newline the log writer appends (no trailing newline here).
pub fn log_line(key: &str, entry: &Entry) -> String {
    let head = format!(
        r#"{{"key":{},"gbs":{}"#,
        to_json_string(&key),
        to_json_string(&entry.gbs)
    );
    match &entry.meta {
        Some(m) => format!("{head},\"meta\":{}}}", to_json_string(m)),
        None => format!("{head}}}"),
    }
}

/// Parses one log line back into `(key, entry)`.
pub fn parse_log_line(line: &str) -> Result<(String, Entry), String> {
    let doc = parse_json(line).map_err(|e| e.to_string())?;
    let obj = doc.as_object().ok_or("log record must be an object")?;
    let key = obj
        .get("key")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"key\"")?
        .to_owned();
    let gbs = obj
        .get("gbs")
        .and_then(JsonValue::as_f64)
        .ok_or("missing numeric field \"gbs\"")?;
    let meta = match obj.get("meta") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(parse_meta(v)?),
    };
    Ok((key, Entry { gbs, meta }))
}

/// Parses one `TrialMeta` object (shared by the snapshot and log codecs).
pub fn parse_meta(v: &JsonValue) -> Result<TrialMeta, String> {
    let obj = v.as_object().ok_or("must be an object")?;
    let field_str = |name: &str| -> Result<String, String> {
        obj.get(name)
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field {name:?}"))
    };
    let spec = obj
        .get("spec")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"spec\" object")?;
    let field_usize = |name: &str| -> Result<usize, String> {
        spec.get(name)
            .and_then(JsonValue::as_f64)
            .map(|f| f as usize)
            .ok_or_else(|| format!("missing numeric spec field {name:?}"))
    };
    let (ba, sa) = (field_usize("base_align")?, field_usize("seg_align")?);
    for (name, v) in [("base_align", ba), ("seg_align", sa)] {
        if !v.max(1).is_power_of_two() {
            return Err(format!("spec field {name:?} = {v} is not a power of two"));
        }
    }
    Ok(TrialMeta {
        tag: field_str("tag")?,
        chip: field_str("chip")?,
        // Rebuild through the setters so loaded specs are canonical.
        spec: LayoutSpec::new()
            .base_align(ba)
            .seg_align(sa)
            .shift(field_usize("shift")?)
            .block_offset(field_usize("block_offset")?),
    })
}

/// Replays an append log over `entries`, last record per key winning. A
/// malformed line ends the replay (the expected case is a torn tail from a
/// crash mid-append); the number of applied records is returned.
pub fn replay_log(entries: &mut BTreeMap<String, Entry>, text: &str) -> usize {
    let mut applied = 0;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_log_line(line) {
            Ok((key, entry)) => {
                entries.insert(key, entry);
                applied += 1;
            }
            Err(_) => break,
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(gbs: f64, meta: Option<TrialMeta>) -> Entry {
        Entry { gbs, meta }
    }

    fn meta(tag: &str) -> TrialMeta {
        TrialMeta {
            tag: tag.into(),
            chip: "cafe".into(),
            spec: LayoutSpec::new().base_align(8192).shift(128),
        }
    }

    #[test]
    fn snapshot_round_trips_and_matches_legacy_bytes() {
        let mut entries = BTreeMap::new();
        entries.insert("aa".to_string(), entry(1.25, None));
        entries.insert("bb".to_string(), entry(2.5, Some(meta("triad"))));
        let text = snapshot_to_string(&entries);
        // The legacy ResultCache layout: version, entries map, meta map.
        assert!(text.starts_with(r#"{"version":2,"entries":{"aa":1.25,"bb":2.5},"meta":{"bb":"#));
        let back = parse_snapshot(&text).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn v1_snapshots_parse_without_meta() {
        let back = parse_snapshot(r#"{"version":1,"entries":{"aa":3.5}}"#).unwrap();
        assert_eq!(back["aa"], entry(3.5, None));
    }

    #[test]
    fn unknown_versions_and_garbage_are_errors() {
        assert!(parse_snapshot(r#"{"version":99,"entries":{}}"#).is_err());
        assert!(parse_snapshot("{not json").is_err());
        assert!(parse_snapshot(r#"{"version":2}"#).is_err());
    }

    #[test]
    fn log_lines_round_trip() {
        for e in [entry(7.5, None), entry(0.25, Some(meta("jacobi")))] {
            let line = log_line("89ab", &e);
            assert!(!line.contains('\n'));
            let (k, back) = parse_log_line(&line).unwrap();
            assert_eq!(k, "89ab");
            assert_eq!(back, e);
        }
    }

    #[test]
    fn replay_applies_last_write_and_discards_torn_tail() {
        let mut entries = BTreeMap::new();
        let text = format!(
            "{}\n{}\n{}",
            log_line("aa", &entry(1.0, None)),
            log_line("aa", &entry(2.0, Some(meta("triad")))),
            // A torn tail: the crash case. Must be discarded silently.
            r#"{"key":"bb","gb"#
        );
        assert_eq!(replay_log(&mut entries, &text), 2);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries["aa"].gbs, 2.0);
        assert!(entries["aa"].meta.is_some());
    }
}
