//! Sharded embedded result store for layout-tuning trials.
//!
//! This crate promotes the autotuner's single-file `ResultCache` into a
//! small embedded store suitable for a long-running service:
//!
//! - **Sharding.** Keys route to one of N shards by FNV-1a 64 of the key,
//!   so concurrent writers touching different keys rarely contend.
//! - **Reader/writer locking.** Each shard sits behind a
//!   [`std::sync::RwLock`]: any number of concurrent readers, one writer.
//! - **Append-only durability.** In directory mode every accepted write is
//!   appended to the shard's JSON-lines log before the call returns;
//!   [`Store::compact`] folds the log into an atomic snapshot rewrite.
//! - **Atomic persistence.** Snapshots are written to a sibling temp file
//!   and `rename`d into place, so a reader (or a crash) never observes a
//!   partially-written file.
//! - **Metrics.** Hits, misses, appends, compactions, and per-shard
//!   occupancy via [`StoreMetrics`], publishable into a
//!   `t2opt-telemetry` [`Sink`](t2opt_telemetry::metrics::Sink).
//!
//! A 1-shard store in [`Store::single_file`] mode reads and writes the
//! exact v2 `ResultCache` JSON document, which is what lets the autotuner's
//! cache become a thin facade over this crate without breaking any
//! existing cache file or test pin.

#![warn(missing_docs)]

pub mod format;
pub mod metrics;

pub use metrics::{StoreMetrics, StoreSnapshot};

use serde::Serialize;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};
use t2opt_core::json::{parse_json, JsonValue};
use t2opt_core::layout::LayoutSpec;

/// Side-table record describing what a stored entry measured. `tag` groups
/// entries into workload families (rankings transfer *between* families,
/// absolute values never do), `chip` fences off measurements from different
/// memory systems, and `spec` is the layout the bandwidth was measured
/// under. Re-exported by `t2opt-autotune` as `cache::TrialMeta`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TrialMeta {
    /// Workload-family tag (`Workload::tag`).
    pub tag: String,
    /// Chip fingerprint, stored as a hex string: the minimal JSON parser
    /// reads numbers as `f64`, which cannot round-trip a 64-bit hash.
    pub chip: String,
    /// The candidate layout the entry measured.
    pub spec: LayoutSpec,
}

/// One stored trial: a measured (or predicted) bandwidth plus its optional
/// transfer side-table record.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Bandwidth in GB/s.
    pub gbs: f64,
    /// Transfer metadata; `None` for v1 entries and bare inserts.
    pub meta: Option<TrialMeta>,
}

/// Where a store keeps its bytes.
#[derive(Debug, Clone)]
enum Backing {
    /// No persistence; `save`/`compact` are no-ops.
    Memory,
    /// One shard, one v2 `ResultCache` JSON document, no side log. Writes
    /// mark the shard dirty; `save` rewrites the whole file atomically.
    SingleFile(PathBuf),
    /// N shards under a directory: `shard-<i>.json` snapshot plus
    /// `shard-<i>.log` append log, with `manifest.json` pinning the shard
    /// count so key routing is stable across reopens.
    Dir(PathBuf),
}

#[derive(Debug)]
struct Shard {
    entries: BTreeMap<String, Entry>,
    /// Entries changed since the last snapshot write.
    dirty: bool,
    /// Append log handle (directory mode only).
    log: Option<File>,
}

impl Shard {
    fn empty() -> Self {
        Shard {
            entries: BTreeMap::new(),
            dirty: false,
            log: None,
        }
    }
}

/// A sharded, content-addressed map from trial key to [`Entry`]. All
/// methods take `&self`; interior mutability is per-shard `RwLock`s.
#[derive(Debug)]
pub struct Store {
    shards: Vec<RwLock<Shard>>,
    backing: Backing,
    metrics: StoreMetrics,
}

/// Manifest document version for directory-mode stores.
const MANIFEST_VERSION: f64 = 1.0;

impl Store {
    /// An in-memory store with `n_shards` shards and no persistence.
    pub fn in_memory(n_shards: usize) -> Self {
        assert!(n_shards > 0, "store needs at least one shard");
        Store {
            shards: (0..n_shards).map(|_| RwLock::new(Shard::empty())).collect(),
            backing: Backing::Memory,
            metrics: StoreMetrics::default(),
        }
    }

    /// A 1-shard store backed by a single v2 `ResultCache` JSON file. If
    /// the file exists it is loaded (a malformed file is an `InvalidData`
    /// error — delete it to start over); otherwise the store starts empty
    /// and the file appears on the first [`Store::save`].
    pub fn single_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let store = Store {
            shards: vec![RwLock::new(Shard::empty())],
            backing: Backing::SingleFile(path.clone()),
            metrics: StoreMetrics::default(),
        };
        if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            let entries = format::parse_snapshot(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt result cache {}: {e}", path.display()),
                )
            })?;
            store.write_shard(0).entries = entries;
        }
        Ok(store)
    }

    /// Opens (or creates) a directory-mode store. `n_shards` applies only
    /// on first creation; an existing `manifest.json` pins the shard count
    /// thereafter, so key→shard routing never changes under saved data.
    /// Each shard loads its snapshot, then replays its append log over it
    /// (a torn trailing record from a crash is discarded).
    pub fn open_dir(dir: impl AsRef<Path>, n_shards: usize) -> io::Result<Self> {
        assert!(n_shards > 0, "store needs at least one shard");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let manifest = dir.join("manifest.json");
        let n = if manifest.exists() {
            read_manifest(&manifest)?
        } else {
            write_atomic(
                &manifest,
                &format!(r#"{{"version":{MANIFEST_VERSION},"shards":{n_shards}}}"#),
            )?;
            n_shards
        };
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let mut shard = Shard::empty();
            let snap_path = dir.join(format!("shard-{i}.json"));
            if snap_path.exists() {
                let text = std::fs::read_to_string(&snap_path)?;
                shard.entries = format::parse_snapshot(&text).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("corrupt store shard {}: {e}", snap_path.display()),
                    )
                })?;
            }
            let log_path = dir.join(format!("shard-{i}.log"));
            if log_path.exists() {
                let text = std::fs::read_to_string(&log_path)?;
                if format::replay_log(&mut shard.entries, &text) > 0 {
                    // Replayed records are not in the snapshot yet.
                    shard.dirty = true;
                }
            }
            shard.log = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&log_path)?,
            );
            shards.push(RwLock::new(shard));
        }
        Ok(Store {
            shards,
            backing: Backing::Dir(dir),
            metrics: StoreMetrics::default(),
        })
    }

    /// Number of shards (fixed for the store's lifetime).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key routes to: `fnv1a64(key) mod shard_count`.
    pub fn shard_for(&self, key: &str) -> usize {
        (fnv1a64(key.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// The store's counters.
    pub fn metrics(&self) -> &StoreMetrics {
        &self.metrics
    }

    /// Counters plus current per-shard occupancy, ready to serialize.
    pub fn snapshot(&self) -> StoreSnapshot {
        self.metrics.snapshot(self.occupancy())
    }

    /// Entries per shard, indexed by shard number.
    pub fn occupancy(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .len()
            })
            .collect()
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.occupancy().iter().sum()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks `key` up (bandwidth only), counting a hit or a miss.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.get_entry(key).map(|e| e.gbs)
    }

    /// Looks `key` up with its metadata, counting a hit or a miss.
    pub fn get_entry(&self, key: &str) -> Option<Entry> {
        let found = self.peek_entry(key);
        match found {
            Some(_) => self.metrics.hit(),
            None => self.metrics.miss(),
        }
        found
    }

    /// Looks `key` up without touching the hit/miss counters.
    pub fn peek(&self, key: &str) -> Option<f64> {
        self.peek_entry(key).map(|e| e.gbs)
    }

    /// [`Store::peek`], with metadata.
    pub fn peek_entry(&self, key: &str) -> Option<Entry> {
        self.read_shard(self.shard_for(key))
            .entries
            .get(key)
            .cloned()
    }

    /// The fundamental write primitive: atomically read-modify-write one
    /// key under its shard's write lock. `f` sees the current entry (if
    /// any) and returns the replacement, or `None` to leave the key
    /// unchanged. Returns whether the stored entry actually changed; only
    /// a change dirties the shard and appends to its log.
    pub fn update(&self, key: &str, f: impl FnOnce(Option<&Entry>) -> Option<Entry>) -> bool {
        let mut shard = self.write_shard(self.shard_for(key));
        let current = shard.entries.get(key);
        let Some(next) = f(current) else {
            return false;
        };
        if current == Some(&next) {
            return false;
        }
        if let Some(log) = &mut shard.log {
            // A failed append is not fatal: the shard stays dirty, so the
            // entry still reaches disk at the next save/compact.
            let _ = writeln!(log, "{}", format::log_line(key, &next));
        }
        shard.entries.insert(key.to_string(), next);
        shard.dirty = true;
        self.metrics.append();
        true
    }

    /// Records a bandwidth under `key`, preserving any existing metadata.
    pub fn insert(&self, key: &str, gbs: f64) {
        self.update(key, |cur| {
            Some(Entry {
                gbs,
                meta: cur.and_then(|e| e.meta.clone()),
            })
        });
    }

    /// Records a bandwidth plus its transfer metadata under `key`.
    pub fn insert_with_meta(&self, key: &str, gbs: f64, meta: TrialMeta) {
        self.update(key, |_| {
            Some(Entry {
                gbs,
                meta: Some(meta),
            })
        });
    }

    /// Monotone upgrade: stores `(gbs, meta)` only when `key` is absent or
    /// the new bandwidth is strictly better than the stored one. A refined
    /// result can therefore never be replaced by a worse one, no matter how
    /// writes race. Returns whether the entry was upgraded.
    pub fn upgrade_max(&self, key: &str, gbs: f64, meta: TrialMeta) -> bool {
        self.update(key, |cur| match cur {
            Some(e) if e.gbs >= gbs => None,
            _ => Some(Entry {
                gbs,
                meta: Some(meta),
            }),
        })
    }

    /// Cross-kernel seeding: the best layout any *foreign* workload family
    /// (different [`TrialMeta::tag`]) measured on the same chip, with shift
    /// and block offset reduced mod `period` (the memory-controller
    /// interleave period — layouts in the same residue class produce the
    /// same controller walk, so the reduction only canonicalizes).
    ///
    /// Ranking is *relative within each family*: each entry scores
    /// `gbs / family_max`, so a slow kernel's clear winner beats a fast
    /// kernel's mediocre candidate. Ties break to the lexicographically
    /// smallest key across the whole store, keeping the seed deterministic
    /// regardless of sharding.
    pub fn transfer_seed(&self, target_tag: &str, chip: &str, period: usize) -> Option<LayoutSpec> {
        assert!(period > 0, "interleave period must be positive");
        // Collect candidates from every shard into one key-ordered map so
        // the tie-break matches the historical single-map behavior.
        let mut candidates: BTreeMap<String, (f64, TrialMeta)> = BTreeMap::new();
        for lock in &self.shards {
            let shard = lock.read().unwrap_or_else(PoisonError::into_inner);
            for (key, e) in &shard.entries {
                let Some(m) = &e.meta else { continue };
                if m.tag == target_tag || m.chip != chip {
                    continue;
                }
                candidates.insert(key.clone(), (e.gbs, m.clone()));
            }
        }
        let mut family_max: BTreeMap<&str, f64> = BTreeMap::new();
        for (gbs, m) in candidates.values() {
            let best = family_max.entry(m.tag.as_str()).or_insert(f64::MIN);
            *best = best.max(*gbs);
        }
        let mut winner: Option<(f64, &TrialMeta)> = None;
        for (gbs, m) in candidates.values() {
            let fam = family_max[m.tag.as_str()];
            let score = if fam > 0.0 { gbs / fam } else { 0.0 };
            // Keys iterate ascending, so keeping `>` strict breaks ties to
            // the smallest key.
            if winner.is_none_or(|(best, _)| score > best) {
                winner = Some((score, m));
            }
        }
        winner.map(|(_, m)| {
            m.spec
                .clone()
                .shift(m.spec.shift % period)
                .block_offset(m.spec.block_offset % period)
        })
    }

    /// Persists outstanding changes in the cheapest complete way: a no-op
    /// for in-memory stores and for directory mode (where every accepted
    /// write already reached the append log); an atomic whole-file rewrite
    /// for dirty single-file stores.
    pub fn save(&self) -> io::Result<()> {
        match &self.backing {
            Backing::Memory | Backing::Dir(_) => Ok(()),
            Backing::SingleFile(path) => {
                let mut shard = self.write_shard(0);
                if !shard.dirty {
                    return Ok(());
                }
                write_atomic(path, &format::snapshot_to_string(&shard.entries))?;
                shard.dirty = false;
                Ok(())
            }
        }
    }

    /// Folds every dirty shard's state into an atomic snapshot rewrite and
    /// truncates its append log. Also the shutdown flush for directory
    /// stores. In-memory stores: no-op; single-file stores: same as
    /// [`Store::save`] but counted as a compaction.
    pub fn compact(&self) -> io::Result<()> {
        match &self.backing {
            Backing::Memory => Ok(()),
            Backing::SingleFile(path) => {
                let mut shard = self.write_shard(0);
                if !shard.dirty {
                    return Ok(());
                }
                write_atomic(path, &format::snapshot_to_string(&shard.entries))?;
                shard.dirty = false;
                self.metrics.compaction();
                Ok(())
            }
            Backing::Dir(dir) => {
                for i in 0..self.shards.len() {
                    let mut shard = self.write_shard(i);
                    if !shard.dirty {
                        continue;
                    }
                    let snap = dir.join(format!("shard-{i}.json"));
                    write_atomic(&snap, &format::snapshot_to_string(&shard.entries))?;
                    // Truncate the log only after the snapshot is durable.
                    let log_path = dir.join(format!("shard-{i}.log"));
                    shard.log = Some(
                        OpenOptions::new()
                            .create(true)
                            .write(true)
                            .truncate(true)
                            .open(&log_path)?,
                    );
                    shard.dirty = false;
                    self.metrics.compaction();
                }
                Ok(())
            }
        }
    }

    // The lock-wait histogram (`StoreMetrics::lock_wait`) measures how
    // long callers block acquiring a shard lock — the serving stack's
    // "was it store contention?" signal. Timing is off by default; when
    // off the only cost is one relaxed load per acquisition.

    fn read_shard(&self, i: usize) -> std::sync::RwLockReadGuard<'_, Shard> {
        if self.metrics.lock_timing() {
            let t0 = std::time::Instant::now();
            let guard = self.shards[i]
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            self.metrics
                .record_lock_wait(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
            guard
        } else {
            self.shards[i]
                .read()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    fn write_shard(&self, i: usize) -> std::sync::RwLockWriteGuard<'_, Shard> {
        if self.metrics.lock_timing() {
            let t0 = std::time::Instant::now();
            let guard = self.shards[i]
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            self.metrics
                .record_lock_wait(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
            guard
        } else {
            self.shards[i]
                .write()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }
}

fn read_manifest(path: &Path) -> io::Result<usize> {
    let corrupt = |e: String| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corrupt store manifest {}: {e}", path.display()),
        )
    };
    let text = std::fs::read_to_string(path)?;
    let doc = parse_json(&text).map_err(|e| corrupt(e.to_string()))?;
    let obj = doc
        .as_object()
        .ok_or_else(|| corrupt("top level must be an object".into()))?;
    match obj.get("version").and_then(JsonValue::as_f64) {
        Some(v) if v == MANIFEST_VERSION => {}
        other => return Err(corrupt(format!("unsupported manifest version {other:?}"))),
    }
    let shards = obj
        .get("shards")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| corrupt("missing numeric field \"shards\"".into()))?;
    if shards < 1.0 || shards.fract() != 0.0 {
        return Err(corrupt(format!("invalid shard count {shards}")));
    }
    Ok(shards as usize)
}

/// Writes `text` to `path` atomically: the bytes land in a uniquely-named
/// sibling temp file first and are `rename`d into place, so concurrent
/// readers (and post-crash reopens) see either the old document or the new
/// one, never a prefix.
pub fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = PathBuf::from(tmp);
    let result = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// FNV-1a 64 over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a 64 over `bytes`, as the 16-hex-digit string used for trial keys
/// and chip fingerprints.
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("t2opt-store-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta(tag: &str, chip: &str, spec: LayoutSpec) -> TrialMeta {
        TrialMeta {
            tag: tag.into(),
            chip: chip.into(),
            spec,
        }
    }

    #[test]
    fn routing_covers_all_shards_and_is_deterministic() {
        let store = Store::in_memory(4);
        let mut seen = [false; 4];
        for i in 0..64 {
            let key = format!("{i:016x}");
            let shard = store.shard_for(&key);
            assert_eq!(shard, store.shard_for(&key));
            seen[shard] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 keys must touch all 4 shards");
    }

    #[test]
    fn get_counts_hits_and_misses_peek_does_not() {
        let store = Store::in_memory(2);
        assert_eq!(store.get("aa"), None);
        store.insert("aa", 7.5);
        assert_eq!(store.get("aa"), Some(7.5));
        assert_eq!(store.peek("aa"), Some(7.5));
        assert_eq!(store.peek("zz"), None);
        assert_eq!((store.metrics().hits(), store.metrics().misses()), (1, 1));
    }

    #[test]
    fn insert_preserves_meta_and_clean_writes_do_not_dirty() {
        let store = Store::in_memory(1);
        let m = meta("triad", "cafe", LayoutSpec::new().shift(64));
        store.insert_with_meta("aa", 5.0, m.clone());
        store.insert("aa", 6.0);
        assert_eq!(store.peek_entry("aa").unwrap().meta, Some(m));
        let appends = store.metrics().appends();
        store.insert("aa", 6.0);
        assert_eq!(store.metrics().appends(), appends, "no-op insert is free");
    }

    #[test]
    fn upgrade_max_is_monotone() {
        let store = Store::in_memory(1);
        let worse = meta("triad", "cafe", LayoutSpec::new());
        let better = meta("triad", "cafe", LayoutSpec::new().shift(128));
        assert!(store.upgrade_max("aa", 5.0, worse.clone()));
        assert!(!store.upgrade_max("aa", 4.0, worse));
        assert!(store.upgrade_max("aa", 6.0, better.clone()));
        let e = store.peek_entry("aa").unwrap();
        assert_eq!((e.gbs, e.meta), (6.0, Some(better)));
    }

    #[test]
    fn dir_store_replays_log_and_compacts() {
        let dir = tmp_dir("replay");
        {
            let store = Store::open_dir(&dir, 4).unwrap();
            store.insert_with_meta("aa", 1.0, meta("triad", "cafe", LayoutSpec::new()));
            store.insert("bb", 2.0);
            store.insert("aa", 3.0);
            // No compact, no save: entries must survive via the logs alone.
        }
        let store = Store::open_dir(&dir, 4).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.peek("aa"), Some(3.0));
        assert!(store.peek_entry("aa").unwrap().meta.is_some());
        store.compact().unwrap();
        assert!(store.metrics().compactions() > 0);
        // After compaction the logs are empty and snapshots carry the data.
        let reopened = Store::open_dir(&dir, 4).unwrap();
        assert_eq!(reopened.peek("bb"), Some(2.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_store_discards_torn_log_tail() {
        let dir = tmp_dir("torn");
        {
            let store = Store::open_dir(&dir, 1).unwrap();
            store.insert("aa", 1.5);
        }
        // Simulate a crash mid-append: a partial record at the log tail.
        let log = dir.join("shard-0.log");
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(br#"{"key":"bb","gb"#).unwrap();
        drop(f);
        let store = Store::open_dir(&dir, 1).unwrap();
        assert_eq!(store.peek("aa"), Some(1.5));
        assert_eq!(store.len(), 1, "torn tail must be discarded, not kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_pins_shard_count_across_reopen() {
        let dir = tmp_dir("manifest");
        {
            let store = Store::open_dir(&dir, 3).unwrap();
            store.insert("aa", 1.0);
        }
        // Asking for a different count later must not re-rout saved keys.
        let store = Store::open_dir(&dir, 8).unwrap();
        assert_eq!(store.shard_count(), 3);
        assert_eq!(store.peek("aa"), Some(1.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_file_mode_round_trips_v2_documents() {
        let dir = tmp_dir("single");
        let path = dir.join("cache.json");
        let store = Store::single_file(&path).unwrap();
        store.insert_with_meta(
            "aa",
            9.0,
            meta("triad", "cafe", LayoutSpec::new().base_align(8192)),
        );
        store.save().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(r#"{"version":2,"entries":"#));
        let reloaded = Store::single_file(&path).unwrap();
        assert_eq!(reloaded.peek("aa"), Some(9.0));
        assert!(reloaded.peek_entry("aa").unwrap().meta.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_timing_records_waits_once_enabled() {
        let store = Store::in_memory(2);
        store.insert("aa", 1.0);
        assert_eq!(store.metrics().lock_wait().count, 0, "timing off: silent");
        store.metrics().set_lock_timing(true);
        store.get("aa");
        store.insert("bb", 2.0);
        assert!(store.metrics().lock_wait().count >= 2);
    }

    #[test]
    fn transfer_seed_matches_legacy_semantics_across_shards() {
        let chip = "cafe";
        let store = Store::in_memory(4);
        let good = LayoutSpec::new().base_align(8192).block_offset(128);
        store.insert_with_meta("s0", 2.0, meta("stream_mix", chip, good.clone()));
        store.insert_with_meta("s1", 0.5, meta("stream_mix", chip, LayoutSpec::new()));
        store.insert_with_meta("t0", 16.0, meta("triad", chip, good.clone().shift(64)));
        store.insert_with_meta("t1", 10.0, meta("triad", chip, LayoutSpec::new()));
        // Both family winners score 1.0; the tie breaks to the smallest
        // key "s0" even though entries are spread over four shards.
        assert_eq!(store.transfer_seed("jacobi", chip, 512), Some(good));
        assert_eq!(store.transfer_seed("stream_mix", "beef", 512), None);
    }
}
