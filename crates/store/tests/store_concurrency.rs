//! Concurrency pins for the sharded store: many readers against racing
//! writers must never observe a torn entry, [`Store::upgrade_max`] must be
//! monotone under contention, compaction must be safe to run while writes
//! land, and key→shard routing must be stable across save/load.

use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use t2opt_core::layout::LayoutSpec;
use t2opt_store::{Store, TrialMeta};

/// An entry whose bandwidth and layout encode the same round number, so a
/// torn read (gbs from one write, meta from another) is detectable.
fn stamped(round: usize) -> (f64, TrialMeta) {
    (
        round as f64,
        TrialMeta {
            tag: "stress".into(),
            chip: "cafe".into(),
            spec: LayoutSpec::new().shift(round),
        },
    )
}

fn unique_dir(prefix: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir()
        .join("t2opt-store-concurrency")
        .join(format!(
            "{prefix}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Many readers + racing writers on one in-memory store: every observed
/// entry must be internally consistent (gbs and spec stamped by the same
/// write) and per-key bandwidths must only ever go up (`upgrade_max`).
#[test]
fn readers_never_observe_torn_or_regressing_entries() {
    const KEYS: usize = 32;
    const ROUNDS: usize = 200;
    const READERS: usize = 4;
    const WRITERS: usize = 2;

    let store = Arc::new(Store::in_memory(4));
    let stop = Arc::new(AtomicBool::new(false));
    let keys: Vec<String> = (0..KEYS).map(|i| format!("{i:016x}")).collect();

    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let keys = keys.clone();
            scope.spawn(move || {
                let mut last_seen: HashMap<String, f64> = HashMap::new();
                while !stop.load(Ordering::Relaxed) {
                    for key in &keys {
                        let Some(e) = store.peek_entry(key) else {
                            continue;
                        };
                        let meta = e.meta.expect("stress entries always carry meta");
                        assert_eq!(
                            meta.spec.shift, e.gbs as usize,
                            "torn read: bandwidth and layout from different writes"
                        );
                        let prev = last_seen.insert(key.clone(), e.gbs);
                        assert!(
                            prev.is_none_or(|p| e.gbs >= p),
                            "refined entry regressed from {prev:?} to {}",
                            e.gbs
                        );
                    }
                }
            });
        }
        // Writers race over the same keys with interleaved rounds; the
        // monotone upgrade rule must make the final state the max round
        // regardless of interleaving.
        let mut writers = Vec::new();
        for w in 0..WRITERS {
            let store = Arc::clone(&store);
            let keys = keys.clone();
            writers.push(scope.spawn(move || {
                for round in (1..=ROUNDS).skip(w % 2) {
                    for key in &keys {
                        let (gbs, meta) = stamped(round);
                        store.upgrade_max(key, gbs, meta);
                    }
                }
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    for key in &keys {
        assert_eq!(store.peek(key), Some(ROUNDS as f64));
    }
    assert_eq!(store.len(), KEYS);
}

/// Compacting a directory store while writers are still appending must
/// lose nothing: after the dust settles, a fresh open sees every key at
/// its final (maximal) round.
#[test]
fn compaction_races_with_writers_without_losing_entries() {
    const KEYS: usize = 16;
    const ROUNDS: usize = 60;

    let dir = unique_dir("compact-race");
    let store = Arc::new(Store::open_dir(&dir, 4).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    let keys: Vec<String> = (0..KEYS).map(|i| format!("{i:016x}")).collect();

    std::thread::scope(|scope| {
        let compactor = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    store.compact().unwrap();
                }
            })
        };
        for round in 1..=ROUNDS {
            for key in &keys {
                let (gbs, meta) = stamped(round);
                store.upgrade_max(key, gbs, meta);
            }
        }
        stop.store(true, Ordering::Relaxed);
        compactor.join().unwrap();
    });
    store.compact().unwrap();

    let reopened = Store::open_dir(&dir, 4).unwrap();
    assert_eq!(reopened.len(), KEYS);
    for key in &keys {
        assert_eq!(reopened.peek(key), Some(ROUNDS as f64));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    /// Key→shard routing is pinned by the manifest: for arbitrary key sets
    /// and shard counts, reopening the store (even requesting a different
    /// shard count) preserves both the routing and every stored value.
    #[test]
    fn shard_routing_is_stable_across_save_load(
        raw_keys in proptest::collection::vec(0u64..1_000_000_000, 1..24),
        n_shards in 1usize..6,
        reopen_request in 1usize..9,
    ) {
        let dir = unique_dir("routing");
        let mut keys: Vec<String> = raw_keys.iter().map(|k| format!("{k:016x}")).collect();
        keys.sort();
        keys.dedup();
        let mut routed: HashMap<String, usize> = HashMap::new();
        {
            let store = Store::open_dir(&dir, n_shards).unwrap();
            for (i, key) in keys.iter().enumerate() {
                store.insert(key, i as f64);
                routed.insert(key.clone(), store.shard_for(key));
            }
            store.compact().unwrap();
        }
        let reopened = Store::open_dir(&dir, reopen_request).unwrap();
        prop_assert_eq!(reopened.shard_count(), n_shards, "manifest must pin the count");
        for (i, key) in keys.iter().enumerate() {
            prop_assert_eq!(reopened.shard_for(key), routed[key]);
            prop_assert_eq!(reopened.peek(key), Some(i as f64));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
