//! Demonstrates the convoy effect at the engine level: 64 threads with a
//! STREAM-triad access pattern, with array bases congruent modulo 512 B
//! (one memory controller at a time) versus spread with the paper's
//! optimal 128-byte offsets (all four controllers).
//!
//! Run with: `cargo run --release -p t2opt-sim --example convoy_debug`

use t2opt_sim::prelude::*;

fn run(label: &str, offs: [u64; 3]) {
    let sim = Simulation::t2();
    let n = 1 << 13; // elements per thread chunk
    let chunk_bytes = (n * 8) as u64;
    let threads: Vec<ThreadSpec> = (0..64)
        .map(|t| {
            let a = offs[0] + t as u64 * chunk_bytes;
            let b = (1 << 30) + offs[1] + t as u64 * chunk_bytes;
            let c = (2 << 30) + offs[2] + t as u64 * chunk_bytes;
            ThreadSpec::new(
                (t % 8) as usize,
                Box::new(StreamLoop::new(
                    vec![
                        StreamSpec::load(b),
                        StreamSpec::load(c),
                        StreamSpec::store(a),
                    ],
                    n,
                    8,
                    2.0,
                    64,
                )) as Program,
            )
        })
        .collect();
    let st = sim.run(threads);
    let cfg = sim.config();
    let util = st.mc_busy_cycles.iter().sum::<u64>() as f64
        / (cfg.n_controllers() as u64 * st.cycles().max(1)) as f64;
    println!(
        "{label}: {:>6.2} GB/s actual | controller busy {:.0}% | nacks {}",
        st.actual_bandwidth_gbs(cfg),
        util * 100.0,
        st.nacks
    );
}

fn main() {
    println!("STREAM-triad pattern, 64 threads, simulated UltraSPARC T2:");
    run("congruent mod 512 B (offset 0)", [0, 0, 0]);
    run("paper's offsets 0/128/256    ", [0, 128, 256]);
    println!("\nThe congruent case batches every thread onto one controller at a");
    println!("time — the aliasing collapse of Hager et al. 2008, Fig. 2.");
}
