//! Property-based tests for the memory-controller arbitration layer
//! (DESIGN.md §13): request conservation, controller event monotonicity,
//! and starvation bounds, over arbitrary arrival traces.

use proptest::prelude::*;
use t2opt_sim::policy::{MemRequest, PolicyKind, ReqClass};
use t2opt_sim::prelude::*;
use t2opt_telemetry::probe::SimProbe;

/// Counts and timestamps every controller service event.
struct ServiceLog {
    /// Per-controller demand/RFO read services.
    reads: Vec<u64>,
    /// Per-controller write-back services.
    writes: Vec<u64>,
    /// Per-controller decision times, in emission order.
    at: Vec<Vec<u64>>,
}

impl ServiceLog {
    fn new(n_mcs: usize) -> Self {
        ServiceLog {
            reads: vec![0; n_mcs],
            writes: vec![0; n_mcs],
            at: vec![Vec::new(); n_mcs],
        }
    }
}

impl SimProbe for ServiceLog {
    fn mc_service(
        &mut self,
        mc: usize,
        at_cycle: u64,
        _busy_added: u64,
        _queue_len: usize,
        is_write: bool,
    ) {
        if is_write {
            self.writes[mc] += 1;
        } else {
            self.reads[mc] += 1;
        }
        self.at[mc].push(at_cycle);
    }
}

/// The three policy shapes under test, from two proptest draws.
fn policy_from(idx: usize, cap: u32) -> PolicyKind {
    match idx % 3 {
        0 => PolicyKind::Fifo,
        1 => PolicyKind::ReadFirst {
            starvation_cap: cap,
        },
        _ => PolicyKind::FrFcfs {
            starvation_cap: cap,
        },
    }
}

/// Builds thread programs from arbitrary per-thread seeds: a mix of reads
/// and writes, optionally all aliased to the same controller (congruent
/// mod 512 B) to force queue pressure and NACK/retry traffic.
fn arbitrary_threads(seeds: &[u64], write_mod: u64, alias: bool) -> Vec<ThreadSpec> {
    seeds
        .iter()
        .enumerate()
        .map(|(t, &s)| {
            let stride = if alias { 512 } else { 64 };
            let base = (t as u64) * (1 << 24) + if alias { 0 } else { (s % 8) * 64 };
            let ops: Vec<Op> = (0..250u64)
                .map(|i| {
                    let addr = base + (s % 97) * 64 + i * stride;
                    if (i + s) % 4 < write_mod {
                        Op::Write(addr)
                    } else {
                        Op::Read(addr)
                    }
                })
                .collect();
            ThreadSpec::new(t % 8, Box::new(ops.into_iter()) as Program)
        })
        .collect()
}

proptest! {
    /// Request conservation under every policy: each admitted controller
    /// request is serviced exactly once — the per-controller service
    /// counts observed at the probe sum to exactly the miss and write-back
    /// counts, and DRAM traffic equals misses × line size. (The engine
    /// additionally asserts at end of run that no request, MSHR, or parked
    /// thread is left behind; running to completion is the liveness half.)
    #[test]
    fn requests_complete_exactly_once(
        seeds in proptest::collection::vec(0u64..1_000, 1..8),
        write_mod in 0u64..4,
        alias in 0u32..2,
        pidx in 0usize..3,
        cap in 0u32..16,
    ) {
        let mut cfg = ChipConfig::ultrasparc_t2();
        cfg.policy = policy_from(pidx, cap);
        let sim = Simulation::new(cfg.clone());
        let mut log = ServiceLog::new(cfg.n_controllers());
        let stats = sim.run_with_probe(
            arbitrary_threads(&seeds, write_mod, alias == 1),
            &mut log,
        );
        let reads: u64 = log.reads.iter().sum();
        let writes: u64 = log.writes.iter().sum();
        prop_assert_eq!(reads, stats.l2_misses, "one service per miss");
        prop_assert_eq!(writes, stats.l2_writebacks, "one service per write-back");
        prop_assert_eq!(stats.total_read_bytes(), stats.l2_misses * 64);
        prop_assert_eq!(stats.total_write_bytes(), stats.l2_writebacks * 64);
        prop_assert_eq!(stats.l2_hits + stats.l2_misses, stats.mem_ops);
    }

    /// On the arbitrated path, controller decisions are driven by heap
    /// events, so each controller's service times are monotone
    /// non-decreasing — time never runs backwards for an event source.
    #[test]
    fn controller_event_times_are_monotone(
        seeds in proptest::collection::vec(0u64..1_000, 1..8),
        write_mod in 0u64..4,
        alias in 0u32..2,
        pidx in 1usize..3, // non-FIFO: the event-driven path
        cap in 0u32..16,
    ) {
        let mut cfg = ChipConfig::ultrasparc_t2();
        cfg.policy = policy_from(pidx, cap);
        let sim = Simulation::new(cfg.clone());
        let mut log = ServiceLog::new(cfg.n_controllers());
        sim.run_with_probe(arbitrary_threads(&seeds, write_mod, alias == 1), &mut log);
        for (mc, times) in log.at.iter().enumerate() {
            for w in times.windows(2) {
                prop_assert!(
                    w[0] <= w[1],
                    "controller {mc} arbitration time regressed: {} -> {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    /// Simulations stay bit-reproducible under every policy.
    #[test]
    fn deterministic_under_every_policy(
        seeds in proptest::collection::vec(0u64..500, 1..6),
        pidx in 0usize..3,
        cap in 0u32..16,
    ) {
        let mut cfg = ChipConfig::ultrasparc_t2();
        cfg.policy = policy_from(pidx, cap);
        let run = || Simulation::new(cfg.clone()).run(arbitrary_threads(&seeds, 1, true));
        prop_assert_eq!(run(), run());
    }

    /// Starvation bound, policy level: replaying an arbitrary arrival/
    /// service trace through a reordering policy with the engine's bypass
    /// accounting, no request is ever bypassed more than `cap` times — the
    /// moment the oldest request hits the cap the policy must select it.
    #[test]
    fn starvation_is_bounded_by_the_cap(
        trace in proptest::collection::vec((0u64..8, 0u64..64, 0u32..3), 1..200),
        pidx in 1usize..3,
        cap in 0u32..16,
    ) {
        let kind = policy_from(pidx, cap);
        let mut policy = kind.build();
        let mut pending: Vec<MemRequest> = Vec::new();
        let mut now = 0u64;
        for (i, &(gap, line, class)) in trace.iter().enumerate() {
            now += gap;
            pending.push(MemRequest {
                id: (i + 1) as u64,
                arrival: now,
                addr: line * 64,
                class: match class {
                    0 => ReqClass::DemandRead,
                    1 => ReqClass::StoreRfo,
                    _ => ReqClass::Writeback,
                },
                tid: None,
                bank: None,
                bypassed: 0,
            });
            // Service one request per arrival step (queue pressure keeps
            // several pending, so reordering actually happens).
            if pending.len() >= 2 || gap > 4 {
                let sel = policy.select(&pending, now);
                prop_assert!(sel < pending.len(), "selection in range");
                let req = pending.swap_remove(sel);
                for p in pending.iter_mut() {
                    if p.id < req.id {
                        p.bypassed += 1;
                    }
                }
                policy.on_service(&req);
                prop_assert!(
                    req.bypassed <= cap,
                    "{}: serviced a request bypassed {} times (cap {cap})",
                    kind.name(),
                    req.bypassed
                );
                for p in &pending {
                    prop_assert!(
                        p.bypassed <= cap,
                        "{}: left a request bypassed {} times (cap {cap})",
                        kind.name(),
                        p.bypassed
                    );
                }
            }
        }
    }

    /// FIFO through the shared policy trait is order-exact: it always
    /// selects the minimum id, regardless of class or address pattern.
    #[test]
    fn fifo_policy_selects_strictly_by_age(
        ids in proptest::collection::vec(0u64..10_000, 1..50),
    ) {
        let mut policy = PolicyKind::Fifo.build();
        let pending: Vec<MemRequest> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| MemRequest {
                id: id * 64 + i as u64, // unique ids
                arrival: 0,
                addr: (i as u64) * 4096,
                class: if i % 2 == 0 { ReqClass::DemandRead } else { ReqClass::Writeback },
                tid: None,
                bank: None,
                bypassed: 0,
            })
            .collect();
        let sel = policy.select(&pending, 1);
        let min_id = pending.iter().map(|r| r.id).min().unwrap();
        prop_assert_eq!(pending[sel].id, min_id);
    }
}
