//! Property-based tests for the simulator's conservation laws and bounds.

use proptest::prelude::*;
use t2opt_sim::cache::{Access, L2Cache};
use t2opt_sim::config::{ChipConfig, L2Config};
use t2opt_sim::prelude::*;

fn small_l2() -> L2Config {
    L2Config {
        bytes: 8192,
        ways: 4,
        line: 64,
        bank_cycles: 2,
        hit_latency: 26,
        mshr_per_bank: 8,
    }
}

proptest! {
    /// The cache never holds more lines than its capacity, and a second
    /// access to a line that was just inserted (within associativity
    /// pressure) behaves deterministically.
    #[test]
    fn cache_capacity_invariant(addrs in proptest::collection::vec(0u64..1_000_000, 1..2_000)) {
        let cfg = small_l2();
        let mut cache = L2Cache::new(&cfg);
        let capacity = cfg.bytes / cfg.line;
        for (i, &a) in addrs.iter().enumerate() {
            cache.access(a, i % 3 == 0);
            prop_assert!(cache.occupancy() <= capacity);
        }
    }

    /// Immediately re-accessing the same line is always a hit.
    #[test]
    fn immediate_reaccess_hits(addrs in proptest::collection::vec(0u64..100_000, 1..500)) {
        let mut cache = L2Cache::new(&small_l2());
        for &a in &addrs {
            cache.access(a, false);
            prop_assert_eq!(cache.access(a, false), Access::Hit);
        }
    }

    /// DRAM read traffic equals misses × line size; write traffic equals
    /// write-backs × line size — conservation at the memory boundary.
    #[test]
    fn traffic_conservation(
        seeds in proptest::collection::vec(0u64..1_000, 1..8),
        write_frac in 0u32..4,
    ) {
        let sim = Simulation::t2();
        let threads: Vec<ThreadSpec> = seeds
            .iter()
            .enumerate()
            .map(|(t, &s)| {
                let base = (t as u64) * (1 << 24) + s * 64;
                let ops: Vec<Op> = (0..200u64)
                    .map(|i| {
                        let addr = base + i * 64;
                        if i % 4 < write_frac as u64 {
                            Op::Write(addr)
                        } else {
                            Op::Read(addr)
                        }
                    })
                    .collect();
                ThreadSpec::new(t % 8, Box::new(ops.into_iter()) as Program)
            })
            .collect();
        let stats = sim.run(threads);
        prop_assert_eq!(stats.total_read_bytes(), stats.l2_misses * 64);
        prop_assert_eq!(stats.total_write_bytes(), stats.l2_writebacks * 64);
        prop_assert_eq!(stats.l2_hits + stats.l2_misses, stats.mem_ops);
    }

    /// Simulated bandwidth never exceeds the configured aggregate service
    /// capacity (plus jitter slack).
    #[test]
    fn bandwidth_bounded_by_capacity(n_threads in 1usize..32) {
        let cfg = ChipConfig::ultrasparc_t2();
        let sim = Simulation::new(cfg.clone());
        let threads: Vec<ThreadSpec> = (0..n_threads)
            .map(|t| {
                let base = (t as u64) * (1 << 26) + 128 * (t as u64 % 4);
                ThreadSpec::new(
                    t % 8,
                    Box::new(StreamLoop::new(vec![StreamSpec::load(base)], 1 << 12, 8, 0.0, 64))
                        as Program,
                )
            })
            .collect();
        let stats = sim.run(threads);
        let capacity_bytes_per_cycle =
            cfg.n_controllers() as f64 * 64.0 / cfg.mem.read_service as f64;
        let measured =
            stats.total_bytes() as f64 / stats.cycles().max(1) as f64;
        // Jitter can make individual transfers up to `1 - jitter` faster.
        prop_assert!(
            measured <= capacity_bytes_per_cycle / (1.0 - cfg.mem.service_jitter) + 1e-9,
            "measured {measured:.2} B/cy exceeds capacity {capacity_bytes_per_cycle:.2}"
        );
    }

    /// Simulations are bit-reproducible: same inputs, same statistics.
    #[test]
    fn deterministic(seed in 0u64..500) {
        let build = || {
            let ops: Vec<Op> = (0..300u64)
                .map(|i| {
                    let a = (seed * 977 + i * 61) % 4096;
                    if (a / 7) % 3 == 0 {
                        Op::Write(a * 64)
                    } else {
                        Op::Read(a * 64)
                    }
                })
                .collect();
            vec![
                ThreadSpec::new(0, Box::new(ops.clone().into_iter()) as Program),
                ThreadSpec::new(1, Box::new(ops.into_iter()) as Program),
            ]
        };
        let a = Simulation::t2().run(build());
        let b = Simulation::t2().run(build());
        prop_assert_eq!(a, b);
    }

    /// Barriers never lose threads: any split of work across two phases
    /// completes, and the measurement window covers only the second phase.
    #[test]
    fn barrier_window_integrity(
        lens in proptest::collection::vec(1usize..100, 2..8),
    ) {
        let sim = Simulation::t2().measure_after_barrier(0);
        let threads: Vec<ThreadSpec> = lens
            .iter()
            .enumerate()
            .map(|(t, &len)| {
                let base = (t as u64) << 24;
                let phase1: Vec<Op> = (0..len as u64).map(|i| Op::Read(base + i * 64)).collect();
                let phase2: Vec<Op> =
                    (0..len as u64).map(|i| Op::Read(base + (1 << 20) + i * 64)).collect();
                let program = phase1
                    .into_iter()
                    .chain(std::iter::once(Op::Barrier(0)))
                    .chain(phase2);
                ThreadSpec::new(t % 8, Box::new(program) as Program)
            })
            .collect();
        let stats = sim.run(threads);
        let phase2_lines: u64 = lens.iter().map(|&l| l as u64).sum();
        prop_assert_eq!(stats.total_read_bytes(), phase2_lines * 64);
        prop_assert!(stats.start_cycle > 0);
        prop_assert!(stats.end_cycle >= stats.start_cycle);
    }
}
