//! Simulation statistics and derived performance metrics.

use crate::config::ChipConfig;
use serde::{Deserialize, Serialize};

/// Counters collected during a simulation run.
///
/// All byte counters are *memory-side* (post-L2): they count actual DRAM
/// traffic, including read-for-ownership and write-backs — the distinction
/// the paper draws between "reported" STREAM bandwidth and the 4/3 larger
/// actual transfer volume.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Cycle at which measurement started (after warm-up barriers).
    pub start_cycle: u64,
    /// Cycle at which the last thread finished.
    pub end_cycle: u64,
    /// Bytes read from DRAM per controller (demand + RFO).
    pub mc_read_bytes: Vec<u64>,
    /// Bytes written to DRAM per controller (write-backs).
    pub mc_write_bytes: Vec<u64>,
    /// Busy cycles per controller (both channels combined).
    pub mc_busy_cycles: Vec<u64>,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Dirty evictions (write-backs issued).
    pub l2_writebacks: u64,
    /// Accesses per L2 bank.
    pub bank_accesses: Vec<u64>,
    /// Total simulated memory operations (loads + stores).
    pub mem_ops: u64,
    /// NACKed (retried) requests: full controller queue or full bank miss
    /// buffer at issue time.
    pub nacks: u64,
    /// Total compute flops charged.
    pub flops: u64,
}

impl SimStats {
    /// Fresh counters for a chip with `n_mcs` controllers and `n_banks`
    /// banks.
    pub fn new(n_mcs: usize, n_banks: usize) -> Self {
        SimStats {
            mc_read_bytes: vec![0; n_mcs],
            mc_write_bytes: vec![0; n_mcs],
            mc_busy_cycles: vec![0; n_mcs],
            bank_accesses: vec![0; n_banks],
            ..Default::default()
        }
    }

    /// Resets everything except configuration-shaped vectors; used when the
    /// measurement window starts after a warm-up phase.
    pub fn reset_window(&mut self, at_cycle: u64) {
        let n_mcs = self.mc_read_bytes.len();
        let n_banks = self.bank_accesses.len();
        *self = SimStats::new(n_mcs, n_banks);
        self.start_cycle = at_cycle;
        self.end_cycle = at_cycle;
    }

    /// Measured duration in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Total DRAM read traffic in bytes.
    pub fn total_read_bytes(&self) -> u64 {
        self.mc_read_bytes.iter().sum()
    }

    /// Total DRAM write traffic in bytes.
    pub fn total_write_bytes(&self) -> u64 {
        self.mc_write_bytes.iter().sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_read_bytes() + self.total_write_bytes()
    }

    /// Actual DRAM bandwidth over the measurement window, in GB/s.
    pub fn actual_bandwidth_gbs(&self, cfg: &ChipConfig) -> f64 {
        let secs = cfg.cycles_to_secs(self.cycles());
        if secs == 0.0 {
            return 0.0;
        }
        self.total_bytes() as f64 / secs / 1e9
    }

    /// "Reported" bandwidth in the STREAM convention: the caller supplies
    /// the bytes the benchmark would report (which excludes RFO traffic).
    pub fn reported_bandwidth_gbs(&self, cfg: &ChipConfig, reported_bytes: u64) -> f64 {
        let secs = cfg.cycles_to_secs(self.cycles());
        if secs == 0.0 {
            return 0.0;
        }
        reported_bytes as f64 / secs / 1e9
    }

    /// Lattice-site updates per second, in millions (MLUPs/s), given the
    /// number of site updates performed in the measurement window.
    pub fn mlups(&self, cfg: &ChipConfig, site_updates: u64) -> f64 {
        let secs = cfg.cycles_to_secs(self.cycles());
        if secs == 0.0 {
            return 0.0;
        }
        site_updates as f64 / secs / 1e6
    }

    /// L2 hit rate in [0, 1] (1.0 when there were no accesses).
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            1.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Controller-utilization balance: mean busy fraction divided by max
    /// busy fraction (1.0 = perfectly even, →1/n = one hotspot).
    pub fn mc_balance(&self) -> f64 {
        let max = self.mc_busy_cycles.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let mean =
            self.mc_busy_cycles.iter().sum::<u64>() as f64 / self.mc_busy_cycles.len() as f64;
        mean / max as f64
    }

    /// Per-controller busy fraction over the measurement window, in [0, 1].
    /// Returns all zeros for a zero-length window instead of dividing by it.
    pub fn mc_utilization(&self) -> Vec<f64> {
        let cycles = self.cycles();
        if cycles == 0 {
            return vec![0.0; self.mc_busy_cycles.len()];
        }
        self.mc_busy_cycles
            .iter()
            .map(|&b| (b as f64 / cycles as f64).min(1.0))
            .collect()
    }

    /// Achieved flop rate in Gflop/s.
    pub fn gflops(&self, cfg: &ChipConfig) -> f64 {
        let secs = cfg.cycles_to_secs(self.cycles());
        if secs == 0.0 {
            return 0.0;
        }
        self.flops as f64 / secs / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_math() {
        let cfg = ChipConfig::ultrasparc_t2();
        let mut s = SimStats::new(4, 8);
        s.start_cycle = 0;
        s.end_cycle = 1_200_000_000; // 1 second
        s.mc_read_bytes[0] = 10_000_000_000;
        s.mc_write_bytes[1] = 2_000_000_000;
        assert!((s.actual_bandwidth_gbs(&cfg) - 12.0).abs() < 1e-9);
        assert!((s.reported_bandwidth_gbs(&cfg, 9_000_000_000) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn mlups_math() {
        let cfg = ChipConfig::ultrasparc_t2();
        let mut s = SimStats::new(4, 8);
        s.end_cycle = 1_200_000_000;
        assert!((s.mlups(&cfg, 600_000_000) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn balance_metric() {
        let mut s = SimStats::new(4, 8);
        s.mc_busy_cycles = vec![100, 100, 100, 100];
        assert!((s.mc_balance() - 1.0).abs() < 1e-12);
        s.mc_busy_cycles = vec![400, 0, 0, 0];
        assert!((s.mc_balance() - 0.25).abs() < 1e-12);
        s.mc_busy_cycles = vec![0, 0, 0, 0];
        assert_eq!(s.mc_balance(), 1.0);
    }

    #[test]
    fn window_reset() {
        let mut s = SimStats::new(4, 8);
        s.l2_hits = 42;
        s.mc_read_bytes[2] = 1000;
        s.reset_window(777);
        assert_eq!(s.l2_hits, 0);
        assert_eq!(s.mc_read_bytes[2], 0);
        assert_eq!(s.start_cycle, 777);
        assert_eq!(s.cycles(), 0);
    }

    /// A zero-length measurement window (e.g. a run that ends on the very
    /// cycle the window opens) must yield finite zeros from every derived
    /// metric, never NaN or infinity.
    #[test]
    fn zero_length_window_yields_finite_zeros() {
        let cfg = ChipConfig::ultrasparc_t2();
        let mut s = SimStats::new(4, 8);
        s.reset_window(1_000);
        // Counters may be non-zero even when the window has zero length
        // (events land exactly on the boundary cycle).
        s.mc_read_bytes[0] = 4096;
        s.mc_busy_cycles[1] = 64;
        s.flops = 128;
        assert_eq!(s.cycles(), 0);
        assert_eq!(s.actual_bandwidth_gbs(&cfg), 0.0);
        assert_eq!(s.reported_bandwidth_gbs(&cfg, 4096), 0.0);
        assert_eq!(s.mlups(&cfg, 100), 0.0);
        assert_eq!(s.gflops(&cfg), 0.0);
        assert_eq!(s.mc_utilization(), vec![0.0; 4]);
        // And an end_cycle that drifted *before* start_cycle saturates too.
        s.end_cycle = 0;
        assert_eq!(s.cycles(), 0);
        assert_eq!(s.actual_bandwidth_gbs(&cfg), 0.0);
    }

    #[test]
    fn mc_utilization_guards_and_clamps() {
        let mut s = SimStats::new(2, 8);
        s.start_cycle = 0;
        s.end_cycle = 1000;
        s.mc_busy_cycles = vec![500, 2000];
        assert_eq!(s.mc_utilization(), vec![0.5, 1.0]);
    }

    #[test]
    fn hit_rate_edge_cases() {
        let mut s = SimStats::new(4, 8);
        assert_eq!(s.l2_hit_rate(), 1.0);
        s.l2_hits = 3;
        s.l2_misses = 1;
        assert!((s.l2_hit_rate() - 0.75).abs() < 1e-12);
    }
}
