//! Pluggable memory-controller queue policies.
//!
//! Historically every controller channel served strictly FIFO, so a
//! request's completion time was fixed the moment it was admitted and the
//! engine could schedule exact thread wake-ups from the enqueue path — no
//! controller-side events at all. That design wall made the *interesting*
//! arbitration disciplines — FR-FCFS row-hit reordering, read-over-write
//! priority — inexpressible: their service order depends on requests that
//! arrive **later**.
//!
//! This module is the seam that removes the wall. A [`QueuePolicy`]
//! inspects the controller's pending requests at an arbitration instant
//! and picks the next one to service; the engine gives every controller
//! its own `(next_tick, mc_id)` wake-ups in the event heap and calls the
//! policy each time a service slot opens (see `engine.rs` and DESIGN.md
//! §13).
//!
//! FIFO remains the pinned default, and it is special: because its
//! decision can never depend on later arrivals, the arbitration step
//! collapses into the admission path and the engine keeps the historical
//! inline fast path — bitwise-identical `SimStats`, enforced by
//! `tests/policy_differential.rs` against a pre-refactor capture.
//!
//! # Determinism contract
//!
//! Policies must be deterministic functions of the request sequence they
//! observe: no clocks, no randomness, no global state. A policy may keep
//! internal state (FR-FCFS keeps the open DRAM row), but that state must
//! be rebuilt identically by an identical run — simulations stay
//! bit-reproducible under every policy.

use serde::{Deserialize, Serialize};

/// DRAM row size assumed by row-aware policies (FR-FCFS): requests within
/// the same aligned 4 KiB block of one controller's address space count as
/// row hits. The T2's FB-DIMM rows were larger; 4 KiB is the conservative
/// page-sized choice and is what keeps row locality meaningful under the
/// 512 B controller interleave.
pub const DRAM_ROW_BYTES: u64 = 4096;

/// Default starvation cap for reordering policies: a request may be
/// bypassed by younger requests at most this many times before the policy
/// is forced to serve it.
pub const DEFAULT_STARVATION_CAP: u32 = 8;

/// What a queued memory-controller transfer is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqClass {
    /// A demand load miss: the issuing thread blocks on this line (subject
    /// to its outstanding-miss budget).
    DemandRead,
    /// A store miss's read-for-ownership: drains a TSO store-buffer entry;
    /// the thread blocks only when its buffer is full.
    StoreRfo,
    /// A dirty-line write-back from the L2's eviction buffers: no thread
    /// waits on it — which is exactly why deprioritizing it can pay.
    Writeback,
}

/// One request sitting in a controller's input queue, as a policy sees it.
#[derive(Debug, Clone)]
pub struct MemRequest {
    /// Global admission sequence number: strictly increasing in admission
    /// order across the whole simulation, so `id` order *is* age order.
    pub id: u64,
    /// Cycle the request reached the controller queue.
    pub arrival: u64,
    /// Line address (for row / locality decisions).
    pub addr: u64,
    /// Transfer class.
    pub class: ReqClass,
    /// Issuing thread (`None` for write-backs).
    pub tid: Option<u32>,
    /// L2 bank whose miss buffer (MSHR) this request occupies
    /// (`None` for write-backs).
    pub bank: Option<usize>,
    /// How many times arbitration has served a *younger* request over this
    /// one. Maintained by the engine; policies only read it.
    pub bypassed: u32,
}

impl MemRequest {
    /// Reads use the northbound data channel (demand misses and RFOs);
    /// write-backs use only the southbound channel.
    pub fn is_read(&self) -> bool {
        !matches!(self.class, ReqClass::Writeback)
    }

    /// The DRAM row this request falls in (see [`DRAM_ROW_BYTES`]).
    pub fn row(&self) -> u64 {
        self.addr / DRAM_ROW_BYTES
    }
}

/// A memory-controller arbitration discipline.
///
/// The engine instantiates one policy object **per controller** (policies
/// may keep per-controller state such as the open row) and calls
/// [`QueuePolicy::select`] whenever the controller's southbound channel is
/// free and at least one admitted request has arrived. The selected
/// request is then serviced, [`QueuePolicy::on_service`] is invoked, and
/// the engine increments [`MemRequest::bypassed`] on every older request
/// that was passed over.
///
/// ## What a policy may observe and mutate
///
/// * Observe: the pending slice (ages, classes, addresses, bypass counts)
///   and the current cycle. Nothing else — no channel timelines, no other
///   controllers, no thread state.
/// * Mutate: only its own internal state, and only from `on_service` /
///   `reset`. `select` takes `&mut self` for bookkeeping but must be
///   deterministic and side-effect-free with respect to the choice it
///   returns.
pub trait QueuePolicy {
    /// Human-readable policy name (CLI/JSON label).
    fn name(&self) -> &'static str;

    /// FIFO's defining property: the service decision for a request can
    /// never depend on requests that arrive after it. When `true`, the
    /// engine resolves completion times at admission (the historical
    /// inline path) and never schedules controller arbitration events.
    fn commits_at_admission(&self) -> bool {
        false
    }

    /// Picks the index (into `pending`) of the next request to service.
    /// `pending` is non-empty and every element has `arrival <= now`.
    fn select(&mut self, pending: &[MemRequest], now: u64) -> usize;

    /// Informs the policy that `req` was just serviced.
    fn on_service(&mut self, _req: &MemRequest) {}

    /// Clears internal state (fresh controller).
    fn reset(&mut self) {}
}

/// Index of the oldest (minimum-id) request.
fn oldest(pending: &[MemRequest]) -> usize {
    pending
        .iter()
        .enumerate()
        .min_by_key(|(_, r)| r.id)
        .map(|(i, _)| i)
        .expect("select called with a non-empty pending slice")
}

/// First-in first-out: the pinned default, service order = arrival order.
#[derive(Debug, Default, Clone)]
pub struct FifoPolicy;

impl QueuePolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn commits_at_admission(&self) -> bool {
        true
    }

    fn select(&mut self, pending: &[MemRequest], _now: u64) -> usize {
        oldest(pending)
    }
}

/// Read-over-write priority: demand reads and RFOs (which threads wait on)
/// bypass queued write-backs (which nothing waits on), FIFO within each
/// class, bounded by the starvation cap.
#[derive(Debug, Clone)]
pub struct ReadOverWritePolicy {
    cap: u32,
}

impl ReadOverWritePolicy {
    /// A read-over-write policy with the given starvation cap.
    pub fn new(cap: u32) -> Self {
        ReadOverWritePolicy { cap }
    }
}

impl QueuePolicy for ReadOverWritePolicy {
    fn name(&self) -> &'static str {
        "read-first"
    }

    fn select(&mut self, pending: &[MemRequest], _now: u64) -> usize {
        let old = oldest(pending);
        if pending[old].bypassed >= self.cap {
            return old;
        }
        pending
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_read())
            .min_by_key(|(_, r)| r.id)
            .map(|(i, _)| i)
            .unwrap_or(old)
    }
}

/// First-ready FCFS: requests hitting the controller's open DRAM row are
/// served before row misses (oldest first within each group), bounded by
/// the starvation cap. The open row tracks the last serviced request.
#[derive(Debug, Clone)]
pub struct FrFcfsPolicy {
    cap: u32,
    open_row: Option<u64>,
}

impl FrFcfsPolicy {
    /// An FR-FCFS policy with the given starvation cap.
    pub fn new(cap: u32) -> Self {
        FrFcfsPolicy {
            cap,
            open_row: None,
        }
    }
}

impl QueuePolicy for FrFcfsPolicy {
    fn name(&self) -> &'static str {
        "fr-fcfs"
    }

    fn select(&mut self, pending: &[MemRequest], _now: u64) -> usize {
        let old = oldest(pending);
        if pending[old].bypassed >= self.cap {
            return old;
        }
        let Some(row) = self.open_row else {
            return old;
        };
        pending
            .iter()
            .enumerate()
            .filter(|(_, r)| r.row() == row)
            .min_by_key(|(_, r)| r.id)
            .map(|(i, _)| i)
            .unwrap_or(old)
    }

    fn on_service(&mut self, req: &MemRequest) {
        self.open_row = Some(req.row());
    }

    fn reset(&mut self) {
        self.open_row = None;
    }
}

/// Configuration-level policy selector: which [`QueuePolicy`] each memory
/// controller runs. Part of [`crate::config::ChipConfig`]; the default is
/// [`PolicyKind::Fifo`], which preserves the pre-policy engine bitwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Strict arrival order (the calibrated default).
    #[default]
    Fifo,
    /// Reads (demand + RFO) over write-backs, with a starvation cap.
    ReadFirst {
        /// Maximum times a write-back may be bypassed.
        starvation_cap: u32,
    },
    /// FR-FCFS row-hit-first reordering, with a starvation cap.
    FrFcfs {
        /// Maximum times a row-miss request may be bypassed.
        starvation_cap: u32,
    },
}

/// CLI names accepted by [`PolicyKind::parse`] (an optional `:N` suffix
/// overrides the starvation cap, e.g. `fr-fcfs:16`).
pub const POLICY_NAMES: &[&str] = &["fifo", "read-first", "fr-fcfs"];

impl PolicyKind {
    /// Whether this is the FIFO discipline (inline admission-time service).
    pub fn is_fifo(&self) -> bool {
        matches!(self, PolicyKind::Fifo)
    }

    /// Canonical name (matches [`POLICY_NAMES`]).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::ReadFirst { .. } => "read-first",
            PolicyKind::FrFcfs { .. } => "fr-fcfs",
        }
    }

    /// The starvation cap, where the policy has one.
    pub fn starvation_cap(&self) -> Option<u32> {
        match self {
            PolicyKind::Fifo => None,
            PolicyKind::ReadFirst { starvation_cap } | PolicyKind::FrFcfs { starvation_cap } => {
                Some(*starvation_cap)
            }
        }
    }

    /// Parses a CLI spelling: `fifo`, `read-first`, `fr-fcfs`, optionally
    /// suffixed `:N` to set the starvation cap. `None` for unknown names
    /// or malformed caps.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        let (name, cap) = match s.split_once(':') {
            Some((n, c)) => (n, Some(c.parse::<u32>().ok()?)),
            None => (s, None),
        };
        let cap = cap.unwrap_or(DEFAULT_STARVATION_CAP);
        match name {
            "fifo" => {
                if s.contains(':') {
                    // FIFO has no cap to configure; reject the suffix.
                    None
                } else {
                    Some(PolicyKind::Fifo)
                }
            }
            "read-first" | "read-over-write" => Some(PolicyKind::ReadFirst {
                starvation_cap: cap,
            }),
            "fr-fcfs" => Some(PolicyKind::FrFcfs {
                starvation_cap: cap,
            }),
            _ => None,
        }
    }

    /// Builds one policy instance (per-controller state included).
    pub fn build(&self) -> Box<dyn QueuePolicy> {
        match *self {
            PolicyKind::Fifo => Box::new(FifoPolicy),
            PolicyKind::ReadFirst { starvation_cap } => {
                Box::new(ReadOverWritePolicy::new(starvation_cap))
            }
            PolicyKind::FrFcfs { starvation_cap } => Box::new(FrFcfsPolicy::new(starvation_cap)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, class: ReqClass, addr: u64) -> MemRequest {
        MemRequest {
            id,
            arrival: id,
            addr,
            class,
            tid: None,
            bank: None,
            bypassed: 0,
        }
    }

    #[test]
    fn fifo_always_picks_the_oldest() {
        let mut p = FifoPolicy;
        let pending = vec![
            req(5, ReqClass::Writeback, 0),
            req(2, ReqClass::DemandRead, 64),
            req(9, ReqClass::StoreRfo, 128),
        ];
        assert_eq!(p.select(&pending, 100), 1);
        assert!(p.commits_at_admission());
    }

    #[test]
    fn read_first_bypasses_writebacks_until_the_cap() {
        let mut p = ReadOverWritePolicy::new(2);
        let mut pending = vec![
            req(1, ReqClass::Writeback, 0),
            req(2, ReqClass::DemandRead, 64),
        ];
        // The younger read goes first...
        assert_eq!(p.select(&pending, 10), 1);
        // ...until the write-back has been bypassed `cap` times.
        pending[0].bypassed = 2;
        assert_eq!(p.select(&pending, 10), 0);
    }

    #[test]
    fn fr_fcfs_prefers_the_open_row() {
        let mut p = FrFcfsPolicy::new(8);
        let pending = vec![
            req(1, ReqClass::DemandRead, 0),              // row 0
            req(2, ReqClass::DemandRead, DRAM_ROW_BYTES), // row 1
        ];
        // No open row yet: oldest wins and opens row 0.
        assert_eq!(p.select(&pending, 0), 0);
        p.on_service(&pending[0]);
        let pending = vec![
            req(3, ReqClass::DemandRead, DRAM_ROW_BYTES),
            req(4, ReqClass::DemandRead, 64), // row 0: the open-row hit
        ];
        assert_eq!(p.select(&pending, 0), 1);
        p.reset();
        assert_eq!(p.select(&pending, 0), 0);
    }

    #[test]
    fn kind_parses_and_builds() {
        assert_eq!(PolicyKind::parse("fifo"), Some(PolicyKind::Fifo));
        assert_eq!(
            PolicyKind::parse("read-first"),
            Some(PolicyKind::ReadFirst {
                starvation_cap: DEFAULT_STARVATION_CAP
            })
        );
        assert_eq!(
            PolicyKind::parse("fr-fcfs:16"),
            Some(PolicyKind::FrFcfs { starvation_cap: 16 })
        );
        assert_eq!(PolicyKind::parse("fifo:3"), None);
        assert_eq!(PolicyKind::parse("lifo"), None);
        for name in POLICY_NAMES {
            let kind = PolicyKind::parse(name).expect("registry name parses");
            assert_eq!(kind.name(), *name);
            assert_eq!(kind.build().name(), *name);
            assert_eq!(kind.is_fifo(), kind.build().commits_at_admission());
        }
        assert!(PolicyKind::default().is_fifo());
    }
}
