//! Access-trace abstraction: kernels describe each simulated thread's work
//! as a lazy stream of [`Op`]s at cache-line granularity.
//!
//! Rather than recording giant traces, kernels build *generators*:
//! [`StreamLoop`] covers every unit-stride multi-stream loop in the paper
//! (STREAM, vector triad, one Jacobi row, one LBM x-line) — it walks `n`
//! elements and emits one `Read`/`Write` per stream exactly when the walk
//! enters a new cache line of that stream, plus the configured compute work.
//! Arbitrary kernels can supply any `Iterator<Item = Op>`.

/// One simulated-thread operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load from the line containing this byte address (blocking on miss).
    Read(u64),
    /// Store to the line containing this byte address (write-allocate: a
    /// miss triggers a blocking read-for-ownership; the line is dirtied and
    /// written back on eviction).
    Write(u64),
    /// Floating-point work: charged against the core's shared FPU.
    Compute(u32),
    /// Plain pipeline cycles charged to this thread only (integer/branch
    /// work, loop overhead).
    Delay(u32),
    /// Synchronization point: the thread waits until *all* threads have
    /// reached barrier `id`. Ids must be used in increasing order (0, 1, …)
    /// and identically by every thread — exactly like the implicit barrier
    /// at the end of an OpenMP parallel-for.
    Barrier(u32),
}

/// A boxed lazy op stream for one simulated thread.
pub type Program = Box<dyn Iterator<Item = Op>>;

/// Direction of a [`StreamLoop`] stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// The stream is loaded.
    Load,
    /// The stream is stored.
    Store,
}

/// One unit-stride stream participating in a [`StreamLoop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSpec {
    /// Byte address of the stream's element 0 for this loop.
    pub base: u64,
    /// Load or store.
    pub dir: Dir,
}

impl StreamSpec {
    /// A load stream at `base`.
    pub fn load(base: u64) -> Self {
        StreamSpec {
            base,
            dir: Dir::Load,
        }
    }

    /// A store stream at `base`.
    pub fn store(base: u64) -> Self {
        StreamSpec {
            base,
            dir: Dir::Store,
        }
    }
}

/// Generates the op stream of a loop `for i in 0..n { touch every stream at
/// element i; do flops }`, emitting memory ops only at line boundaries.
///
/// Per block of elements sharing a cache line, the emission order is: all
/// new-line loads, one `Compute` for the block's flops, then all new-line
/// stores — matching how an in-order core drains a stencil/streaming loop
/// body.
pub struct StreamLoop {
    streams: Vec<StreamSpec>,
    last_line: Vec<Option<u64>>,
    n: usize,
    elem_size: u64,
    flops_per_elem: f64,
    line_mask: u64,
    /// Memory ops emitted per cache line per stream (default 1). With
    /// `touches > 1` each line is accessed `touches` times as the loop
    /// walks through it, so a line evicted *mid-line* by set-conflicting
    /// streams re-misses — the mechanism behind the paper's "ruinous"
    /// D3Q19 cache thrashing at N+2 = 0 (mod 64), invisible at
    /// one-op-per-line granularity.
    touches: usize,
    /// Next element index to process.
    i: usize,
    /// Queued ops for the current block (drained before advancing).
    pending: std::collections::VecDeque<Op>,
    flop_carry: f64,
}

impl StreamLoop {
    /// A loop over `n` elements of `elem_size` bytes touching `streams`,
    /// performing `flops_per_elem` floating-point operations per element.
    /// `line` is the cache line size (64 on the T2).
    pub fn new(
        streams: Vec<StreamSpec>,
        n: usize,
        elem_size: usize,
        flops_per_elem: f64,
        line: usize,
    ) -> Self {
        assert!(elem_size > 0 && line.is_power_of_two());
        let k = streams.len();
        StreamLoop {
            streams,
            last_line: vec![None; k],
            n,
            elem_size: elem_size as u64,
            flops_per_elem,
            line_mask: !(line as u64 - 1),
            touches: 1,
            i: 0,
            pending: std::collections::VecDeque::new(),
            flop_carry: 0.0,
        }
    }

    /// Emits `touches` accesses per cache line per stream instead of one
    /// (see the field docs; used by the LBM traces to expose intra-line
    /// re-misses under set thrashing).
    pub fn with_touches(mut self, touches: usize) -> Self {
        self.touches = touches.max(1);
        self
    }

    /// Elements per cache line (block size) for this loop.
    fn block_elems(&self) -> usize {
        (((!self.line_mask) + 1) / self.elem_size).max(1) as usize
    }

    fn refill(&mut self) {
        if self.i >= self.n {
            return;
        }
        // With touches > 1, process the line in sub-blocks so each stream
        // re-touches its current line `touches` times.
        let block = (self.block_elems() / self.touches)
            .max(1)
            .min(self.n - self.i);
        let force = self.touches > 1;
        // Loads for every stream line entered in this sub-block.
        for which in 0..self.streams.len() {
            if self.streams[which].dir != Dir::Load {
                continue;
            }
            self.push_new_lines(which, block, force);
        }
        // Compute for the sub-block.
        let flops = self.flops_per_elem * block as f64 + self.flop_carry;
        let whole = flops.floor();
        self.flop_carry = flops - whole;
        if whole > 0.0 {
            self.pending.push_back(Op::Compute(whole as u32));
        }
        // Stores.
        for which in 0..self.streams.len() {
            if self.streams[which].dir != Dir::Store {
                continue;
            }
            self.push_new_lines(which, block, force);
        }
        self.i += block;
    }

    /// Emits the memory ops stream `which` performs over the next `block`
    /// elements: one op per newly entered line, or (when `force`) one op
    /// per sub-block regardless, modelling repeated element touches.
    fn push_new_lines(&mut self, which: usize, block: usize, force: bool) {
        let s = self.streams[which];
        let first = s.base + self.i as u64 * self.elem_size;
        let last = s.base + (self.i + block - 1) as u64 * self.elem_size;
        let mut line = first & self.line_mask;
        let last_line = last & self.line_mask;
        let mut first_line = true;
        loop {
            if self.last_line[which] != Some(line) || (force && first_line) {
                self.last_line[which] = Some(line);
                self.pending.push_back(match s.dir {
                    Dir::Load => Op::Read(line),
                    Dir::Store => Op::Write(line),
                });
            }
            first_line = false;
            if line == last_line {
                break;
            }
            line += (!self.line_mask) + 1;
        }
    }
}

impl Iterator for StreamLoop {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.pending.is_empty() {
            self.refill();
        }
        self.pending.pop_front()
    }
}

/// Convenience: chains op iterators with a barrier between consecutive
/// phases (e.g. repeated benchmark sweeps). `first_barrier_id` is the id of
/// the barrier after phase 0; ids increase by one per boundary.
pub fn chain_with_barriers<I>(phases: Vec<I>, first_barrier_id: u32) -> Program
where
    I: Iterator<Item = Op> + 'static,
{
    let n = phases.len();
    Box::new(phases.into_iter().enumerate().flat_map(move |(k, phase)| {
        let barrier = if k + 1 < n {
            Some(Op::Barrier(first_barrier_id + k as u32))
        } else {
            None
        };
        phase.chain(barrier)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(sl: StreamLoop) -> Vec<Op> {
        sl.collect()
    }

    #[test]
    fn aligned_single_read_stream() {
        // 16 f64 elements from an aligned base = 2 lines.
        let ops = collect(StreamLoop::new(
            vec![StreamSpec::load(0x1000)],
            16,
            8,
            0.0,
            64,
        ));
        assert_eq!(ops, vec![Op::Read(0x1000), Op::Read(0x1040)]);
    }

    #[test]
    fn unaligned_stream_touches_extra_line_once() {
        // Base 0x1008, 16 elements → bytes [0x1008, 0x1088) → 3 lines, each
        // read exactly once.
        let ops = collect(StreamLoop::new(
            vec![StreamSpec::load(0x1008)],
            16,
            8,
            0.0,
            64,
        ));
        assert_eq!(
            ops,
            vec![Op::Read(0x1000), Op::Read(0x1040), Op::Read(0x1080)]
        );
    }

    #[test]
    fn triad_block_structure() {
        // A = B + s*C over one line: reads B, C, compute, write A.
        let a = 0x0u64;
        let b = 0x10000u64;
        let c = 0x20000u64;
        let ops = collect(StreamLoop::new(
            vec![
                StreamSpec::store(a),
                StreamSpec::load(b),
                StreamSpec::load(c),
            ],
            8,
            8,
            2.0,
            64,
        ));
        assert_eq!(
            ops,
            vec![Op::Read(b), Op::Read(c), Op::Compute(16), Op::Write(a)]
        );
    }

    #[test]
    fn fractional_flops_accumulate_exactly() {
        // 0.5 flops per element × 64 elements = 32 flops total.
        let ops = collect(StreamLoop::new(vec![StreamSpec::load(0)], 64, 8, 0.5, 64));
        let flops: u32 = ops
            .iter()
            .filter_map(|op| match op {
                Op::Compute(f) => Some(*f),
                _ => None,
            })
            .sum();
        assert_eq!(flops, 32);
    }

    #[test]
    fn total_lines_match_span() {
        // n elements spanning exactly n*8/64 lines per stream when aligned.
        let n = 1000;
        let ops = collect(StreamLoop::new(
            vec![StreamSpec::load(0), StreamSpec::store(1 << 20)],
            n,
            8,
            1.0,
            64,
        ));
        let reads = ops.iter().filter(|o| matches!(o, Op::Read(_))).count();
        let writes = ops.iter().filter(|o| matches!(o, Op::Write(_))).count();
        assert_eq!(reads, n * 8 / 64); // 1000*8 = 8000 B = exactly 125 lines
        assert_eq!(writes, 125);
    }

    #[test]
    fn empty_loop_emits_nothing() {
        let ops = collect(StreamLoop::new(vec![StreamSpec::load(0)], 0, 8, 1.0, 64));
        assert!(ops.is_empty());
    }

    #[test]
    fn small_elements_share_lines() {
        // f32 (4 B): 32 elements = 128 B = 2 lines.
        let ops = collect(StreamLoop::new(vec![StreamSpec::load(0)], 32, 4, 0.0, 64));
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn chain_inserts_barriers_between_phases() {
        let p = chain_with_barriers(
            vec![
                vec![Op::Read(0)].into_iter(),
                vec![Op::Read(64)].into_iter(),
                vec![Op::Read(128)].into_iter(),
            ],
            0,
        );
        let ops: Vec<Op> = p.collect();
        assert_eq!(
            ops,
            vec![
                Op::Read(0),
                Op::Barrier(0),
                Op::Read(64),
                Op::Barrier(1),
                Op::Read(128),
            ]
        );
    }
}
