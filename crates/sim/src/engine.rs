//! The discrete-event simulation engine.
//!
//! Each simulated hardware thread executes its [`Program`] op by op. The
//! engine keeps a priority queue of thread wake-ups and models five
//! resource classes:
//!
//! * per-core **memory pipes** (2 on the T2) — every memory op takes an
//!   issue slot;
//! * per-core **FPU** (one shared unit) — `Compute` ops serialize on it,
//!   which is what caps the LBM at low bytes/flop (§2.4);
//! * **L2 banks** — each access occupies its bank for `bank_cycles`, and
//!   each bank tracks a finite number of outstanding misses (MSHRs);
//! * **memory controllers** — dual-channel FB-DIMM links (see
//!   [`crate::mc`]): reads pipeline on the northbound channel, write-backs
//!   and read commands share the southbound channel, with finite input
//!   queues;
//! * per-thread **load/miss and store-buffer budgets** — a thread blocks on
//!   every L2 *load* miss until the line returns (the T2's single
//!   outstanding miss per thread; configurable for the ablation study),
//!   while *stores* retire through an 8-entry TSO store buffer whose
//!   read-for-ownerships drain asynchronously.
//!
//! ## Two service paths
//!
//! Memory controllers are first-class event sources: the priority queue
//! holds thread wake-ups *and* `(next_tick, mc_id)` controller arbitration
//! wake-ups (see [`crate::policy`] and DESIGN.md §13). Which path a run
//! takes depends on the configured [`crate::policy::PolicyKind`]:
//!
//! * **FIFO (the pinned default).** Because FIFO's service decision can
//!   never depend on requests that arrive later, a request's completion
//!   time is known the moment it is admitted; the engine resolves it
//!   inline on the enqueue path, schedules exact thread wake-ups, and
//!   never emits a controller event — the historical fast path, kept
//!   statement-for-statement and held to bitwise-identical [`SimStats`]
//!   by `tests/policy_differential.rs`.
//! * **Arbitrated (FR-FCFS, read-over-write, …).** Admission only parks
//!   the request in the controller's pending queue and schedules an
//!   arbitration event; when the event fires and the southbound channel
//!   is free, the [`crate::policy::QueuePolicy`] picks among the arrived
//!   requests, the transfer is serviced, and the waiting thread's wake-up
//!   is scheduled at the *resolved* completion time. NACKed threads whose
//!   retry time is unknowable (every queue occupant still unresolved)
//!   park on the controller and are released by the next service.
//!
//! Full controller queues and full bank miss buffers NACK the request in
//! both paths. Everything is deterministically seeded and policies are
//! required to be deterministic, so simulations are bit-reproducible
//! under every policy.
//!
//! ## Why the gang window exists
//!
//! The paper's central observation — at aliased offsets "all threads hit
//! exactly one memory controller at a time. As the loop count proceeds,
//! successive controllers are of course used in turn, but not concurrently"
//! (§2.1) — is a statement about *convoy stability*. An idealized
//! infinite-FIFO queue model does not produce it: the initial service order
//! smears the threads into a stable, perfectly staggered conveyor that
//! covers all controllers and hides the aliasing entirely (we verified
//! this; configure `gang_window: None` to get that machine, or run the
//! `ablation_outstanding` binary). On the real chip, fair round-robin
//! crossbar arbitration, NACK storms and retry congestion keep the threads
//! of a bulk-synchronous loop batched, and the measured 3–4× collapse
//! follows. The engine models that net effect directly: no thread may
//! commit more than `gang_window` memory operations beyond the slowest
//! still-running thread (threads leave the gang at barriers and at program
//! end, so the window cannot deadlock).

use crate::cache::{Access, L2Cache};
use crate::config::ChipConfig;
use crate::mc::MemController;
use crate::policy::{MemRequest, QueuePolicy, ReqClass};
use crate::stats::SimStats;
use crate::trace::{Op, Program};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use t2opt_core::mapping::PageHomes;
use t2opt_telemetry::probe::{NoProbe, SimProbe, StallKind};
use t2opt_telemetry::timeline::{Timeline, TimelineRecorder, TraceConfig};

/// One simulated hardware thread: which core it is pinned to and what it
/// executes.
pub struct ThreadSpec {
    /// Core index in `0..cfg.core.n_cores`.
    pub core: usize,
    /// The thread's op stream.
    pub program: Program,
}

impl ThreadSpec {
    /// Creates a thread spec.
    pub fn new(core: usize, program: Program) -> Self {
        ThreadSpec { core, program }
    }
}

/// A configured simulation, ready to run.
pub struct Simulation {
    cfg: ChipConfig,
    measure_after_barrier: Option<u32>,
}

/// Drops completed entries (≤ now) from the front of a completion-time
/// queue.
#[inline]
fn prune(q: &mut VecDeque<u64>, now: u64) {
    while q.front().is_some_and(|&c| c <= now) {
        q.pop_front();
    }
}

/// Drops completed entries (≤ now) from an *unordered* completion list —
/// the arbitrated path resolves completions out of admission order, so the
/// front-only [`prune`] would leak entries there.
#[inline]
fn retain_future(q: &mut VecDeque<u64>, now: u64) {
    q.retain(|&c| c > now);
}

/// An entry in the engine's priority queue. Ties on `(time, seq)` never
/// reach the event payload (`seq` is globally unique), so thread-only event
/// streams — the FIFO fast path — pop in exactly the pre-policy order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Wake hardware thread `tid`.
    Thread(u32),
    /// Run controller `mc`'s arbitration step.
    McArb(u32),
}

impl Simulation {
    /// A simulation of the given chip.
    pub fn new(cfg: ChipConfig) -> Self {
        cfg.validate().expect("invalid chip configuration");
        Simulation {
            cfg,
            measure_after_barrier: None,
        }
    }

    /// A simulation of the calibrated UltraSPARC T2.
    pub fn t2() -> Self {
        Simulation::new(ChipConfig::ultrasparc_t2())
    }

    /// Starts the measurement window when barrier `id` releases: all
    /// counters collected before it are discarded. Use the warm-up sweep +
    /// barrier pattern from [`crate::trace::chain_with_barriers`].
    pub fn measure_after_barrier(mut self, id: u32) -> Self {
        self.measure_after_barrier = Some(id);
        self
    }

    /// The chip configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// Batch entry point: wraps per-thread programs into [`ThreadSpec`]s —
    /// thread `tid` runs on core `core_of(tid)` — and runs them. This is
    /// the reusable path for callers that generate whole program batches
    /// (kernel harnesses, the autotuner's trial runner) and only care about
    /// a placement rule, not individual [`ThreadSpec`] construction.
    ///
    /// # Panics
    /// As [`Simulation::run`].
    pub fn run_programs<F>(&self, programs: Vec<Program>, core_of: F) -> SimStats
    where
        F: Fn(usize) -> usize,
    {
        self.run(Self::specs_from(programs, core_of))
    }

    /// As [`Simulation::run_programs`], but with time-resolved telemetry:
    /// returns the [`Timeline`] collected under `trace` alongside the
    /// statistics.
    pub fn run_programs_traced<F>(
        &self,
        programs: Vec<Program>,
        core_of: F,
        trace: &TraceConfig,
    ) -> (SimStats, Timeline)
    where
        F: Fn(usize) -> usize,
    {
        self.run_traced(Self::specs_from(programs, core_of), trace)
    }

    fn specs_from<F>(programs: Vec<Program>, core_of: F) -> Vec<ThreadSpec>
    where
        F: Fn(usize) -> usize,
    {
        programs
            .into_iter()
            .enumerate()
            .map(|(tid, program)| ThreadSpec::new(core_of(tid), program))
            .collect()
    }

    /// Runs the given threads to completion and returns the statistics.
    ///
    /// This is the uninstrumented path: it monomorphizes over the no-op
    /// [`NoProbe`], so it compiles to exactly the same code — and produces
    /// bitwise-identical [`SimStats`] — as before the telemetry hooks
    /// existed.
    ///
    /// # Panics
    /// Panics if a thread's core index is out of range, if a core's
    /// hardware-thread capacity is exceeded, or on inconsistent barrier use
    /// (deadlock: some threads finished while others wait).
    pub fn run(&self, threads: Vec<ThreadSpec>) -> SimStats {
        self.run_with_probe(threads, &mut NoProbe)
    }

    /// Runs the threads with time-resolved telemetry: per-MC busy/queue/
    /// NACK windows, per-bank samples, per-thread stall breakdowns, and a
    /// bounded event log, collected into a [`Timeline`]. The measurement
    /// window of the timeline follows [`Simulation::measure_after_barrier`]
    /// exactly as the statistics do.
    pub fn run_traced(
        &self,
        threads: Vec<ThreadSpec>,
        trace: &TraceConfig,
    ) -> (SimStats, Timeline) {
        let mut recorder = TimelineRecorder::new(
            self.cfg.n_controllers(),
            self.cfg.n_banks(),
            threads.len(),
            trace,
        );
        let stats = self.run_with_probe(threads, &mut recorder);
        let timeline = recorder.finish(stats.end_cycle);
        (stats, timeline)
    }

    /// Runs the threads against a caller-supplied [`SimProbe`] — the
    /// generic instrumentation entry point [`Simulation::run`] and
    /// [`Simulation::run_traced`] are wrappers over.
    ///
    /// # Panics
    /// As [`Simulation::run`].
    pub fn run_with_probe<P: SimProbe>(&self, threads: Vec<ThreadSpec>, probe: &mut P) -> SimStats {
        let cfg = &self.cfg;
        let n_threads = threads.len();
        assert!(n_threads > 0, "need at least one thread");
        let mut occupancy = vec![0usize; cfg.core.n_cores];
        for t in &threads {
            assert!(
                t.core < cfg.core.n_cores,
                "core index {} out of range ({} cores)",
                t.core,
                cfg.core.n_cores
            );
            occupancy[t.core] += 1;
            assert!(
                occupancy[t.core] <= cfg.core.threads_per_core,
                "core {} oversubscribed (> {} hardware threads)",
                t.core,
                cfg.core.threads_per_core
            );
        }

        let line_bytes = cfg.l2.line as u64;
        let mut stats = SimStats::new(cfg.n_controllers(), cfg.n_banks());
        let mut cache = L2Cache::new(&cfg.l2);
        let mut mcs: Vec<MemController> = (0..cfg.n_controllers())
            .map(|i| MemController::new_seeded(&cfg.mem, i as u64 + 1))
            .collect();
        // ---- FIFO fast-path occupancy (unused on the arbitrated path) ----
        // Completion times of requests admitted to each controller's finite
        // input queue (occupancy + NACK wake times).
        let mut mc_admitted: Vec<VecDeque<u64>> = vec![VecDeque::new(); cfg.n_controllers()];
        // Completion times of outstanding misses per L2 bank (MSHRs).
        let mut bank_inflight: Vec<VecDeque<u64>> = vec![VecDeque::new(); cfg.n_banks()];

        // ---- Arbitrated-path state (unused on the FIFO fast path) ----
        /// One controller's arbitration-side queue state.
        struct McState {
            /// The socket this controller belongs to (contiguous groups of
            /// `mcs_per_socket`; always 0 on single-socket chips).
            socket: u32,
            /// Admitted requests awaiting arbitration. Each occupies a
            /// queue slot until its transfer *completes*.
            pending: Vec<MemRequest>,
            /// Completion times of serviced transfers still occupying a
            /// queue slot.
            inflight: VecDeque<u64>,
            /// Threads NACKed while every slot occupant was unresolved
            /// (no retry time computable); released at the next service.
            retry: Vec<u32>,
            /// Earliest scheduled arbitration wake-up (event dedup).
            arb_at: Option<u64>,
        }
        /// One L2 bank's MSHR state on the arbitrated path.
        struct BankState {
            /// Misses holding an MSHR whose transfer is not yet serviced.
            pending: usize,
            /// Completion times of serviced misses still holding an MSHR.
            inflight: VecDeque<u64>,
            /// Threads NACKed on a full MSHR file with no resolved entry.
            retry: Vec<u32>,
        }
        let inline = cfg.policy.is_fifo();
        let mut policies: Vec<Box<dyn QueuePolicy>> = (0..cfg.n_controllers())
            .map(|_| cfg.policy.build())
            .collect();
        let mut mc_st: Vec<McState> = (0..cfg.n_controllers())
            .map(|i| McState {
                socket: cfg.socket_of_controller(i) as u32,
                pending: Vec::new(),
                inflight: VecDeque::new(),
                retry: Vec::new(),
                arb_at: None,
            })
            .collect();
        let mut bank_st: Vec<BankState> = (0..cfg.n_banks())
            .map(|_| BankState {
                pending: 0,
                inflight: VecDeque::new(),
                retry: Vec::new(),
            })
            .collect();
        // Global admission sequence: id order is age order for the policies.
        let mut next_req = 0u64;
        // Scratch buffers for the arbitration step.
        let mut elig_idx: Vec<usize> = Vec::new();
        let mut elig_req: Vec<MemRequest> = Vec::new();
        let queue_depth = cfg.mem.queue_depth;
        let mshr_per_bank = cfg.l2.mshr_per_bank.max(1);
        let mut bank_busy = vec![0u64; cfg.n_banks()];
        let mut fpu_busy = vec![0u64; cfg.core.n_cores];
        let mut pipes: Vec<Vec<u64>> = vec![vec![0u64; cfg.core.mem_pipes]; cfg.core.n_cores];

        // ---- NUMA state (inert on single-socket chips) ----
        // On a multi-socket chip the raw mapping picks the *local* controller
        // shape (`raw % mps`); the page's home socket picks which socket's
        // group serves it. Remote transfers additionally occupy the shared
        // inter-socket link (one global busy horizon — the coarse
        // link-occupancy approximation of DESIGN §14) and pay the remote
        // latency adder. When `numa_on` is false none of this code runs and
        // the engine is statement-for-statement the single-socket machine.
        let numa_on = cfg.numa.is_numa();
        let mps = cfg.mcs_per_socket();
        let numa_link_cycles = cfg.numa.link_cycles_per_line;
        let numa_read_extra = cfg.numa.remote_read_extra;
        let numa_write_extra = cfg.numa.remote_write_extra;
        let mut homes = PageHomes::new(cfg.placement, cfg.numa.n_sockets, cfg.numa.page_bytes);
        let mut link_busy = 0u64;
        let core_socket: Vec<u32> = (0..cfg.core.n_cores)
            .map(|c| cfg.socket_of_core(c) as u32)
            .collect();

        /// Why a thread currently has no scheduled wake-up.
        #[derive(PartialEq, Eq)]
        enum Wait {
            /// Runnable (wake-up scheduled).
            None,
            /// Parked at a barrier (woken by the last arriver).
            Barrier,
            /// Parked by the gang drift window (woken by gang progress).
            Drift,
            /// Arbitrated path: parked on a full load/store budget whose
            /// release time is unresolved; woken when one of the thread's
            /// own requests is serviced.
            Data,
            /// Arbitrated path: NACKed with no computable retry time;
            /// parked on the controller's / bank's retry list and woken by
            /// its next service.
            Retry,
        }
        struct ThreadState {
            core: usize,
            program: Program,
            pending: Option<Op>,
            /// Completion times of outstanding load misses.
            loads: VecDeque<u64>,
            /// Completion times of in-flight store RFOs (buffer entries).
            stores: VecDeque<u64>,
            /// Arbitrated path: issued load misses not yet serviced (their
            /// completion times do not exist yet).
            loads_pending: usize,
            /// Arbitrated path: issued store RFOs not yet serviced.
            stores_pending: usize,
            /// Latest completion over everything this thread issued.
            drain_until: u64,
            wait: Wait,
            /// Cycle at which the thread parked (barrier/drift/data/retry),
            /// for the stall probes.
            park_start: u64,
            /// What the thread is parked on ([`Wait::Data`]/[`Wait::Retry`]),
            /// for the stall probes.
            park_kind: StallKind,
            finished: bool,
        }
        let mut ts: Vec<ThreadState> = threads
            .into_iter()
            .map(|t| ThreadState {
                core: t.core,
                program: t.program,
                pending: None,
                loads: VecDeque::new(),
                stores: VecDeque::new(),
                loads_pending: 0,
                stores_pending: 0,
                drain_until: 0,
                wait: Wait::None,
                park_start: 0,
                park_kind: StallKind::LoadMiss,
                finished: false,
            })
            .collect();
        let store_buffer = cfg.core.store_buffer.max(1);
        let outstanding_limit = cfg.core.outstanding_misses;

        struct BarrierState {
            arrivals: usize,
            release: u64,
            waiters: Vec<u32>,
        }
        let mut barriers: std::collections::HashMap<u32, BarrierState> =
            std::collections::HashMap::new();

        let mut heap: BinaryHeap<Reverse<(u64, u64, Ev)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let push =
            |heap: &mut BinaryHeap<Reverse<(u64, u64, Ev)>>, seq: &mut u64, time: u64, tid: u32| {
                *seq += 1;
                heap.push(Reverse((time, *seq, Ev::Thread(tid))));
            };
        let push_arb =
            |heap: &mut BinaryHeap<Reverse<(u64, u64, Ev)>>, seq: &mut u64, time: u64, mci: u32| {
                *seq += 1;
                heap.push(Reverse((time, *seq, Ev::McArb(mci))));
            };
        for tid in 0..n_threads {
            push(&mut heap, &mut seq, 0, tid as u32);
        }
        let mut live = n_threads;

        // Gang drift window: per-thread memory-op counts, gang membership,
        // and the current minimum over members. Threads leave the gang when
        // they finish or park at a barrier (else a short-program thread
        // would freeze the window and deadlock the rest).
        let gang_window = cfg.core.gang_window.map(u64::from);
        let mut gang_count = vec![0u64; n_threads];
        let mut in_gang = vec![true; n_threads];
        let mut gang_min = 0u64;
        let mut drift_parked: Vec<u32> = Vec::new();

        // Recomputes the gang minimum and wakes drift-parked threads that
        // are back inside the window. Invoked whenever a count or a
        // membership changes at the current minimum.
        macro_rules! gang_update {
            ($now:expr) => {{
                let new_min = gang_count
                    .iter()
                    .zip(in_gang.iter())
                    .filter(|&(_, &g)| g)
                    .map(|(&c, _)| c)
                    .min()
                    .unwrap_or(u64::MAX);
                if new_min != gang_min {
                    gang_min = new_min;
                    if let Some(w) = gang_window {
                        let now = $now;
                        drift_parked.retain(|&p| {
                            if gang_count[p as usize] < gang_min.saturating_add(w) {
                                probe.stall(p, StallKind::Drift, ts[p as usize].park_start, now);
                                ts[p as usize].wait = Wait::None;
                                push(&mut heap, &mut seq, now, p);
                                false
                            } else {
                                true
                            }
                        });
                    }
                }
            }};
        }

        // Schedules controller `mci`'s next arbitration wake-up at `at`,
        // deduplicating against an earlier-or-equal one already in the heap.
        macro_rules! sched_arb {
            ($mci:expr, $at:expr) => {{
                let mci = $mci;
                let at = $at;
                let st = &mut mc_st[mci];
                if st.arb_at.map_or(true, |t| at < t) {
                    st.arb_at = Some(at);
                    push_arb(&mut heap, &mut seq, at, mci as u32);
                }
            }};
        }

        // Arbitrated-path admission: parks the request in the controller's
        // pending queue and schedules arbitration for when both the request
        // and the southbound channel can be ready.
        macro_rules! admit {
            ($mci:expr, $req:expr) => {{
                let mci = $mci;
                let req: MemRequest = $req;
                let at = req.arrival.max(mcs[mci].south_busy);
                mc_st[mci].pending.push(req);
                sched_arb!(mci, at);
            }};
        }

        while let Some(Reverse((now, _s, ev))) = heap.pop() {
            let tid = match ev {
                Ev::Thread(tid) => tid,
                Ev::McArb(mci) => {
                    // ===== Controller arbitration step =====
                    let mci = mci as usize;
                    {
                        let st = &mut mc_st[mci];
                        if st.arb_at == Some(now) {
                            st.arb_at = None;
                        }
                        if st.pending.is_empty() {
                            continue;
                        }
                    }
                    // Don't reserve a busy southbound channel: selecting
                    // now would commit an order before later arrivals are
                    // seen — the exact FIFO behavior the policies exist to
                    // avoid. Re-arbitrate when the channel frees.
                    let south = mcs[mci].south_busy;
                    if south > now {
                        sched_arb!(mci, south);
                        continue;
                    }
                    // Requests that have actually arrived are eligible.
                    elig_idx.clear();
                    elig_req.clear();
                    let next_arrival = {
                        let st = &mc_st[mci];
                        for (i, r) in st.pending.iter().enumerate() {
                            if r.arrival <= now {
                                elig_idx.push(i);
                                elig_req.push(r.clone());
                            }
                        }
                        if elig_idx.is_empty() {
                            Some(
                                st.pending
                                    .iter()
                                    .map(|r| r.arrival)
                                    .min()
                                    .expect("pending is non-empty"),
                            )
                        } else {
                            None
                        }
                    };
                    if let Some(at) = next_arrival {
                        sched_arb!(mci, at);
                        continue;
                    }
                    // One service slot: the policy picks, the channel model
                    // resolves the completion time.
                    let sel = policies[mci].select(&elig_req, now);
                    assert!(
                        sel < elig_req.len(),
                        "policy {} returned out-of-range index {sel} ({} eligible)",
                        policies[mci].name(),
                        elig_req.len()
                    );
                    let req = mc_st[mci].pending.swap_remove(elig_idx[sel]);
                    let out = match req.class {
                        ReqClass::Writeback => mcs[mci].service_write(now),
                        ReqClass::DemandRead | ReqClass::StoreRfo => mcs[mci].service_read(now),
                    };
                    stats.mc_busy_cycles[mci] += out.busy_added;
                    {
                        let st = &mut mc_st[mci];
                        st.inflight.push_back(out.completion);
                        // Every older request that was ready and passed
                        // over counts one step toward its starvation cap.
                        for p in st.pending.iter_mut() {
                            if p.arrival <= now && p.id < req.id {
                                p.bypassed = p.bypassed.saturating_add(1);
                            }
                        }
                    }
                    policies[mci].on_service(&req);
                    probe.mc_service(
                        mci,
                        now,
                        out.busy_added,
                        mc_st[mci].pending.len() + mc_st[mci].inflight.len(),
                        matches!(req.class, ReqClass::Writeback),
                    );
                    // A queue slot frees when this transfer completes: that
                    // resolves the retry time for threads NACKed while all
                    // occupants were unresolved.
                    let slot_free = out.completion.max(now + 1);
                    for w in std::mem::take(&mut mc_st[mci].retry) {
                        probe.stall(w, StallKind::Nack, ts[w as usize].park_start, slot_free);
                        ts[w as usize].wait = Wait::None;
                        push(&mut heap, &mut seq, slot_free, w);
                    }
                    if let (Some(b), Some(owner)) = (req.bank, req.tid) {
                        // A demand read or RFO: the MSHR it holds resolves,
                        // and so does the owner thread's wait time. A remote
                        // line still has to cross the shared inter-socket
                        // link (occupancy + remote latency adder) before the
                        // owner's socket sees it.
                        let completion = if numa_on
                            && mc_st[mci].socket != core_socket[ts[owner as usize].core]
                        {
                            let ls = out.completion.max(link_busy);
                            link_busy = ls + numa_link_cycles;
                            link_busy + numa_read_extra
                        } else {
                            out.completion
                        };
                        {
                            let bs = &mut bank_st[b];
                            bs.pending -= 1;
                            bs.inflight.push_back(completion);
                        }
                        for w in std::mem::take(&mut bank_st[b].retry) {
                            probe.stall(w, StallKind::Nack, ts[w as usize].park_start, slot_free);
                            ts[w as usize].wait = Wait::None;
                            push(&mut heap, &mut seq, slot_free, w);
                        }
                        let oi = owner as usize;
                        let t = &mut ts[oi];
                        let ready = match req.class {
                            ReqClass::StoreRfo => {
                                t.stores_pending -= 1;
                                t.stores.push_back(completion);
                                completion
                            }
                            _ => {
                                t.loads_pending -= 1;
                                let data_ready = completion + cfg.mem.extra_latency;
                                t.loads.push_back(data_ready);
                                data_ready
                            }
                        };
                        t.drain_until = t.drain_until.max(ready);
                        if t.finished {
                            // The owner ran off the end of its program with
                            // this request still in flight: extend the drain.
                            stats.end_cycle = stats.end_cycle.max(t.drain_until);
                        } else if t.wait == Wait::Data {
                            let kind = t.park_kind;
                            let start = t.park_start;
                            t.wait = Wait::None;
                            probe.stall(owner, kind, start, ready);
                            push(&mut heap, &mut seq, ready, owner);
                        }
                    }
                    if !mc_st[mci].pending.is_empty() {
                        let south = mcs[mci].south_busy;
                        let min_arr = mc_st[mci]
                            .pending
                            .iter()
                            .map(|r| r.arrival)
                            .min()
                            .expect("pending is non-empty");
                        sched_arb!(mci, south.max(min_arr).max(now));
                    }
                    continue;
                }
            };
            let op = match ts[tid as usize].pending.take() {
                Some(op) => op,
                None => match ts[tid as usize].program.next() {
                    Some(op) => op,
                    None => {
                        {
                            let t = &mut ts[tid as usize];
                            t.finished = true;
                            live -= 1;
                            stats.end_cycle = stats.end_cycle.max(now).max(t.drain_until);
                        }
                        in_gang[tid as usize] = false;
                        gang_update!(now);
                        continue;
                    }
                },
            };
            let core = ts[tid as usize].core;
            match op {
                Op::Delay(c) => {
                    push(&mut heap, &mut seq, now + c as u64, tid);
                }
                Op::Compute(flops) => {
                    let cycles = (flops as f64 / cfg.core.fpu_flops_per_cycle)
                        .ceil()
                        .max(1.0) as u64;
                    let start = now.max(fpu_busy[core]);
                    if start > now {
                        probe.stall(tid, StallKind::Fpu, now, start);
                    }
                    fpu_busy[core] = start + cycles;
                    stats.flops += flops as u64;
                    push(&mut heap, &mut seq, start + cycles, tid);
                }
                Op::Barrier(id) => {
                    let b = barriers.entry(id).or_insert(BarrierState {
                        arrivals: 0,
                        release: 0,
                        waiters: Vec::new(),
                    });
                    b.arrivals += 1;
                    b.release = b.release.max(now);
                    if b.arrivals == n_threads {
                        let release = b.release;
                        let waiters = std::mem::take(&mut b.waiters);
                        for &w in &waiters {
                            probe.stall(w, StallKind::Barrier, ts[w as usize].park_start, release);
                            ts[w as usize].wait = Wait::None;
                            in_gang[w as usize] = true;
                            push(&mut heap, &mut seq, release, w);
                        }
                        push(&mut heap, &mut seq, release, tid);
                        probe.barrier_release(id, release);
                        if self.measure_after_barrier == Some(id) {
                            stats.reset_window(release);
                            probe.window_reset(release);
                        }
                        gang_update!(release);
                    } else {
                        ts[tid as usize].wait = Wait::Barrier;
                        ts[tid as usize].park_start = now;
                        b.waiters.push(tid);
                        // Leave the gang while parked, else a straggler on
                        // the way to the barrier could deadlock the window.
                        in_gang[tid as usize] = false;
                        gang_update!(now);
                    }
                }
                Op::Read(addr) | Op::Write(addr) => {
                    let is_write = matches!(op, Op::Write(_));
                    // Gang drift window: a thread too far ahead of the
                    // slowest gang member parks until the gang catches up.
                    if let Some(w) = gang_window {
                        if in_gang[tid as usize]
                            && gang_count[tid as usize] >= gang_min.saturating_add(w)
                        {
                            ts[tid as usize].pending = Some(op);
                            ts[tid as usize].wait = Wait::Drift;
                            ts[tid as usize].park_start = now;
                            drift_parked.push(tid);
                            continue;
                        }
                    }
                    if !inline {
                        // ===== Arbitrated (policy) path =====
                        // Budget checks: in-flight completion times may be
                        // unresolved (still awaiting arbitration), so the
                        // wake-up is only known when a resolved entry
                        // exists; otherwise park until one of this
                        // thread's requests is serviced.
                        if !is_write {
                            let t = &mut ts[tid as usize];
                            retain_future(&mut t.loads, now);
                            if t.loads.len() + t.loads_pending >= outstanding_limit {
                                t.pending = Some(op);
                                if let Some(&wake) = t.loads.iter().min() {
                                    probe.stall(tid, StallKind::LoadMiss, now, wake);
                                    push(&mut heap, &mut seq, wake, tid);
                                } else {
                                    t.wait = Wait::Data;
                                    t.park_kind = StallKind::LoadMiss;
                                    t.park_start = now;
                                }
                                continue;
                            }
                        } else {
                            let t = &mut ts[tid as usize];
                            retain_future(&mut t.stores, now);
                            if t.stores.len() + t.stores_pending >= store_buffer {
                                t.pending = Some(op);
                                if let Some(&wake) = t.stores.iter().min() {
                                    probe.stall(tid, StallKind::StoreBuffer, now, wake);
                                    push(&mut heap, &mut seq, wake, tid);
                                } else {
                                    t.wait = Wait::Data;
                                    t.park_kind = StallKind::StoreBuffer;
                                    t.park_start = now;
                                }
                                continue;
                            }
                        }
                        // Memory-pipe issue slot.
                        let (pipe_idx, &pipe_free) = pipes[core]
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, &b)| b)
                            .expect("mem_pipes > 0");
                        if pipe_free > now {
                            ts[tid as usize].pending = Some(op);
                            probe.stall(tid, StallKind::Pipe, now, pipe_free);
                            push(&mut heap, &mut seq, pipe_free, tid);
                            continue;
                        }
                        let bank = cfg.map.bank(addr) as usize;
                        let raw_mc = cfg.map.controller(addr) as usize;
                        let my_sock = core_socket[core];
                        // NUMA controller remap, as on the FIFO fast path.
                        // The remote link/latency charge happens at service
                        // time in the arbitration step, where the completion
                        // is resolved.
                        let mc = if numa_on {
                            let home = homes.home(addr, my_sock);
                            home as usize * mps + raw_mc % mps
                        } else {
                            raw_mc
                        };
                        if !cache.contains(addr) {
                            retain_future(&mut mc_st[mc].inflight, now);
                            retain_future(&mut bank_st[bank].inflight, now);
                            let mc_full =
                                mc_st[mc].pending.len() + mc_st[mc].inflight.len() >= queue_depth;
                            let bank_full = bank_st[bank].pending + bank_st[bank].inflight.len()
                                >= mshr_per_bank;
                            if mc_full || bank_full {
                                stats.nacks += 1;
                                ts[tid as usize].pending = Some(op);
                                pipes[core][pipe_idx] = now + 2;
                                probe.nack(now, tid, mc, bank, mc_full);
                                // The earliest slot release is the earliest
                                // *resolved* completion; when every occupant
                                // still awaits arbitration the time is
                                // unknowable — park until the next service.
                                let known = if mc_full {
                                    mc_st[mc].inflight.iter().min().copied()
                                } else {
                                    bank_st[bank].inflight.iter().min().copied()
                                };
                                match known {
                                    Some(wake) => {
                                        let retry_at = wake.max(now + 1);
                                        probe.stall(tid, StallKind::Nack, now, retry_at);
                                        push(&mut heap, &mut seq, retry_at, tid);
                                    }
                                    None => {
                                        let t = &mut ts[tid as usize];
                                        t.wait = Wait::Retry;
                                        t.park_kind = StallKind::Nack;
                                        t.park_start = now;
                                        if mc_full {
                                            mc_st[mc].retry.push(tid);
                                        } else {
                                            bank_st[bank].retry.push(tid);
                                        }
                                    }
                                }
                                continue;
                            }
                        }
                        pipes[core][pipe_idx] = now + 1;
                        // L2 bank access.
                        let bank_start = (now + 1).max(bank_busy[bank]);
                        bank_busy[bank] = bank_start + cfg.l2.bank_cycles;
                        stats.bank_accesses[bank] += 1;
                        stats.mem_ops += 1;
                        probe.bank_access(bank, bank_start);
                        let old_count = gang_count[tid as usize];
                        gang_count[tid as usize] += 1;
                        if old_count == gang_min {
                            gang_update!(now);
                        }
                        let bank_done = bank_start + cfg.l2.bank_cycles;
                        match cache.access(addr, is_write) {
                            Access::Hit => {
                                stats.l2_hits += 1;
                                let resume = if is_write {
                                    bank_done
                                } else {
                                    bank_start + cfg.l2.hit_latency
                                };
                                push(&mut heap, &mut seq, resume, tid);
                            }
                            Access::Miss { writeback } => {
                                stats.l2_misses += 1;
                                if let Some(victim) = writeback {
                                    let vraw = cfg.map.controller(victim) as usize;
                                    let (vmc, varrive) = if numa_on {
                                        let vh = homes.home(victim, my_sock);
                                        let arr = if vh != my_sock {
                                            let ls = bank_done.max(link_busy);
                                            link_busy = ls + numa_link_cycles;
                                            link_busy + numa_write_extra
                                        } else {
                                            bank_done
                                        };
                                        (vh as usize * mps + vraw % mps, arr)
                                    } else {
                                        (vraw, bank_done)
                                    };
                                    stats.mc_write_bytes[vmc] += line_bytes;
                                    stats.l2_writebacks += 1;
                                    next_req += 1;
                                    admit!(
                                        vmc,
                                        MemRequest {
                                            id: next_req,
                                            arrival: varrive,
                                            addr: victim,
                                            class: ReqClass::Writeback,
                                            tid: None,
                                            bank: None,
                                            bypassed: 0,
                                        }
                                    );
                                }
                                stats.mc_read_bytes[mc] += line_bytes;
                                next_req += 1;
                                admit!(
                                    mc,
                                    MemRequest {
                                        id: next_req,
                                        arrival: bank_done,
                                        addr,
                                        class: if is_write {
                                            ReqClass::StoreRfo
                                        } else {
                                            ReqClass::DemandRead
                                        },
                                        tid: Some(tid),
                                        bank: Some(bank),
                                        bypassed: 0,
                                    }
                                );
                                bank_st[bank].pending += 1;
                                let t = &mut ts[tid as usize];
                                if is_write {
                                    // Store miss: the RFO drains from the
                                    // store buffer; the thread moves on.
                                    t.stores_pending += 1;
                                    push(&mut heap, &mut seq, bank_done, tid);
                                } else {
                                    t.loads_pending += 1;
                                    if t.loads.len() + t.loads_pending >= outstanding_limit {
                                        // Budget full (the T2 case): block
                                        // until data returns — a time that
                                        // exists only after arbitration.
                                        if let Some(&wake) = t.loads.iter().min() {
                                            probe.stall(tid, StallKind::LoadMiss, bank_done, wake);
                                            push(&mut heap, &mut seq, wake, tid);
                                        } else {
                                            t.wait = Wait::Data;
                                            t.park_kind = StallKind::LoadMiss;
                                            t.park_start = bank_done;
                                        }
                                    } else {
                                        // Hit-under-miss headroom.
                                        push(&mut heap, &mut seq, bank_done, tid);
                                    }
                                }
                            }
                        }
                        continue;
                    }
                    // ===== Historical FIFO fast path =====
                    // Kept statement-for-statement: completion times are
                    // resolved at admission, no controller events exist, and
                    // `tests/policy_differential.rs` pins the statistics
                    // bitwise against a pre-policy capture.
                    // Loads: outstanding-miss budget; wait for the oldest
                    // miss to land.
                    if !is_write {
                        let t = &mut ts[tid as usize];
                        prune(&mut t.loads, now);
                        if t.loads.len() >= outstanding_limit {
                            let wake = *t.loads.front().unwrap();
                            t.pending = Some(op);
                            probe.stall(tid, StallKind::LoadMiss, now, wake);
                            push(&mut heap, &mut seq, wake, tid);
                            continue;
                        }
                    } else {
                        // Stores: TSO store buffer; wait for the oldest RFO.
                        let t = &mut ts[tid as usize];
                        prune(&mut t.stores, now);
                        if t.stores.len() >= store_buffer {
                            let wake = *t.stores.front().unwrap();
                            t.pending = Some(op);
                            probe.stall(tid, StallKind::StoreBuffer, now, wake);
                            push(&mut heap, &mut seq, wake, tid);
                            continue;
                        }
                    }
                    // Memory-pipe issue slot.
                    let (pipe_idx, &pipe_free) = pipes[core]
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &b)| b)
                        .expect("mem_pipes > 0");
                    if pipe_free > now {
                        ts[tid as usize].pending = Some(op);
                        probe.stall(tid, StallKind::Pipe, now, pipe_free);
                        push(&mut heap, &mut seq, pipe_free, tid);
                        continue;
                    }
                    // NACK checks: a miss needs a controller-queue slot and
                    // a bank miss buffer; if either is full the request is
                    // rejected and retried when the blocking entry
                    // completes. The probe occupies the pipe like any other
                    // access.
                    let bank = cfg.map.bank(addr) as usize;
                    let raw_mc = cfg.map.controller(addr) as usize;
                    let my_sock = core_socket[core];
                    // NUMA: the page's home socket selects the controller
                    // group; the raw mapping selects the controller within
                    // it. Remote iff the home is not the issuer's socket.
                    let (mc, remote) = if numa_on {
                        let home = homes.home(addr, my_sock);
                        (home as usize * mps + raw_mc % mps, home != my_sock)
                    } else {
                        (raw_mc, false)
                    };
                    if !cache.contains(addr) {
                        prune(&mut mc_admitted[mc], now);
                        prune(&mut bank_inflight[bank], now);
                        let mc_full = mc_admitted[mc].len() >= queue_depth;
                        let bank_full = bank_inflight[bank].len() >= mshr_per_bank;
                        if mc_full || bank_full {
                            stats.nacks += 1;
                            let wake = if mc_full {
                                mc_admitted[mc][mc_admitted[mc].len() - queue_depth]
                            } else {
                                bank_inflight[bank][bank_inflight[bank].len() - mshr_per_bank]
                            };
                            ts[tid as usize].pending = Some(op);
                            pipes[core][pipe_idx] = now + 2;
                            let retry_at = wake.max(now + 1);
                            probe.nack(now, tid, mc, bank, mc_full);
                            probe.stall(tid, StallKind::Nack, now, retry_at);
                            push(&mut heap, &mut seq, retry_at, tid);
                            continue;
                        }
                    }
                    pipes[core][pipe_idx] = now + 1;
                    // L2 bank access.
                    let bank_start = (now + 1).max(bank_busy[bank]);
                    bank_busy[bank] = bank_start + cfg.l2.bank_cycles;
                    stats.bank_accesses[bank] += 1;
                    stats.mem_ops += 1;
                    probe.bank_access(bank, bank_start);
                    // The op is committed: advance this thread's gang
                    // progress.
                    let old_count = gang_count[tid as usize];
                    gang_count[tid as usize] += 1;
                    if old_count == gang_min {
                        gang_update!(now);
                    }
                    let bank_done = bank_start + cfg.l2.bank_cycles;
                    match cache.access(addr, is_write) {
                        Access::Hit => {
                            stats.l2_hits += 1;
                            // A store hit retires through the store buffer:
                            // the thread moves on at once.
                            let resume = if is_write {
                                bank_done
                            } else {
                                bank_start + cfg.l2.hit_latency
                            };
                            push(&mut heap, &mut seq, resume, tid);
                        }
                        Access::Miss { writeback } => {
                            stats.l2_misses += 1;
                            if let Some(victim) = writeback {
                                // Write-backs come from the L2's eviction
                                // buffers: southbound transfer, no bank
                                // MSHR, no thread wait. A remote victim's
                                // line crosses the inter-socket link before
                                // its home controller can serve it.
                                let vraw = cfg.map.controller(victim) as usize;
                                let (vmc, varrive) = if numa_on {
                                    let vh = homes.home(victim, my_sock);
                                    let arr = if vh != my_sock {
                                        let ls = bank_done.max(link_busy);
                                        link_busy = ls + numa_link_cycles;
                                        link_busy + numa_write_extra
                                    } else {
                                        bank_done
                                    };
                                    (vh as usize * mps + vraw % mps, arr)
                                } else {
                                    (vraw, bank_done)
                                };
                                let out = mcs[vmc].service_write(varrive);
                                stats.mc_write_bytes[vmc] += line_bytes;
                                stats.mc_busy_cycles[vmc] += out.busy_added;
                                stats.l2_writebacks += 1;
                                mc_admitted[vmc].push_back(out.completion);
                                probe.mc_service(
                                    vmc,
                                    bank_done,
                                    out.busy_added,
                                    mc_admitted[vmc].len(),
                                    true,
                                );
                            }
                            let out = mcs[mc].service_read(bank_done);
                            // The controller's queue slot frees at its own
                            // completion; a *remote* line additionally
                            // crosses the shared link (occupancy) and pays
                            // the remote latency adder before the issuing
                            // socket sees it.
                            let completion = if remote {
                                let ls = out.completion.max(link_busy);
                                link_busy = ls + numa_link_cycles;
                                link_busy + numa_read_extra
                            } else {
                                out.completion
                            };
                            stats.mc_read_bytes[mc] += line_bytes;
                            stats.mc_busy_cycles[mc] += out.busy_added;
                            mc_admitted[mc].push_back(out.completion);
                            bank_inflight[bank].push_back(completion);
                            probe.mc_service(
                                mc,
                                bank_done,
                                out.busy_added,
                                mc_admitted[mc].len(),
                                false,
                            );
                            let t = &mut ts[tid as usize];
                            if is_write {
                                // Store miss: the RFO drains from the store
                                // buffer; the thread is not blocked.
                                t.stores.push_back(completion);
                                t.drain_until = t.drain_until.max(completion);
                                push(&mut heap, &mut seq, bank_done, tid);
                            } else {
                                let data_ready = completion + cfg.mem.extra_latency;
                                t.loads.push_back(data_ready);
                                t.drain_until = t.drain_until.max(data_ready);
                                if t.loads.len() >= outstanding_limit {
                                    // Budget full (the T2 case): block until
                                    // the data returns.
                                    let wake = *t.loads.front().unwrap();
                                    probe.stall(tid, StallKind::LoadMiss, bank_done, wake);
                                    push(&mut heap, &mut seq, wake, tid);
                                } else {
                                    // Hit-under-miss headroom (ablations).
                                    push(&mut heap, &mut seq, bank_done, tid);
                                }
                            }
                        }
                    }
                }
            }
        }

        assert_eq!(
            live, 0,
            "deadlock: {live} thread(s) never finished (barrier mismatch?)"
        );
        // Request conservation (arbitrated path; trivially empty on the
        // FIFO fast path): every admitted request was serviced exactly
        // once, every MSHR released, every parked thread released.
        for (i, st) in mc_st.iter().enumerate() {
            assert!(
                st.pending.is_empty(),
                "conservation: controller {i} still holds {} unserviced request(s)",
                st.pending.len()
            );
            assert!(
                st.retry.is_empty(),
                "conservation: controller {i} still parks {} NACKed thread(s)",
                st.retry.len()
            );
        }
        for (i, b) in bank_st.iter().enumerate() {
            assert_eq!(
                b.pending, 0,
                "conservation: bank {i} MSHRs still track unserviced misses"
            );
            assert!(
                b.retry.is_empty(),
                "conservation: bank {i} still parks NACKed threads"
            );
        }
        for (i, t) in ts.iter().enumerate() {
            assert_eq!(
                t.loads_pending + t.stores_pending,
                0,
                "conservation: thread {i} ended with unresolved requests"
            );
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{chain_with_barriers, StreamLoop, StreamSpec};

    fn ops(v: Vec<Op>) -> Program {
        Box::new(v.into_iter())
    }

    /// A T2 config with jitter disabled, for cycle-exact unit tests.
    fn exact_cfg() -> ChipConfig {
        let mut cfg = ChipConfig::ultrasparc_t2();
        cfg.mem.service_jitter = 0.0;
        cfg
    }

    #[test]
    fn numa_remote_read_pays_link_occupancy_and_latency() {
        use t2opt_core::mapping::PagePlacement;
        let mut cfg = ChipConfig::preset("2s-numa").unwrap();
        cfg.mem.service_jitter = 0.0;
        let run_one = |cfg: ChipConfig| {
            Simulation::new(cfg)
                .run(vec![ThreadSpec::new(0, ops(vec![Op::Read(0)]))])
                .end_cycle
        };
        let local = run_one(cfg.clone());
        let mut rcfg = cfg.clone();
        rcfg.placement = PagePlacement::Remote;
        let remote = run_one(rcfg);
        // One uncontended read: the remote run pays exactly one link
        // crossing plus the remote latency adder on top of the local time.
        assert_eq!(
            remote - local,
            cfg.numa.link_cycles_per_line + cfg.numa.remote_read_extra
        );
    }

    #[test]
    fn placement_is_inert_on_single_socket_chips() {
        use t2opt_core::mapping::PagePlacement;
        let base = exact_cfg();
        let mut moved = exact_cfg();
        moved.placement = PagePlacement::Remote;
        let run = |cfg: ChipConfig| {
            let programs: Vec<Program> = (0..16)
                .map(|t| {
                    Box::new(StreamLoop::new(
                        vec![StreamSpec::load(t as u64 * 65536)],
                        256,
                        8,
                        0.0,
                        64,
                    )) as Program
                })
                .collect();
            Simulation::new(cfg).run_programs(programs, |tid| tid % 8)
        };
        assert_eq!(run(base), run(moved));
    }

    #[test]
    fn single_read_latency() {
        let cfg = exact_cfg();
        let sim = Simulation::new(cfg.clone());
        let stats = sim.run(vec![ThreadSpec::new(0, ops(vec![Op::Read(0)]))]);
        // issue(1) + bank(2) + command(3) + read_service(12) + extra(100).
        let expected = 1
            + cfg.l2.bank_cycles
            + cfg.mem.command_cycles
            + cfg.mem.read_service
            + cfg.mem.extra_latency;
        assert_eq!(stats.end_cycle, expected);
        assert_eq!(stats.l2_misses, 1);
        assert_eq!(stats.total_read_bytes(), 64);
    }

    #[test]
    fn hit_is_much_faster_than_miss() {
        let sim = Simulation::new(exact_cfg());
        let miss = sim.run(vec![ThreadSpec::new(0, ops(vec![Op::Read(0)]))]);
        let hit = sim.run(vec![ThreadSpec::new(
            0,
            ops(vec![Op::Read(0), Op::Read(8)]),
        )]);
        let hit_cost = hit.end_cycle - miss.end_cycle;
        assert!(hit_cost < 40, "hit cost {hit_cost} should be ~hit_latency");
        assert_eq!(hit.l2_hits, 1);
    }

    #[test]
    fn write_allocates_and_writes_back_on_eviction() {
        let sim = Simulation::new(exact_cfg());
        let cfg = sim.config().clone();
        // Dirty a line, then stream enough lines through its set to evict.
        let set_stride = (cfg.l2.sets() * cfg.l2.line) as u64;
        let mut v = vec![Op::Write(0)];
        for w in 1..=cfg.l2.ways as u64 {
            v.push(Op::Read(w * set_stride));
        }
        let stats = sim.run(vec![ThreadSpec::new(0, ops(v))]);
        assert_eq!(stats.l2_writebacks, 1);
        assert_eq!(stats.total_write_bytes(), 64);
    }

    #[test]
    fn store_misses_do_not_block_the_thread() {
        // A burst of store misses (fitting the store buffer) costs far less
        // thread time than the same number of load misses.
        let sim = Simulation::new(exact_cfg());
        let stores: Vec<Op> = (0..8u64).map(|i| Op::Write(i * 4096)).collect();
        let loads: Vec<Op> = (0..8u64).map(|i| Op::Read((i + 100) * 4096)).collect();
        let s = sim.run(vec![ThreadSpec::new(0, ops(stores))]);
        let l = sim.run(vec![ThreadSpec::new(0, ops(loads))]);
        assert!(
            s.end_cycle * 2 < l.end_cycle,
            "stores ({}) should overlap, loads ({}) serialize",
            s.end_cycle,
            l.end_cycle
        );
    }

    #[test]
    fn full_store_buffer_stalls() {
        let mut cfg = exact_cfg();
        cfg.core.store_buffer = 2;
        let sim = Simulation::new(cfg);
        let many: Vec<Op> = (0..16u64).map(|i| Op::Write(i * 4096)).collect();
        let few: Vec<Op> = (0..2u64).map(|i| Op::Write(i * 4096)).collect();
        let many_t = sim.run(vec![ThreadSpec::new(0, ops(many))]).end_cycle;
        let few_t = sim.run(vec![ThreadSpec::new(0, ops(few))]).end_cycle;
        assert!(
            many_t > 4 * few_t,
            "16 stores through a 2-entry buffer must serialize: {few_t} vs {many_t}"
        );
    }

    #[test]
    fn compute_serializes_on_shared_fpu() {
        let sim = Simulation::new(exact_cfg());
        // 8 threads on one core, 100 flops each, FPU does 1 flop/cycle:
        // must take ≈ 800 cycles, not 100.
        let threads: Vec<ThreadSpec> = (0..8)
            .map(|_| ThreadSpec::new(0, ops(vec![Op::Compute(100)])))
            .collect();
        let stats = sim.run(threads);
        assert!(stats.end_cycle >= 800, "got {}", stats.end_cycle);
        assert_eq!(stats.flops, 800);
    }

    #[test]
    fn compute_scales_across_cores() {
        let sim = Simulation::new(exact_cfg());
        let threads: Vec<ThreadSpec> = (0..8)
            .map(|c| ThreadSpec::new(c, ops(vec![Op::Compute(100)])))
            .collect();
        let stats = sim.run(threads);
        assert!(
            stats.end_cycle < 200,
            "independent FPUs, got {}",
            stats.end_cycle
        );
    }

    #[test]
    fn barrier_synchronizes_and_opens_window() {
        let sim = Simulation::new(exact_cfg()).measure_after_barrier(0);
        let mk = |delay: u32| ops(vec![Op::Delay(delay), Op::Barrier(0), Op::Delay(50)]);
        let stats = sim.run(vec![
            ThreadSpec::new(0, mk(1000)),
            ThreadSpec::new(1, mk(10)),
        ]);
        // Window starts when the slowest thread reaches the barrier.
        assert_eq!(stats.start_cycle, 1000);
        assert_eq!(stats.end_cycle, 1050);
        assert_eq!(stats.cycles(), 50);
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn core_capacity_enforced() {
        let sim = Simulation::t2();
        let threads: Vec<ThreadSpec> = (0..9)
            .map(|_| ThreadSpec::new(0, ops(vec![Op::Delay(1)])))
            .collect();
        sim.run(threads);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn mismatched_barriers_deadlock_is_detected() {
        let sim = Simulation::t2();
        sim.run(vec![
            ThreadSpec::new(0, ops(vec![Op::Barrier(0)])),
            ThreadSpec::new(1, ops(vec![Op::Delay(1)])),
        ]);
    }

    /// Builds the 64-thread STREAM-triad-like workload of the paper with
    /// array-base offsets `offs` (A store, B/C loads) and returns the run.
    fn triad_run(offs: [u64; 3]) -> SimStats {
        triad_run_with(offs, crate::policy::PolicyKind::Fifo)
    }

    /// As [`triad_run`], but under the given arbitration policy.
    fn triad_run_with(offs: [u64; 3], policy: crate::policy::PolicyKind) -> SimStats {
        let mut cfg = ChipConfig::ultrasparc_t2();
        cfg.policy = policy;
        let sim = Simulation::new(cfg);
        let n = 1 << 12; // elements per thread chunk
        let chunk_bytes = (n * 8) as u64;
        let threads: Vec<ThreadSpec> = (0..64)
            .map(|t| {
                let a = offs[0] + t as u64 * chunk_bytes;
                let b = (1 << 30) + offs[1] + t as u64 * chunk_bytes;
                let c = (2 << 30) + offs[2] + t as u64 * chunk_bytes;
                ThreadSpec::new(
                    (t % 8) as usize,
                    Box::new(StreamLoop::new(
                        vec![
                            StreamSpec::load(b),
                            StreamSpec::load(c),
                            StreamSpec::store(a),
                        ],
                        n,
                        8,
                        2.0,
                        64,
                    )) as Program,
                )
            })
            .collect();
        sim.run(threads)
    }

    #[test]
    fn congruent_triad_convoys_spread_triad_flies() {
        // The paper's Fig. 2/Fig. 4 in miniature: all array bases congruent
        // mod 512 B → one controller at a time; optimal offsets → all four.
        let convoy = triad_run([0, 0, 0]);
        let spread = triad_run([0, 128, 256]);
        assert_eq!(convoy.total_read_bytes(), spread.total_read_bytes());
        let speedup = convoy.cycles() as f64 / spread.cycles() as f64;
        assert!(
            speedup > 1.5,
            "offset optimization must give a large speedup, got {speedup:.2}×"
        );
        let convoy_util =
            convoy.mc_busy_cycles.iter().sum::<u64>() as f64 / (4 * convoy.cycles()) as f64;
        let spread_util =
            spread.mc_busy_cycles.iter().sum::<u64>() as f64 / (4 * spread.cycles()) as f64;
        assert!(
            spread_util > 1.3 * convoy_util,
            "utilization gap: convoy {convoy_util:.2} vs spread {spread_util:.2}"
        );
    }

    #[test]
    fn offset_32_words_recovers_partially() {
        // Fig. 2: at odd multiples of 32 DP words two controllers are
        // addressed → roughly halfway recovery.
        let convoy = triad_run([0, 0, 0]);
        let half = triad_run([0, 256, 512]); // B flips bit 8, C congruent
        let spread = triad_run([0, 128, 256]);
        let t_convoy = convoy.cycles() as f64;
        let t_half = half.cycles() as f64;
        let t_spread = spread.cycles() as f64;
        assert!(
            t_half < 0.9 * t_convoy,
            "two controllers must beat one: {t_half} vs {t_convoy}"
        );
        assert!(
            t_half > 1.05 * t_spread,
            "two controllers must trail three: {t_half} vs {t_spread}"
        );
    }

    #[test]
    fn single_thread_streams_are_latency_bound() {
        // One thread, one outstanding miss: bandwidth ≈ 64 B per full miss
        // latency — far below one controller's service rate.
        let sim = Simulation::new(exact_cfg());
        let cfg = sim.config().clone();
        let n = 1 << 14;
        let stats = sim.run(vec![ThreadSpec::new(
            0,
            Box::new(StreamLoop::new(vec![StreamSpec::load(0)], n, 8, 0.0, 64)) as Program,
        )]);
        let lines = (n * 8 / 64) as u64;
        let per_miss = stats.cycles() as f64 / lines as f64;
        let min_latency = (1 + cfg.l2.bank_cycles + cfg.mem.read_service) as f64;
        assert!(
            per_miss >= min_latency,
            "per-miss time {per_miss} below physical minimum"
        );
        assert!(
            per_miss > 100.0,
            "single thread must be latency-bound: {per_miss}"
        );
    }

    #[test]
    fn more_threads_hide_latency() {
        let run = |n_threads: usize| {
            let sim = Simulation::t2();
            let n = 1 << 13;
            let threads: Vec<ThreadSpec> = (0..n_threads)
                .map(|t| {
                    let base = (t as u64) * (16 << 20) + 128 * (t as u64 % 4);
                    ThreadSpec::new(
                        t % 8,
                        Box::new(StreamLoop::new(vec![StreamSpec::load(base)], n, 8, 0.0, 64))
                            as Program,
                    )
                })
                .collect();
            let stats = sim.run(threads);
            let cfg = ChipConfig::ultrasparc_t2();
            stats.actual_bandwidth_gbs(&cfg)
        };
        let bw8 = run(8);
        let bw32 = run(32);
        assert!(
            bw32 > 2.0 * bw8,
            "32 threads should hide far more latency than 8: {bw8:.1} vs {bw32:.1} GB/s"
        );
    }

    #[test]
    fn warmup_window_excludes_cold_misses() {
        let sim = Simulation::new(exact_cfg()).measure_after_barrier(0);
        // Small array fits in L2: sweep twice; the measured window sees only
        // hits.
        let sweep = || StreamLoop::new(vec![StreamSpec::load(0)], 1 << 10, 8, 0.0, 64);
        let program = chain_with_barriers(vec![sweep(), sweep()], 0);
        let stats = sim.run(vec![ThreadSpec::new(0, program)]);
        assert_eq!(stats.l2_misses, 0, "second sweep must be all hits");
        assert!(stats.l2_hits > 0);
    }

    #[test]
    fn outstanding_misses_ablation_helps_a_lone_thread() {
        // With 4 outstanding misses a single streaming thread overlaps
        // latency and finishes much sooner.
        let mut cfg = exact_cfg();
        let run = |cfg: &ChipConfig| {
            let sim = Simulation::new(cfg.clone());
            sim.run(vec![ThreadSpec::new(
                0,
                Box::new(StreamLoop::new(
                    vec![StreamSpec::load(0)],
                    1 << 13,
                    8,
                    0.0,
                    64,
                )) as Program,
            )])
            .cycles()
        };
        let one = run(&cfg);
        cfg.core.outstanding_misses = 4;
        let four = run(&cfg);
        assert!(
            (four as f64) < 0.5 * one as f64,
            "4 outstanding misses should at least halve the time: {one} -> {four}"
        );
    }

    #[test]
    fn bank_mshr_limit_throttles_concentrated_misses() {
        // All threads stream with a 512 B stride through ONE bank:
        // outstanding misses are capped by that bank's MSHRs; spreading the
        // same traffic over all 8 banks lifts the cap.
        let run = |spread: bool| {
            let mut cfg = ChipConfig::ultrasparc_t2();
            cfg.core.gang_window = None; // isolate the MSHR effect
            let sim = Simulation::new(cfg);
            let threads: Vec<ThreadSpec> = (0..64)
                .map(|t| {
                    let base =
                        (t as u64) * (16 << 20) + if spread { 64 * (t as u64 % 8) } else { 0 };
                    let ops_v: Vec<Op> = (0..256u64).map(|i| Op::Read(base + i * 512)).collect();
                    ThreadSpec::new((t % 8) as usize, Box::new(ops_v.into_iter()) as Program)
                })
                .collect();
            sim.run(threads).cycles()
        };
        let one_bank = run(false);
        let all_banks = run(true);
        assert!(
            one_bank as f64 > 1.8 * all_banks as f64,
            "single-bank misses must be MSHR-throttled: {one_bank} vs {all_banks}"
        );
    }

    #[test]
    fn run_programs_matches_explicit_thread_specs() {
        let sim = Simulation::new(exact_cfg());
        let mk = || -> Vec<Program> {
            (0..16u64)
                .map(|t| {
                    let ops_v: Vec<Op> = (0..64u64)
                        .map(|i| Op::Read(t * (1 << 20) + i * 64))
                        .collect();
                    Box::new(ops_v.into_iter()) as Program
                })
                .collect()
        };
        let via_batch = sim.run_programs(mk(), |tid| tid % 8);
        let via_specs = sim.run(
            mk().into_iter()
                .enumerate()
                .map(|(tid, p)| ThreadSpec::new(tid % 8, p))
                .collect(),
        );
        assert_eq!(via_batch, via_specs);
    }

    #[test]
    fn deterministic_repeatability() {
        let a = triad_run([0, 128, 256]);
        let b = triad_run([0, 128, 256]);
        assert_eq!(a, b, "simulations must be bit-reproducible");
    }

    #[test]
    fn arbitrated_policies_conserve_traffic_and_stay_deterministic() {
        use crate::policy::PolicyKind;
        let fifo = triad_run([0, 0, 0]);
        for policy in [
            PolicyKind::ReadFirst { starvation_cap: 8 },
            PolicyKind::FrFcfs { starvation_cap: 8 },
        ] {
            let a = triad_run_with([0, 0, 0], policy);
            let b = triad_run_with([0, 0, 0], policy);
            assert_eq!(a, b, "{policy:?} must be bit-reproducible");
            // Reordering changes *when*, never *what*: the traffic volume
            // is identical to FIFO's.
            assert_eq!(a.mem_ops, fifo.mem_ops, "{policy:?} op conservation");
            assert_eq!(a.l2_misses, fifo.l2_misses, "{policy:?} miss count");
            assert_eq!(
                a.total_read_bytes(),
                fifo.total_read_bytes(),
                "{policy:?} read traffic"
            );
            // Write-backs are eviction-order dependent (reordering shifts
            // which lines are still dirty at the end), so only per-run
            // conservation and closeness hold for them.
            assert_eq!(
                a.total_write_bytes(),
                a.l2_writebacks * 64,
                "{policy:?} write-back byte conservation"
            );
            let wr = a.total_write_bytes() as f64 / fifo.total_write_bytes() as f64;
            assert!(
                (0.9..1.1).contains(&wr),
                "{policy:?} write traffic far from FIFO's: {wr:.3}"
            );
            assert!(a.end_cycle > 0 && a.cycles() > 0);
        }
    }

    #[test]
    fn arbitrated_fifo_semantics_stay_close_to_the_inline_path() {
        // The inline FIFO path and the event-driven arbitration machinery
        // are different implementations of *nearly* the same discipline
        // (arbitration re-decides at service time, FIFO commits at
        // admission, and jitter draws land in a different order), so exact
        // equality is not expected — but a FIFO-like arbitrated policy with
        // an immediate starvation cap must land within a few percent on the
        // macroscopic observables. A large gap would mean the deferred
        // machinery models a different machine, not a different policy.
        let fifo = triad_run([0, 128, 256]);
        let arb = triad_run_with(
            [0, 128, 256],
            crate::policy::PolicyKind::ReadFirst { starvation_cap: 0 },
        );
        let ratio = arb.cycles() as f64 / fifo.cycles() as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "cap-0 read-first should approximate FIFO on a spread triad: {ratio:.3}"
        );
    }
}
