//! Shared banked L2 cache model: set-associative, LRU, write-back,
//! write-allocate.
//!
//! The T2's eight L2 banks share one 4 MB, 16-way array; bit 6 of the
//! address selects the bank within a controller pair (timing handled by the
//! engine), while this module tracks contents: hits, misses, dirty
//! evictions. Stores allocate (read-for-ownership) and mark lines dirty;
//! dirty victims produce write-backs — the traffic that makes the "actual"
//! STREAM triad volume 4/3 of the reported one.

use crate::config::L2Config;

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line absent; it has been allocated. If a dirty victim was evicted,
    /// its line base address is returned for the write-back.
    Miss {
        /// Base address of the evicted dirty line, if any.
        writeback: Option<u64>,
    },
}

/// The L2 content model.
pub struct L2Cache {
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    line_bits: u32,
    tick: u64,
}

impl L2Cache {
    /// Builds an empty cache with the given geometry.
    pub fn new(cfg: &L2Config) -> Self {
        let n_sets = cfg.sets();
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        assert!(cfg.ways > 0);
        L2Cache {
            sets: vec![vec![Way::default(); cfg.ways]; n_sets],
            set_mask: n_sets as u64 - 1,
            line_bits: cfg.line.trailing_zeros(),
            tick: 0,
        }
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_bits;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Accesses the line containing `addr`. On a miss the line is allocated
    /// (LRU victim), and a dirty victim's address is reported for
    /// write-back. `is_write` marks the line dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> Access {
        self.tick += 1;
        let (set_idx, tag) = self.index(addr);
        let set_bits = self.set_mask.count_ones();
        let set = &mut self.sets[set_idx];
        // Hit?
        for way in set.iter_mut() {
            if way.valid && way.tag == tag {
                way.stamp = self.tick;
                way.dirty |= is_write;
                return Access::Hit;
            }
        }
        // Miss: pick invalid way or LRU victim.
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.stamp } else { 0 })
            .map(|(i, _)| i)
            .expect("ways > 0");
        let old = set[victim];
        set[victim] = Way {
            tag,
            valid: true,
            dirty: is_write,
            stamp: self.tick,
        };
        let writeback = if old.valid && old.dirty {
            let line = (old.tag << set_bits) | set_idx as u64;
            Some(line << self.line_bits)
        } else {
            None
        };
        Access::Miss { writeback }
    }

    /// Whether the line containing `addr` is currently cached (no LRU
    /// update).
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        self.sets[set_idx].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates everything, returning the number of dirty lines that
    /// would have been written back.
    pub fn flush(&mut self) -> usize {
        let mut dirty = 0;
        for set in &mut self.sets {
            for way in set.iter_mut() {
                if way.valid && way.dirty {
                    dirty += 1;
                }
                *way = Way::default();
            }
        }
        dirty
    }

    /// Number of valid lines currently held (O(capacity); for tests).
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|w| w.valid).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> L2Cache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        L2Cache::new(&L2Config {
            bytes: 512,
            ways: 2,
            line: 64,
            bank_cycles: 2,
            hit_latency: 26,
            mshr_per_bank: 8,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        assert_eq!(c.access(0x1000, false), Access::Miss { writeback: None });
        assert_eq!(c.access(0x1000, false), Access::Hit);
        assert_eq!(c.access(0x1030, false), Access::Hit, "same line");
        assert_eq!(
            c.access(0x1040, false),
            Access::Miss { writeback: None },
            "next line"
        );
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache();
        // Set stride = 4 sets × 64 B = 256 B; these three map to set 0.
        c.access(0x0000, false);
        c.access(0x0100, false);
        c.access(0x0000, false); // refresh line 0
        c.access(0x0200, false); // evicts 0x0100 (LRU)
        assert!(c.contains(0x0000));
        assert!(!c.contains(0x0100));
        assert!(c.contains(0x0200));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small_cache();
        c.access(0x0000, true); // dirty
        c.access(0x0100, false);
        match c.access(0x0200, false) {
            Access::Miss {
                writeback: Some(addr),
            } => assert_eq!(addr, 0x0000),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small_cache();
        c.access(0x0000, false);
        c.access(0x0100, false);
        assert_eq!(c.access(0x0200, false), Access::Miss { writeback: None });
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small_cache();
        c.access(0x0000, false);
        c.access(0x0000, true); // hit, now dirty
        c.access(0x0100, false);
        match c.access(0x0200, false) {
            Access::Miss {
                writeback: Some(addr),
            } => assert_eq!(addr, 0x0000),
            other => panic!("dirty bit lost: {other:?}"),
        }
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = small_cache();
        for i in 0..1000u64 {
            c.access(i * 64, i % 3 == 0);
            assert!(c.occupancy() <= 8);
        }
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = small_cache();
        c.access(0x0000, true);
        c.access(0x0040, false);
        c.access(0x0080, true);
        assert_eq!(c.flush(), 2);
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(0x0000));
    }

    #[test]
    fn t2_sized_cache_thrashing_pattern() {
        // The LBM pathology: many streams separated by a multiple of the
        // set-stride all land in the same sets and thrash a 16-way cache
        // when there are more than 16 streams.
        let cfg = L2Config {
            bytes: 4 << 20,
            ways: 16,
            line: 64,
            bank_cycles: 2,
            hit_latency: 26,
            mshr_per_bank: 8,
        };
        let mut c = L2Cache::new(&cfg);
        let set_stride = (cfg.sets() * cfg.line) as u64; // 256 KiB
                                                         // 38 streams (19 read + 19 write in D3Q19) at set-aligned spacing:
        let streams = 38u64;
        // Touch each stream once, then re-touch: everything got evicted.
        for s in 0..streams {
            c.access(s * set_stride, false);
        }
        let mut rehits = 0;
        for s in 0..streams {
            if matches!(c.access(s * set_stride, false), Access::Hit) {
                rehits += 1;
            }
        }
        assert!(
            rehits < 16,
            "38 set-conflicting streams cannot all survive in a 16-way set (rehits={rehits})"
        );
    }
}
