//! Simulator configuration: the UltraSPARC T2 geometry and timing model.
//!
//! Defaults reproduce the Sun SPARC Enterprise T5120 of the paper (§1, §2):
//! 8 in-order cores at 1.2 GHz with 8 hardware threads each, a shared 4 MB
//! 16-way banked L2, and four dual-channel FB-DIMM memory controllers with
//! a 2:1 read:write bandwidth ratio (42 vs 21 GB/s nominal).
//!
//! Timing parameters are *calibrated*, not nominal: the paper measures only
//! about one third of the theoretical bandwidth (§1), so the per-controller
//! service time is set such that the simulated saturated STREAM triad lands
//! near the measured ~13 GB/s (reported) rather than the 42 GB/s brochure
//! number. See DESIGN.md §6 for the calibration reasoning.

use crate::policy::PolicyKind;
use serde::{Deserialize, Serialize};
use t2opt_core::chip::{ChipSpec, SocketTopology};
use t2opt_core::mapping::{MapPolicy, PagePlacement};

/// L2 cache geometry and timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct L2Config {
    /// Total capacity in bytes (T2: 4 MB).
    pub bytes: usize,
    /// Associativity (T2: 16-way).
    pub ways: usize,
    /// Line size in bytes (T2: 64).
    pub line: usize,
    /// Access occupancy of a bank per request, in cycles.
    pub bank_cycles: u64,
    /// Load-to-use latency of an L2 hit, in cycles (T2: ~26).
    pub hit_latency: u64,
    /// Outstanding misses each L2 bank can track (miss buffer / MSHR
    /// entries per bank). This is the quantity the offset aliasing
    /// strangles: streams congruent mod 512 B funnel *every* miss through
    /// one bank, capping the whole chip's memory-level parallelism at one
    /// bank's worth; well-chosen offsets engage all eight banks' buffers.
    pub mshr_per_bank: usize,
}

impl L2Config {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.bytes / (self.ways * self.line)
    }
}

/// Memory-controller timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Cycles a controller is occupied serving one 64 B read.
    pub read_service: u64,
    /// Cycles for one 64 B write (FB-DIMM southbound: 2x read, the
    /// 42 vs 21 GB/s nominal asymmetry). Writes move on their own channel
    /// and do not serialize against read data.
    pub write_service: u64,
    /// Southbound cycles each read's command occupies before its data can
    /// return northbound. This is the only coupling between reads and
    /// writes, and it is what makes write-heavy kernels (STREAM copy)
    /// trail read-heavy ones (triad) - the paper's "overhead for
    /// bidirectional transfers".
    pub command_cycles: u64,
    /// Fixed additional miss latency (crossbar + DRAM access) beyond queue
    /// and service time, in cycles.
    pub extra_latency: u64,
    /// Relative service-time jitter in [0, 1): each transfer's service time
    /// is drawn uniformly from `service · (1 ± jitter)` with a deterministic
    /// per-controller PRNG. Real DRAM timing noise (row hits vs misses,
    /// refresh) is what keeps congruent access streams from settling into a
    /// perfectly staggered conveyor; with high utilization, noise nucleates
    /// the self-synchronizing convoys the paper observes ("all threads hit
    /// exactly one memory controller at a time"). Set to 0 for a noiseless
    /// machine.
    pub service_jitter: f64,
    /// Finite queue depth per controller. When a miss targets a controller
    /// whose queue is full, the request stalls in the issuing core's memory
    /// pipe until a slot frees — head-of-line blocking that back-pressures
    /// all threads of that core. This is the mechanism that *locks* threads
    /// into the convoys of §2.1: with every stream congruent mod 512 B, no
    /// thread can run ahead to an idle controller because its core's pipe is
    /// plugged by stalled requests to the hot one.
    pub queue_depth: usize,
}

/// Core/thread model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Number of cores (T2: 8).
    pub n_cores: usize,
    /// Hardware threads per core (T2: 8).
    pub threads_per_core: usize,
    /// Maximum outstanding L2 *load* misses per thread (T2: 1 — "restricts
    /// each thread to a single outstanding cache miss", §1).
    pub outstanding_misses: usize,
    /// Store-buffer entries per thread (T2: 8). Stores retire through the
    /// buffer under TSO and do **not** block the thread; the read-for-
    /// ownership and eventual write-back drain asynchronously. A full
    /// buffer stalls the thread until the oldest store completes.
    pub store_buffer: usize,
    /// Memory-pipe issue slots per core (T2: 2 memory pipelines).
    pub mem_pipes: usize,
    /// Floating-point throughput per core, flops per cycle (T2: one FPU
    /// doing one MULT or ADD per cycle).
    pub fpu_flops_per_cycle: f64,
    /// Bounded thread drift ("gang window"): no thread may run more than
    /// this many memory operations ahead of the slowest still-running
    /// thread.
    ///
    /// This models an empirical property of the saturated T2 that the paper
    /// reports directly — at aliased offsets "all threads hit exactly one
    /// memory controller at a time... successive controllers are of course
    /// used in turn, but not concurrently" (§2.1). On the real chip, fair
    /// round-robin crossbar arbitration plus NACK/retry congestion keeps
    /// the threads of a bulk-synchronous loop tightly batched; an idealized
    /// infinite-FIFO model instead lets early-served threads stagger into a
    /// perfectly pipelined conveyor that covers all controllers and hides
    /// the aliasing completely (set this to `None` to get that machine —
    /// the `ablation_outstanding` binary shows the difference).
    pub gang_window: Option<u32>,
}

/// Full chip configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Clock frequency in Hz (T5120: 1.2 GHz).
    pub clock_hz: f64,
    /// Cores and threads.
    pub core: CoreConfig,
    /// L2 cache.
    pub l2: L2Config,
    /// Memory controllers.
    pub mem: MemConfig,
    /// The address → controller/bank mapping policy.
    pub map: MapPolicy,
    /// The memory-controller queue arbitration discipline (see
    /// [`crate::policy`]). [`PolicyKind::Fifo`] — the T2's behavior and the
    /// default — keeps the engine on its historical inline service path and
    /// is pinned bitwise by `tests/policy_differential.rs`.
    pub policy: PolicyKind,
    /// Socket/locality structure. On the single-socket identity the engine
    /// takes no NUMA branch at all, preserving bitwise-identical `SimStats`
    /// for every pre-NUMA preset.
    pub numa: SocketTopology,
    /// Page-placement policy applied to the simulated workload's pages.
    /// Irrelevant (never consulted) when `numa` is single-socket.
    pub placement: PagePlacement,
}

impl ChipConfig {
    /// The calibrated UltraSPARC T2 model (see module docs).
    pub fn ultrasparc_t2() -> Self {
        ChipConfig {
            clock_hz: 1.2e9,
            core: CoreConfig {
                n_cores: 8,
                threads_per_core: 8,
                outstanding_misses: 1,
                store_buffer: 8,
                mem_pipes: 2,
                fpu_flops_per_cycle: 1.0,
                gang_window: Some(3),
            },
            l2: L2Config {
                bytes: 4 << 20,
                ways: 16,
                line: 64,
                bank_cycles: 2,
                hit_latency: 26,
                mshr_per_bank: 8,
            },
            mem: MemConfig {
                read_service: 12,
                write_service: 24,
                command_cycles: 3,
                extra_latency: 100,
                service_jitter: 0.3,
                queue_depth: 16,
            },
            map: MapPolicy::t2(),
            policy: PolicyKind::Fifo,
            numa: SocketTopology::single(),
            placement: PagePlacement::FirstTouch,
        }
    }

    /// Builds a simulator configuration from a chip topology spec.
    ///
    /// The calibrated T2 template supplies every microarchitectural knob
    /// the spec does not carry (store buffers, L2 shape, queue depths,
    /// jitter); the spec overrides what varies across topologies. For
    /// `ChipSpec::ultrasparc_t2()` the result is identical to
    /// [`ChipConfig::ultrasparc_t2`] — the compatibility contract that
    /// keeps default behavior bitwise unchanged.
    pub fn from_spec(spec: &ChipSpec) -> Self {
        let mut c = ChipConfig::ultrasparc_t2();
        c.clock_hz = spec.clock_hz;
        c.core.n_cores = spec.n_cores;
        c.core.threads_per_core = spec.threads_per_core;
        c.mem.read_service = spec.read_service;
        c.mem.write_service = spec.write_service;
        c.map = spec.map;
        c.numa = spec.sockets;
        c
    }

    /// Builds the simulator configuration for a registered chip preset;
    /// `None` for unknown names (see `t2opt_core::chip::PRESET_NAMES`).
    pub fn preset(name: &str) -> Option<Self> {
        ChipSpec::preset(name).map(|s| ChipConfig::from_spec(&s))
    }

    /// The layout-relevant interleave period of this chip's mapping, in
    /// bytes (512 on the T2). See `MapPolicy::interleave_period`.
    pub fn interleave_period(&self) -> usize {
        self.map.interleave_period() as usize
    }

    /// Number of memory controllers (from the mapping geometry).
    pub fn n_controllers(&self) -> usize {
        self.map.geometry().num_controllers() as usize
    }

    /// Number of L2 banks (from the mapping geometry).
    pub fn n_banks(&self) -> usize {
        self.map.geometry().num_banks() as usize
    }

    /// Total hardware-thread capacity.
    pub fn max_threads(&self) -> usize {
        self.core.n_cores * self.core.threads_per_core
    }

    /// Number of sockets (1 for every pre-NUMA preset).
    pub fn n_sockets(&self) -> usize {
        self.numa.n_sockets.max(1)
    }

    /// Memory controllers per socket (contiguous grouping: socket `s` owns
    /// controllers `[s·M/S, (s+1)·M/S)`).
    pub fn mcs_per_socket(&self) -> usize {
        (self.n_controllers() / self.n_sockets()).max(1)
    }

    /// Cores per socket (contiguous grouping, like controllers).
    pub fn cores_per_socket(&self) -> usize {
        (self.core.n_cores / self.n_sockets()).max(1)
    }

    /// The socket owning memory controller `mc`.
    pub fn socket_of_controller(&self, mc: usize) -> usize {
        mc / self.mcs_per_socket()
    }

    /// The socket a core is pinned to.
    pub fn socket_of_core(&self, core: usize) -> usize {
        (core / self.cores_per_socket()).min(self.n_sockets() - 1)
    }

    /// Converts a cycle count to seconds at this clock.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// Validates internal consistency (geometry vs mapping, line sizes).
    pub fn validate(&self) -> Result<(), String> {
        let geo = self.map.geometry();
        if geo.line_size() as usize != self.l2.line {
            return Err(format!(
                "mapping line size {} != L2 line size {}",
                geo.line_size(),
                self.l2.line
            ));
        }
        if !self.l2.sets().is_power_of_two() {
            return Err(format!(
                "L2 set count {} is not a power of two",
                self.l2.sets()
            ));
        }
        if self.core.n_cores == 0
            || self.core.threads_per_core == 0
            || self.core.outstanding_misses == 0
            || self.core.mem_pipes == 0
        {
            return Err("core counts must be positive".into());
        }
        if self.mem.read_service == 0 || self.mem.write_service == 0 {
            return Err("service times must be positive".into());
        }
        if self.mem.queue_depth == 0 {
            return Err("controller queue depth must be positive".into());
        }
        if !(0.0..1.0).contains(&self.mem.service_jitter) {
            return Err("service_jitter must be in [0, 1)".into());
        }
        let s = self.numa.n_sockets;
        if s == 0 {
            return Err("n_sockets must be positive".into());
        }
        if !self.n_controllers().is_multiple_of(s) {
            return Err(format!(
                "{} controllers do not divide evenly across {s} sockets",
                self.n_controllers()
            ));
        }
        if !self.core.n_cores.is_multiple_of(s) {
            return Err(format!(
                "{} cores do not divide evenly across {s} sockets",
                self.core.n_cores
            ));
        }
        if self.numa.is_numa()
            && (!self.numa.page_bytes.is_power_of_two()
                || self.numa.page_bytes < self.l2.line as u64)
        {
            return Err(format!(
                "NUMA page size {} must be a power of two >= the {} B line",
                self.numa.page_bytes, self.l2.line
            ));
        }
        Ok(())
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig::ultrasparc_t2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t2_defaults_are_consistent() {
        let c = ChipConfig::ultrasparc_t2();
        c.validate().unwrap();
        assert_eq!(c.n_controllers(), 4);
        assert_eq!(c.n_banks(), 8);
        assert_eq!(c.max_threads(), 64);
        assert_eq!(c.l2.sets(), 4096);
        assert!(c.policy.is_fifo(), "FIFO is the calibrated T2 discipline");
    }

    #[test]
    fn non_default_policies_validate() {
        for spec in ["read-first", "fr-fcfs:4"] {
            let mut c = ChipConfig::ultrasparc_t2();
            c.policy = PolicyKind::parse(spec).unwrap();
            c.validate().unwrap();
        }
    }

    #[test]
    fn from_spec_t2_is_bitwise_identical_to_the_template() {
        assert_eq!(
            ChipConfig::from_spec(&ChipSpec::ultrasparc_t2()),
            ChipConfig::ultrasparc_t2()
        );
        assert_eq!(
            ChipConfig::preset("ultrasparc-t2").unwrap(),
            ChipConfig::ultrasparc_t2()
        );
    }

    #[test]
    fn every_preset_produces_a_valid_config() {
        for name in t2opt_core::chip::PRESET_NAMES {
            let c = ChipConfig::preset(name).unwrap_or_else(|| panic!("missing preset {name}"));
            c.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(ChipConfig::preset("nonexistent").is_none());
    }

    #[test]
    fn non_t2_presets_change_the_derived_geometry() {
        let wide = ChipConfig::preset("wide-8mc").unwrap();
        assert_eq!(wide.n_controllers(), 8);
        assert_eq!(wide.interleave_period(), 1024);
        assert_eq!(wide.max_threads(), 128);
        let budget = ChipConfig::preset("budget-2mc").unwrap();
        assert_eq!(budget.n_controllers(), 2);
        assert_eq!(budget.interleave_period(), 256);
        assert_eq!(budget.max_threads(), 32);
        let paged = ChipConfig::preset("t2-page-interleave").unwrap();
        assert_eq!(paged.interleave_period(), 16384);
    }

    #[test]
    fn numa_presets_carry_socket_geometry() {
        let c = ChipConfig::preset("2s-numa").unwrap();
        c.validate().unwrap();
        assert_eq!(c.n_sockets(), 2);
        assert_eq!(c.n_controllers(), 8);
        assert_eq!(c.mcs_per_socket(), 4);
        assert_eq!(c.cores_per_socket(), 8);
        assert_eq!(c.socket_of_controller(3), 0);
        assert_eq!(c.socket_of_controller(4), 1);
        assert_eq!(c.socket_of_core(7), 0);
        assert_eq!(c.socket_of_core(8), 1);
        let w = ChipConfig::preset("4s-numa-wide").unwrap();
        w.validate().unwrap();
        assert_eq!(w.n_sockets(), 4);
        assert_eq!(w.mcs_per_socket(), 4);
        assert_eq!(w.cores_per_socket(), 8);
    }

    #[test]
    fn validate_rejects_uneven_socket_split() {
        let mut c = ChipConfig::preset("2s-numa").unwrap();
        c.core.n_cores = 15;
        assert!(c.validate().is_err());
        let mut c = ChipConfig::preset("2s-numa").unwrap();
        c.numa.n_sockets = 3;
        assert!(c.validate().is_err());
        let mut c = ChipConfig::preset("2s-numa").unwrap();
        c.numa.page_bytes = 48;
        assert!(c.validate().is_err());
    }

    #[test]
    fn aggregate_nominal_bandwidth_sanity() {
        // The calibrated read service must put the aggregate *saturated*
        // read bandwidth between the measured (~1/3 of nominal) and nominal
        // 42 GB/s.
        let c = ChipConfig::ultrasparc_t2();
        let bytes_per_cycle = c.n_controllers() as f64 * 64.0 / c.mem.read_service as f64;
        let gbs = bytes_per_cycle * c.clock_hz / 1e9;
        assert!(gbs > 14.0 && gbs < 42.0, "calibrated peak read {gbs} GB/s");
    }

    #[test]
    fn cycles_to_secs() {
        let c = ChipConfig::ultrasparc_t2();
        assert!((c.cycles_to_secs(1_200_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_line_mismatch() {
        let mut c = ChipConfig::ultrasparc_t2();
        c.l2.line = 128;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_counts() {
        let mut c = ChipConfig::ultrasparc_t2();
        c.core.outstanding_misses = 0;
        assert!(c.validate().is_err());
    }
}
