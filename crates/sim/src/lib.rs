//! # t2opt-sim
//!
//! A discrete-event, cache-line-granularity simulator of the Sun
//! UltraSPARC T2 memory subsystem, built to reproduce the experiments of
//! Hager, Zeiser & Wellein, *"Data Access Optimizations for Highly Threaded
//! Multi-Core CPUs with Multiple Memory Controllers"* (2008) without the
//! (long discontinued) hardware.
//!
//! ## What is modelled
//!
//! * 8 in-order cores × 8 hardware threads at 1.2 GHz, each thread limited
//!   to a **single outstanding L2 miss** — the property that makes thread
//!   count and controller spreading matter so much on this chip;
//! * two memory pipes and one shared FPU per core;
//! * a shared 4 MB, 16-way, 8-banked L2 (write-back, write-allocate, LRU);
//! * four FB-DIMM memory controllers with dual unidirectional channels
//!   (2:1 read:write bandwidth, shared southbound command/write path) and
//!   finite input queues with NACK/retry;
//! * the T2's address interleave: **bits 8:7 → controller, bit 6 → bank**
//!   (via [`t2opt_core::mapping::MapPolicy`], swappable for ablations).
//!
//! ## What is not modelled
//!
//! Instruction fetch, L1 caches (the L2 hit latency subsumes the small L1),
//! TLBs (the paper argues pages ≥ 4 kB make virtual≈physical for this
//! purpose), the integer pipes' 4-thread groups, and coherence between
//! cores (the kernels under study partition their data). Timing parameters
//! are calibrated to the paper's *measured* bandwidths, not the brochure
//! numbers — see `ChipConfig::ultrasparc_t2` and DESIGN.md §6.
//!
//! ## Quick example
//!
//! ```
//! use t2opt_sim::prelude::*;
//!
//! // One thread streaming 64 KiB of loads from address 0.
//! let sim = Simulation::t2();
//! let program = StreamLoop::new(vec![StreamSpec::load(0)], 8192, 8, 0.0, 64);
//! let stats = sim.run(vec![ThreadSpec::new(0, Box::new(program))]);
//! assert_eq!(stats.total_read_bytes(), 8192 * 8);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod config;
pub mod engine;
pub mod mc;
pub mod policy;
pub mod stats;
pub mod trace;

pub use t2opt_telemetry as telemetry;

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use crate::config::{ChipConfig, CoreConfig, L2Config, MemConfig};
    pub use crate::engine::{Simulation, ThreadSpec};
    pub use crate::policy::{MemRequest, PolicyKind, QueuePolicy, ReqClass, POLICY_NAMES};
    pub use crate::stats::SimStats;
    pub use crate::trace::{chain_with_barriers, Dir, Op, Program, StreamLoop, StreamSpec};
    pub use t2opt_core::mapping::{AddressMap, MapPolicy};
    pub use t2opt_telemetry::alias::{AliasConfig, AliasReport};
    pub use t2opt_telemetry::timeline::{StreamLabel, Timeline, TraceConfig};
}

pub use config::ChipConfig;
pub use engine::{Simulation, ThreadSpec};
pub use stats::SimStats;
