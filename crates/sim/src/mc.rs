//! Memory-controller service model: a dual-channel FB-DIMM link pair.
//!
//! Each of the T2's four memory controllers drives two FB-DIMM channels
//! whose links are *unidirectional*: a wide northbound path returns read
//! data while a narrower southbound path carries commands and write data —
//! that asymmetry is the 42 vs 21 GB/s nominal read:write ratio. Reads and
//! writes therefore do **not** serialize against each other; they contend
//! only through the southbound path, which every read must use for its
//! command before the northbound transfer can start. That coupling is what
//! makes write-heavy kernels (STREAM copy, 1 write per read) trail
//! read-heavy ones (triad, 1 write per 2–3 reads) — the paper's "overhead
//! for bidirectional transfers" (§2.1).
//!
//! Service is FIFO per channel, so a request's completion time is known at
//! admission — the engine schedules thread wake-ups directly instead of
//! simulating server events. Per-transfer times carry a deterministic
//! jitter (DRAM row hits/misses, refresh).

use crate::config::MemConfig;

/// One controller's pair of channel timelines.
#[derive(Debug, Clone)]
pub struct MemController {
    read_service: u64,
    write_service: u64,
    command_cycles: u64,
    jitter_permille: u64,
    rng: u64,
    /// The seeded initial PRNG state, so [`MemController::reset`] restores
    /// the jitter stream along with the channel timelines.
    rng_seeded: u64,
    /// Time the northbound (read-data) channel becomes free.
    pub north_busy: u64,
    /// Time the southbound (command + write-data) channel becomes free.
    pub south_busy: u64,
}

/// Outcome of admitting one transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// When the transfer's data movement completes.
    pub completion: u64,
    /// Busy cycles added to the controller (both channels).
    pub busy_added: u64,
}

impl MemController {
    /// A fresh idle controller with the given timing. `seed` decorrelates
    /// the jitter streams of different controllers (use the controller
    /// index).
    pub fn new_seeded(cfg: &MemConfig, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&cfg.service_jitter),
            "service_jitter must be in [0, 1)"
        );
        let rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        MemController {
            read_service: cfg.read_service,
            write_service: cfg.write_service,
            command_cycles: cfg.command_cycles,
            jitter_permille: (cfg.service_jitter * 1000.0) as u64,
            rng,
            rng_seeded: rng,
            north_busy: 0,
            south_busy: 0,
        }
    }

    /// A fresh idle controller with the given timing (seed 0).
    pub fn new(cfg: &MemConfig) -> Self {
        Self::new_seeded(cfg, 0)
    }

    /// Deterministic xorshift64 jitter in ±`jitter_permille` of `service`.
    #[inline]
    fn jitter(&mut self, service: u64) -> i64 {
        if self.jitter_permille == 0 {
            return 0;
        }
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        let span = 2 * self.jitter_permille + 1;
        let draw = (x % span) as i64 - self.jitter_permille as i64;
        (service as i64 * draw) / 1000
    }

    /// Admits one 64 B read arriving at `arrival`: its command goes over
    /// the southbound channel, then the data returns northbound.
    pub fn service_read(&mut self, arrival: u64) -> ServiceOutcome {
        let cmd_start = arrival.max(self.south_busy);
        self.south_busy = cmd_start + self.command_cycles;
        let service = {
            let base = self.read_service;
            (base as i64 + self.jitter(base)).max(1) as u64
        };
        let data_start = (cmd_start + self.command_cycles).max(self.north_busy);
        self.north_busy = data_start + service;
        ServiceOutcome {
            completion: data_start + service,
            busy_added: service + self.command_cycles,
        }
    }

    /// Admits one 64 B write (write-back) arriving at `arrival`: data goes
    /// over the southbound channel.
    pub fn service_write(&mut self, arrival: u64) -> ServiceOutcome {
        let service = {
            let base = self.write_service;
            (base as i64 + self.jitter(base)).max(1) as u64
        };
        let start = arrival.max(self.south_busy);
        self.south_busy = start + service;
        ServiceOutcome {
            completion: start + service,
            busy_added: service,
        }
    }

    /// Resets the controller to its as-constructed state: both channel
    /// timelines *and* the jitter PRNG, which returns to the state
    /// [`MemController::new_seeded`] established. A reset controller is
    /// indistinguishable from a freshly built one, so reusing controllers
    /// across runs stays bit-reproducible.
    pub fn reset(&mut self) {
        self.north_busy = 0;
        self.south_busy = 0;
        self.rng = self.rng_seeded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipConfig;

    fn mc() -> MemController {
        // Deterministic timing for the arithmetic tests: disable jitter.
        let mut cfg = ChipConfig::ultrasparc_t2().mem;
        cfg.service_jitter = 0.0;
        MemController::new(&cfg)
    }

    #[test]
    fn idle_read_costs_command_plus_service() {
        let mut m = mc();
        let cfg = ChipConfig::ultrasparc_t2().mem;
        let out = m.service_read(100);
        assert_eq!(out.completion, 100 + cfg.command_cycles + cfg.read_service);
    }

    #[test]
    fn reads_pipeline_on_the_north_channel() {
        let mut m = mc();
        let cfg = ChipConfig::ultrasparc_t2().mem;
        let a = m.service_read(0);
        let b = m.service_read(0);
        // Commands go back to back; data transfers serialize northbound.
        assert_eq!(a.completion, cfg.command_cycles + cfg.read_service);
        assert_eq!(b.completion, a.completion + cfg.read_service);
    }

    #[test]
    fn reads_and_writes_overlap_across_channels() {
        let mut m = mc();
        let cfg = ChipConfig::ultrasparc_t2().mem;
        let w = m.service_write(0);
        let r = m.service_read(0);
        assert_eq!(w.completion, cfg.write_service);
        // The read's command waits for the write on the south channel, but
        // the data transfer itself runs on the idle north channel.
        assert_eq!(
            r.completion,
            cfg.write_service + cfg.command_cycles + cfg.read_service
        );
        // Crucially, a second write does NOT wait for the read data.
        let w2 = m.service_write(0);
        assert!(w2.completion < r.completion + cfg.write_service);
    }

    #[test]
    fn write_heavy_mix_is_south_bound() {
        // Equal reads and writes: the south channel (write + commands) is
        // the bottleneck — the copy < triad mechanism.
        let mut m = mc();
        let cfg = ChipConfig::ultrasparc_t2().mem;
        let n = 100u64;
        let mut last = 0;
        for _ in 0..n {
            last = last
                .max(m.service_read(0).completion)
                .max(m.service_write(0).completion);
        }
        let south_time = n * (cfg.write_service + cfg.command_cycles);
        assert!(m.south_busy >= south_time);
        assert!(last >= south_time);
    }

    #[test]
    fn late_arrival_finds_idle_channels() {
        let mut m = mc();
        let cfg = ChipConfig::ultrasparc_t2().mem;
        m.service_read(0);
        let out = m.service_read(10_000);
        assert_eq!(
            out.completion,
            10_000 + cfg.command_cycles + cfg.read_service
        );
    }

    #[test]
    fn reset_restores_the_seeded_jitter_stream() {
        // Regression: `reset` used to clear only the channel timelines and
        // leave the PRNG wherever the previous run advanced it, so a reset
        // controller produced a *different* jitter sequence than a fresh
        // one — silently breaking bit-reproducibility for any caller that
        // reuses controllers across runs.
        let mut cfg = ChipConfig::ultrasparc_t2().mem;
        cfg.service_jitter = 0.3;
        let mut reused = MemController::new_seeded(&cfg, 5);
        let fresh_run: Vec<_> = {
            let mut m = MemController::new_seeded(&cfg, 5);
            (0..50).map(|_| m.service_read(0)).collect()
        };
        for _ in 0..17 {
            reused.service_read(0);
            reused.service_write(0);
        }
        reused.reset();
        assert_eq!(reused.north_busy, 0);
        assert_eq!(reused.south_busy, 0);
        let second_run: Vec<_> = (0..50).map(|_| reused.service_read(0)).collect();
        assert_eq!(
            fresh_run, second_run,
            "a reset controller must replay the seeded jitter stream"
        );
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut cfg = ChipConfig::ultrasparc_t2().mem;
        cfg.service_jitter = 0.3;
        let mut a = MemController::new_seeded(&cfg, 7);
        let mut b = MemController::new_seeded(&cfg, 7);
        for _ in 0..100 {
            let (x, y) = (a.service_read(0), b.service_read(0));
            assert_eq!(x, y, "same seed, same timing");
        }
        let mut c = MemController::new_seeded(&cfg, 7);
        let mut prev = 0;
        for _ in 0..100 {
            let out = c.service_read(0);
            let service = out.completion - prev.max(cfg.command_cycles);
            let lo = (cfg.read_service as f64 * 0.69) as u64;
            let hi = (cfg.read_service as f64 * 1.31) as u64 + cfg.command_cycles;
            assert!(
                service >= lo && service <= hi + out.completion, // loose sanity
                "service draw out of range"
            );
            prev = out.completion;
        }
    }
}
