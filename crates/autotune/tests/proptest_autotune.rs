//! Property tests for the tuner's search space: every candidate a
//! [`ParamSpace`] can emit must plan valid, in-bounds, non-overlapping,
//! correctly aligned segments; spec normalization must be idempotent; and
//! the cache's transfer machinery must survive arbitrary contents.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use t2opt_autotune::cache::{ResultCache, TrialMeta};
use t2opt_autotune::{ParamSpace, Workload};
use t2opt_core::layout::{LayoutSpec, SegmentPlan};
use t2opt_core::mapping::PagePlacement;
use t2opt_sim::ChipConfig;

/// A non-empty subset of `vals` selected by `mask` (the first value is
/// forced in, so dimensions are never empty). Values stay unique and
/// sorted — exactly the shape real sweep definitions have.
fn subset(vals: &[usize], mask: u8) -> Vec<usize> {
    vals.iter()
        .enumerate()
        .filter(|&(i, _)| i == 0 || mask & (1 << i) != 0)
        .map(|(_, &v)| v)
        .collect()
}

/// Arbitrary well-formed parameter spaces over realistic sweep values
/// (alignments powers of two, shifts/offsets element-aligned).
fn arb_space() -> impl Strategy<Value = ParamSpace> {
    (0u8..255, 0u8..255, 0u8..255, 0u8..255, 0u8..4).prop_map(|(b, s, h, o, p)| ParamSpace {
        base_aligns: subset(&[64, 128, 4096, 8192], b),
        seg_aligns: subset(&[1, 64, 512, 4096], s),
        shifts: subset(&[0, 8, 64, 128, 136, 512], h),
        block_offsets: subset(&[0, 64, 128, 192, 448], o),
        placements: PagePlacement::ALL[..1 + (p as usize % 3)].to_vec(),
    })
}

proptest! {
    /// Every candidate of every space yields a layout that validates:
    /// segments ordered, disjoint, inside the allocation, summing to the
    /// full length — the invariant the simulator trusts blindly.
    #[test]
    fn every_candidate_plans_valid_segments(
        space in arb_space(),
        len in 1usize..5_000,
        segs in 1usize..24,
    ) {
        for spec in space.candidates() {
            let layout = spec.plan(len, 8, &SegmentPlan::Count(segs));
            layout.validate();
            prop_assert_eq!(layout.seg_sizes.iter().sum::<usize>(), len);
            let last = layout.num_segments() - 1;
            prop_assert!(
                layout.seg_byte_starts[last] + layout.seg_sizes[last] * 8
                    <= layout.total_bytes,
                "last segment must end inside the allocation"
            );
        }
    }

    /// The alignment arithmetic every candidate promises: segment `s`
    /// starts at `block_offset + s·shift` past a `seg_align` boundary.
    #[test]
    fn candidate_segments_are_correctly_aligned(
        space in arb_space(),
        len in 1usize..5_000,
        segs in 1usize..24,
    ) {
        for spec in space.candidates() {
            let layout = spec.plan(len, 8, &SegmentPlan::Count(segs));
            prop_assert_eq!(layout.seg_byte_starts[0], spec.block_offset);
            for (s, &start) in layout.seg_byte_starts.iter().enumerate().skip(1) {
                let unshifted = start - spec.block_offset - s * spec.shift;
                prop_assert_eq!(
                    unshifted % spec.seg_align.max(1), 0,
                    "segment {} of {:?} off its alignment boundary", s, spec
                );
            }
        }
    }

    /// Spec normalization is idempotent: re-applying the setters to a
    /// candidate's own (already canonical) fields changes nothing, for
    /// every candidate the space can emit.
    #[test]
    fn normalization_is_idempotent(space in arb_space()) {
        for spec in space.candidates() {
            let renormalized = LayoutSpec::new()
                .base_align(spec.base_align)
                .seg_align(spec.seg_align)
                .shift(spec.shift)
                .block_offset(spec.block_offset)
                .placement(spec.placement);
            prop_assert_eq!(&renormalized, &spec);
        }
    }

    /// Projecting an in-space candidate back into its space is the
    /// identity — the guarantee seeding (advisor or transfer) relies on.
    #[test]
    fn nearest_index_is_identity_on_grid_points(space in arb_space()) {
        let dims = space.dims();
        for b in 0..dims[0] {
            for s in 0..dims[1] {
                for h in 0..dims[2] {
                    for o in 0..dims[3] {
                        for p in 0..dims[4] {
                            let idx = [b, s, h, o, p];
                            prop_assert_eq!(space.nearest_index(&space.spec_at(idx)), idx);
                        }
                    }
                }
            }
        }
    }

    /// Workload arrays never overlap and always respect the base
    /// alignment, whatever candidate the space proposes.
    #[test]
    fn workload_arrays_are_disjoint_and_aligned(
        space in arb_space(),
        n in 64usize..4_096,
        threads in 1usize..32,
    ) {
        let w = Workload::triad_smoke(n, threads);
        for spec in space.candidates() {
            let arrays = w.layout_arrays(&spec);
            for (base, layout) in &arrays {
                prop_assert_eq!(base % spec.base_align as u64, 0);
                layout.validate();
            }
            let mut spans: Vec<(u64, u64)> = arrays
                .iter()
                .map(|(b, l)| (*b, *b + l.total_bytes as u64))
                .collect();
            spans.sort();
            for pair in spans.windows(2) {
                prop_assert!(pair[0].1 <= pair[1].0, "arrays overlap: {:?}", spans);
            }
        }
    }

    /// The cache round-trips arbitrary contents (entries + transfer meta)
    /// through disk byte-for-byte semantically: reloaded lookups and
    /// transfer seeds are identical.
    #[test]
    fn cache_round_trips_arbitrary_contents(
        gbs in proptest::collection::vec(0u32..1_000_000, 1..12),
        tags in proptest::collection::vec(0usize..3, 1..12),
    ) {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "t2opt-proptest-cache-{}-{}.json",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);
        let names = ["triad", "jacobi", "lbm_IJKv"];
        let chip = ResultCache::chip_fingerprint(&ChipConfig::ultrasparc_t2());
        let mut cache = ResultCache::at_path(&path).unwrap();
        for (i, (&g, &t)) in gbs.iter().zip(tags.iter()).enumerate() {
            // Dyadic values round-trip exactly through the JSON text.
            let bw = g as f64 * 0.25;
            let spec = LayoutSpec::new()
                .base_align(8192)
                .shift((g as usize % 64) * 8)
                .block_offset((g as usize % 7) * 64);
            cache.insert_with_meta(
                format!("{i:016x}"),
                bw,
                TrialMeta { tag: names[t].into(), chip: chip.clone(), spec },
            );
        }
        cache.save().unwrap();

        let mut reloaded = ResultCache::at_path(&path).unwrap();
        prop_assert_eq!(reloaded.len(), cache.len());
        for (i, (&g, _)) in gbs.iter().zip(tags.iter()).enumerate() {
            prop_assert_eq!(reloaded.get(&format!("{i:016x}")), Some(g as f64 * 0.25));
        }
        for target in names {
            prop_assert_eq!(
                reloaded.transfer_seed(target, &chip, 512),
                cache.transfer_seed(target, &chip, 512),
                "transfer seeds must survive persistence"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Whatever the cache holds, a transfer seed is always canonical:
    /// shift and block offset reduced into the controller period.
    #[test]
    fn transfer_seeds_are_always_canonical(
        gbs in proptest::collection::vec(0u32..1_000, 1..10),
        shifts in proptest::collection::vec(0usize..2_000, 1..10),
    ) {
        let mut cache = ResultCache::in_memory();
        for (i, (&g, &sh)) in gbs.iter().zip(shifts.iter()).enumerate() {
            cache.insert_with_meta(
                format!("{i:02x}"),
                g as f64,
                TrialMeta {
                    tag: "triad".into(),
                    chip: "cafe".into(),
                    spec: LayoutSpec::new().shift(sh).block_offset(sh * 3),
                },
            );
        }
        if let Some(seed) = cache.transfer_seed("jacobi", "cafe", 512) {
            prop_assert!(seed.shift < 512);
            prop_assert!(seed.block_offset < 512);
        } else {
            prop_assert!(false, "a populated foreign family must yield a seed");
        }
    }
}
