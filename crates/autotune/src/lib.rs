//! # t2opt-autotune — empirical layout autotuning
//!
//! The analytic [`LayoutAdvisor`](t2opt_core::advisor::LayoutAdvisor)
//! reproduces the paper's closed-form layout rules, but those rules are
//! derived *for a known address-mapping policy*. When the mapping is
//! undocumented (the common case on commodity parts) production HPC stacks
//! fall back to empirical search. This crate is that complementary path: it
//! searches the `(base_align, seg_align, shift, block_offset)` space of
//! Fig. 3 by running the deterministic memory-system simulator
//! ([`t2opt_sim::Simulation`]) on each candidate, batching independent
//! trials across a host [`t2opt_parallel::ThreadPool`].
//!
//! The pieces:
//!
//! - [`Workload`] — what to measure: a stream mix, the STREAM triad, the
//!   Jacobi sweep, or the D3Q19 LBM propagation step (Fig. 7's IJKv/IvJK
//!   layouts), with problem size, thread count, and measurement protocol.
//! - [`ParamSpace`] — the candidate grid over the four layout parameters.
//! - [`SearchStrategy`] — how to walk it: [`SearchStrategy::Exhaustive`],
//!   [`SearchStrategy::CoordinateDescent`],
//!   [`SearchStrategy::AdvisorSeeded`] (start from the paper's closed form,
//!   refine locally), [`SearchStrategy::SimulatedAnnealing`] (seeded,
//!   deterministic; escapes the local optima of the non-separable space),
//!   [`SearchStrategy::TransferSeeded`] (start from the best layout a
//!   *different* kernel's sweep cached on the same chip), or
//!   [`SearchStrategy::ModelPruned`] (rank the whole grid with the
//!   closed-form [`t2opt_model`] surrogate first — zero simulations — then
//!   simulate only the model's top fraction; see [`surrogate`]).
//! - [`ResultCache`] — persistent, content-addressed memoization of trials,
//!   so repeated sweeps and CI runs are incremental; a warm cache re-runs a
//!   sweep with **zero** new simulations. Since format v2 each entry also
//!   carries [`cache::TrialMeta`], enabling the cross-kernel
//!   [`ResultCache::transfer_seed`] lookup.
//! - [`Tuner`] / [`TuneReport`] — the engine and its output: ranked trials,
//!   the winner, cache counters, and an [`Agreement`] section
//!   cross-validating the analytic prediction against the measurements
//!   (Spearman rank correlation + explicit divergence flags — the
//!   observability hook for mapping policies the model does not cover).
//!
//! ```
//! use t2opt_autotune::{ParamSpace, SearchStrategy, Tuner, Workload};
//! use t2opt_sim::ChipConfig;
//!
//! // Tune the Fig. 4 triad offset sweep on the T2 (CI-sized problem).
//! let mut tuner = Tuner::new(
//!     Workload::triad_smoke(1 << 12, 16),
//!     ChipConfig::ultrasparc_t2(),
//!     ParamSpace::offset_sweep(128, 512),
//! )
//! .strategy(SearchStrategy::Exhaustive)
//! .pool_threads(4);
//! let report = tuner.run();
//! assert_ne!(report.best.spec.block_offset % 512, 0, "de-aliasing offset wins");
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod space;
pub mod surrogate;
pub mod tuner;
pub mod workload;

pub use cache::{ResultCache, TrialMeta};
pub use space::{ParamSpace, N_DIMS};
pub use tuner::{Agreement, Divergence, SearchStrategy, Trial, TuneReport, Tuner};
pub use workload::Workload;

/// Convenience re-exports for `use t2opt_autotune::prelude::*`.
pub mod prelude {
    pub use crate::cache::ResultCache;
    pub use crate::space::ParamSpace;
    pub use crate::tuner::{SearchStrategy, TuneReport, Tuner};
    pub use crate::workload::Workload;
}
