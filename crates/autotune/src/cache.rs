//! Persistent, content-addressed trial-result cache.
//!
//! Every simulated trial is fully determined by `(workload, chip config,
//! candidate layout)`; its measured bandwidth is therefore cacheable under a
//! hash of that triple. The cache keys on the FNV-1a 64 digest of the
//! triple's canonical JSON serialization, so *any* change to the workload,
//! the chip, or the candidate produces a fresh key, while re-running the
//! same sweep (or extending it) reuses every previous trial — repeated
//! sweeps and CI runs are incremental.
//!
//! Since the `t2opt-store` crate landed, [`ResultCache`] is a thin
//! compatibility facade over a 1-shard [`t2opt_store::Store`] in
//! single-file mode: the on-disk format is the same single JSON object
//! (human-inspectable and diff-friendly), saves are crash-safe (temp file +
//! atomic rename), and the hit/miss counters ride on the store's metrics:
//!
//! ```json
//! {"version":2,"entries":{"89ab…":12.5},"meta":{"89ab…":{"tag":"triad",…}}}
//! ```
//!
//! Version 2 adds the optional `meta` side-table: for each key, the
//! workload-family tag, a chip fingerprint, and the candidate layout. That
//! is what makes the cache *transferable across kernels*: the exact keys of
//! a triad sweep never match a Jacobi or LBM trial, but the layouts that
//! ranked best under the same chip live in the same mod-512 residue classes
//! (the T2's controller interleave is pure address arithmetic), so
//! [`ResultCache::transfer_seed`] can hand a new search the best *foreign*
//! layout as its starting point. Version-1 files (no `meta`) still load;
//! they simply cannot seed transfers.

use crate::workload::Workload;
use std::path::Path;
use t2opt_core::json::to_json_string;
use t2opt_core::layout::LayoutSpec;
use t2opt_sim::ChipConfig;
use t2opt_store::{fnv1a64_hex, Store};

pub use t2opt_store::TrialMeta;

/// A content-addressed map from trial key to measured bandwidth (GB/s),
/// optionally backed by a JSON file. See the module docs.
#[derive(Debug)]
pub struct ResultCache {
    store: Store,
}

impl ResultCache {
    /// An empty cache with no backing file (every sweep starts cold;
    /// [`ResultCache::save`] is a no-op).
    pub fn in_memory() -> Self {
        ResultCache {
            store: Store::in_memory(1),
        }
    }

    /// A cache backed by `path`. If the file exists it is loaded (a
    /// malformed file is an `InvalidData` error — delete it to start over);
    /// if not, the cache starts empty and the file is created on
    /// [`ResultCache::save`].
    pub fn at_path(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(ResultCache {
            store: Store::single_file(path)?,
        })
    }

    /// The content address of one trial: FNV-1a 64 (hex) over the canonical
    /// JSON of `(workload, chip, candidate)`.
    pub fn key(workload: &Workload, chip: &ChipConfig, spec: &LayoutSpec) -> String {
        fnv1a64_hex(to_json_string(&(workload, chip, spec)).as_bytes())
    }

    /// Looks `key` up, counting the outcome as a hit or a miss.
    pub fn get(&mut self, key: &str) -> Option<f64> {
        self.store.get(key)
    }

    /// Looks `key` up without touching the hit/miss counters.
    pub fn peek(&self, key: &str) -> Option<f64> {
        self.store.peek(key)
    }

    /// Records a measured bandwidth under `key`, preserving any transfer
    /// metadata already stored there.
    pub fn insert(&mut self, key: String, gbs: f64) {
        self.store.insert(&key, gbs);
    }

    /// Records a measured bandwidth plus the transfer side-table record
    /// describing it (see [`TrialMeta`]); entries inserted this way become
    /// visible to [`ResultCache::transfer_seed`].
    pub fn insert_with_meta(&mut self, key: String, gbs: f64, meta: TrialMeta) {
        self.store.insert_with_meta(&key, gbs, meta);
    }

    /// FNV-1a 64 fingerprint (hex) of a chip's canonical JSON — the fence
    /// [`ResultCache::transfer_seed`] uses to keep layouts measured on one
    /// memory system from seeding searches on another.
    pub fn chip_fingerprint(chip: &ChipConfig) -> String {
        fnv1a64_hex(to_json_string(chip).as_bytes())
    }

    /// Cross-kernel seeding: the best layout any *foreign* workload family
    /// (different [`TrialMeta::tag`]) measured on the same chip, with its
    /// shift and block offset reduced mod `period` (the memory-controller
    /// interleave period — on the T2, 512 B; layouts in the same residue
    /// class produce the same controller walk, so the reduction only
    /// canonicalizes, never changes behavior).
    ///
    /// Ranking is *relative within each family*: each entry scores
    /// `gbs / family_max`, so a slow kernel's clear winner beats a fast
    /// kernel's mediocre candidate. Absolute bandwidths never transfer.
    /// Ties break to the lexicographically smallest key, keeping the seed
    /// deterministic for a given cache state.
    pub fn transfer_seed(&self, target_tag: &str, chip: &str, period: usize) -> Option<LayoutSpec> {
        self.store.transfer_seed(target_tag, chip, period)
    }

    /// Writes the cache back to its backing file — atomically, via a
    /// sibling temp file and `rename`, so a concurrent reader (or a crash
    /// mid-save) never observes a partially-written document. A no-op for
    /// in-memory caches and when nothing changed since the last load/save.
    pub fn save(&mut self) -> std::io::Result<()> {
        self.store.save()
    }

    /// Number of cached trials.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the cache holds no trials.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Lookups served from the cache since the last counter reset.
    pub fn hits(&self) -> u64 {
        self.store.metrics().hits()
    }

    /// Lookups that required a fresh simulation since the last counter
    /// reset.
    pub fn misses(&self) -> u64 {
        self.store.metrics().misses()
    }

    /// Zeroes the hit/miss counters (e.g. between tuner invocations that
    /// share one cache).
    pub fn reset_counters(&mut self) {
        self.store.metrics().reset_hit_miss();
    }

    /// The underlying 1-shard store (read-only), for callers that want its
    /// metrics snapshot or occupancy.
    pub fn store(&self) -> &Store {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("t2opt-autotune-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn key_is_stable_and_content_sensitive() {
        let chip = ChipConfig::ultrasparc_t2();
        let w = Workload::triad_smoke(1 << 10, 8);
        let spec = LayoutSpec::new().base_align(8192);
        let k1 = ResultCache::key(&w, &chip, &spec);
        let k2 = ResultCache::key(&w, &chip, &spec);
        assert_eq!(k1, k2, "same triple, same key");
        assert_eq!(k1.len(), 16);

        let other_spec = ResultCache::key(&w, &chip, &spec.clone().block_offset(128));
        assert_ne!(k1, other_spec, "candidate must be part of the address");
        let other_load = ResultCache::key(&Workload::triad_smoke(1 << 11, 8), &chip, &spec);
        assert_ne!(k1, other_load, "workload must be part of the address");
    }

    #[test]
    fn key_and_fingerprint_cover_the_full_numa_configuration() {
        // The cache is addressed by the chip's full configuration, not its
        // preset name: two chips differing only in socket topology, and
        // two layout specs differing only in page placement, must never
        // alias onto one record.
        let w = Workload::triad_smoke(1 << 10, 8);
        let spec = LayoutSpec::new().base_align(8192);
        let flat = ChipConfig::ultrasparc_t2();
        let mut numa = ChipConfig::ultrasparc_t2();
        numa.numa.n_sockets = 2;
        numa.numa.remote_read_extra = 120;
        assert_ne!(
            ResultCache::key(&w, &flat, &spec),
            ResultCache::key(&w, &numa, &spec),
            "socket topology must be part of the address"
        );
        assert_ne!(
            ResultCache::chip_fingerprint(&flat),
            ResultCache::chip_fingerprint(&numa),
            "socket topology must be part of the fingerprint"
        );

        let remote = spec
            .clone()
            .placement(t2opt_core::mapping::PagePlacement::Remote);
        assert_ne!(
            ResultCache::key(&w, &flat, &spec),
            ResultCache::key(&w, &flat, &remote),
            "page placement must be part of the address"
        );
    }

    #[test]
    fn canonical_specs_share_a_key() {
        // seg_align 0 and 1 normalize to the same spec, so they must hit
        // the same cache line.
        let chip = ChipConfig::ultrasparc_t2();
        let w = Workload::triad_smoke(1 << 10, 8);
        assert_eq!(
            ResultCache::key(&w, &chip, &LayoutSpec::new().seg_align(0)),
            ResultCache::key(&w, &chip, &LayoutSpec::new().seg_align(1)),
        );
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c = ResultCache::in_memory();
        assert_eq!(c.get("00"), None);
        c.insert("00".into(), 7.5);
        assert_eq!(c.get("00"), Some(7.5));
        assert_eq!(c.get("01"), None);
        assert_eq!((c.hits(), c.misses()), (1, 2));
        c.reset_counters();
        assert_eq!((c.hits(), c.misses()), (0, 0));
    }

    #[test]
    fn round_trips_through_disk() {
        let path = tmp_path("roundtrip.json");
        let _ = std::fs::remove_file(&path);
        let mut c = ResultCache::at_path(&path).unwrap();
        c.insert("aa".into(), 1.25);
        c.insert("bb".into(), 2.5);
        c.save().unwrap();

        let mut reloaded = ResultCache::at_path(&path).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.get("aa"), Some(1.25));
        assert_eq!(reloaded.get("bb"), Some(2.5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_without_changes_is_cheap_and_corrupt_files_error() {
        let path = tmp_path("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = ResultCache::at_path(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);

        let mut mem = ResultCache::in_memory();
        mem.insert("aa".into(), 1.0);
        mem.save().unwrap();
    }

    #[test]
    fn rejects_unknown_version() {
        let path = tmp_path("version.json");
        std::fs::write(&path, r#"{"version":99,"entries":{}}"#).unwrap();
        assert!(ResultCache::at_path(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn accepts_version_1_files_without_meta() {
        let path = tmp_path("v1.json");
        std::fs::write(&path, r#"{"version":1,"entries":{"aa":3.5}}"#).unwrap();
        let mut c = ResultCache::at_path(&path).unwrap();
        assert_eq!(c.get("aa"), Some(3.5));
        assert_eq!(
            c.transfer_seed("jacobi", "anything", 512),
            None,
            "v1 entries carry no meta, so nothing can transfer"
        );
        let _ = std::fs::remove_file(&path);
    }

    fn meta(tag: &str, chip: &str, spec: LayoutSpec) -> TrialMeta {
        TrialMeta {
            tag: tag.into(),
            chip: chip.into(),
            spec,
        }
    }

    #[test]
    fn meta_round_trips_through_disk() {
        let path = tmp_path("meta_roundtrip.json");
        let _ = std::fs::remove_file(&path);
        let chip = ResultCache::chip_fingerprint(&ChipConfig::ultrasparc_t2());
        let spec = LayoutSpec::new().base_align(8192).seg_align(512).shift(128);
        let mut c = ResultCache::at_path(&path).unwrap();
        c.insert_with_meta("aa".into(), 9.0, meta("triad", &chip, spec.clone()));
        c.save().unwrap();

        let reloaded = ResultCache::at_path(&path).unwrap();
        assert_eq!(
            reloaded.transfer_seed("jacobi", &chip, 512),
            Some(spec),
            "meta must survive a save/load cycle"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transfer_seed_ranks_relatively_within_families() {
        let chip = "cafe";
        let mut c = ResultCache::in_memory();
        // Slow family: clear winner at 2 GB/s (score 1.0 on "good").
        let good = LayoutSpec::new().base_align(8192).block_offset(128);
        c.insert_with_meta("s0".into(), 2.0, meta("stream_mix", chip, good.clone()));
        c.insert_with_meta(
            "s1".into(),
            0.5,
            meta("stream_mix", chip, LayoutSpec::new()),
        );
        // Fast family: higher absolute bandwidths, but "bad" is only its
        // runner-up (score 10/16 < 1.0).
        c.insert_with_meta(
            "t0".into(),
            16.0,
            meta("triad", chip, good.clone().shift(64)),
        );
        c.insert_with_meta("t1".into(), 10.0, meta("triad", chip, LayoutSpec::new()));
        let seed = c.transfer_seed("jacobi", chip, 512).unwrap();
        // Both family winners score 1.0; the tie breaks to the smaller
        // key "s0" — proving absolute bandwidth does not leak across.
        assert_eq!(seed, good);
    }

    #[test]
    fn transfer_seed_skips_own_family_and_foreign_chips() {
        let mut c = ResultCache::in_memory();
        c.insert_with_meta(
            "j0".into(),
            99.0,
            meta("jacobi", "cafe", LayoutSpec::new().shift(64)),
        );
        c.insert_with_meta(
            "x0".into(),
            99.0,
            meta("triad", "beef", LayoutSpec::new().shift(64)),
        );
        assert_eq!(
            c.transfer_seed("jacobi", "cafe", 512),
            None,
            "own-family and wrong-chip entries must not seed"
        );
        assert!(c.transfer_seed("lbm_IvJK", "cafe", 512).is_some());
    }

    #[test]
    fn transfer_seed_canonicalizes_mod_period() {
        let mut c = ResultCache::in_memory();
        let spec = LayoutSpec::new()
            .base_align(8192)
            .shift(512 + 128)
            .block_offset(1024 + 64);
        c.insert_with_meta("a0".into(), 5.0, meta("triad", "cafe", spec));
        let seed = c.transfer_seed("jacobi", "cafe", 512).unwrap();
        assert_eq!(seed.shift, 128);
        assert_eq!(seed.block_offset, 64);
    }

    #[test]
    fn concurrent_reader_never_observes_a_partial_save() {
        // Crash-safety pin for the temp-file + rename save path: a reader
        // re-opening the file while a writer saves repeatedly must always
        // see a complete, parseable document — never a prefix.
        let path = tmp_path("atomic_save.json");
        let _ = std::fs::remove_file(&path);
        {
            let mut c = ResultCache::at_path(&path).unwrap();
            c.insert("seed".into(), 1.0);
            c.save().unwrap();
        }
        let writer_path = path.clone();
        let writer = std::thread::spawn(move || {
            let mut c = ResultCache::at_path(&writer_path).unwrap();
            for i in 0..200u32 {
                // Grow the document each round so a torn write would show
                // up as a truncated (unparseable) JSON object.
                c.insert(format!("{i:08x}{i:08x}"), f64::from(i));
                c.save().unwrap();
            }
        });
        let mut observed = 0usize;
        while !writer.is_finished() {
            let reloaded = ResultCache::at_path(&path)
                .expect("reader observed a partially-written cache file");
            assert!(!reloaded.is_empty());
            observed += 1;
        }
        writer.join().unwrap();
        assert!(observed > 0, "reader must have raced at least one save");
        let _ = std::fs::remove_file(&path);
    }
}
