//! Persistent, content-addressed trial-result cache.
//!
//! Every simulated trial is fully determined by `(workload, chip config,
//! candidate layout)`; its measured bandwidth is therefore cacheable under a
//! hash of that triple. The cache keys on the FNV-1a 64 digest of the
//! triple's canonical JSON serialization, so *any* change to the workload,
//! the chip, or the candidate produces a fresh key, while re-running the
//! same sweep (or extending it) reuses every previous trial — repeated
//! sweeps and CI runs are incremental.
//!
//! The on-disk format is a single JSON object (written with
//! [`t2opt_core::json`], read back with its parser), human-inspectable and
//! diff-friendly:
//!
//! ```json
//! {"version":2,"entries":{"89ab…":12.5},"meta":{"89ab…":{"tag":"triad",…}}}
//! ```
//!
//! Version 2 adds the optional `meta` side-table: for each key, the
//! workload-family tag, a chip fingerprint, and the candidate layout. That
//! is what makes the cache *transferable across kernels*: the exact keys of
//! a triad sweep never match a Jacobi or LBM trial, but the layouts that
//! ranked best under the same chip live in the same mod-512 residue classes
//! (the T2's controller interleave is pure address arithmetic), so
//! [`ResultCache::transfer_seed`] can hand a new search the best *foreign*
//! layout as its starting point. Version-1 files (no `meta`) still load;
//! they simply cannot seed transfers.

use crate::workload::Workload;
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use t2opt_core::json::{parse_json, to_json_string, JsonValue};
use t2opt_core::layout::LayoutSpec;
use t2opt_sim::ChipConfig;

/// On-disk format version; bump when the trial semantics change in a way
/// that invalidates old measurements.
const FORMAT_VERSION: f64 = 2.0;

/// Side-table record describing what a cache entry measured, keyed next to
/// its bandwidth. This is the lookup structure for cross-kernel transfer:
/// `tag` groups entries into workload families (rankings only transfer
/// *between* families, values don't transfer at all), `chip` fences off
/// measurements from different memory systems, and `spec` is the layout the
/// bandwidth was measured under.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TrialMeta {
    /// Workload-family tag ([`Workload::tag`]).
    pub tag: String,
    /// Chip fingerprint ([`ResultCache::chip_fingerprint`]), stored as a
    /// hex string: the minimal JSON parser reads numbers as `f64`, which
    /// cannot round-trip a full 64-bit hash.
    pub chip: String,
    /// The candidate layout the entry measured.
    pub spec: LayoutSpec,
}

/// A content-addressed map from trial key to measured bandwidth (GB/s),
/// optionally backed by a JSON file. See the module docs.
#[derive(Debug)]
pub struct ResultCache {
    path: Option<PathBuf>,
    entries: BTreeMap<String, f64>,
    meta: BTreeMap<String, TrialMeta>,
    hits: u64,
    misses: u64,
    dirty: bool,
}

impl ResultCache {
    /// An empty cache with no backing file (every sweep starts cold;
    /// [`ResultCache::save`] is a no-op).
    pub fn in_memory() -> Self {
        ResultCache {
            path: None,
            entries: BTreeMap::new(),
            meta: BTreeMap::new(),
            hits: 0,
            misses: 0,
            dirty: false,
        }
    }

    /// A cache backed by `path`. If the file exists it is loaded (a
    /// malformed file is an `InvalidData` error — delete it to start over);
    /// if not, the cache starts empty and the file is created on
    /// [`ResultCache::save`].
    pub fn at_path(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut cache = ResultCache::in_memory();
        if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            let (entries, meta) = parse_file(&text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("corrupt result cache {}: {e}", path.display()),
                )
            })?;
            cache.entries = entries;
            cache.meta = meta;
        }
        cache.path = Some(path);
        Ok(cache)
    }

    /// The content address of one trial: FNV-1a 64 (hex) over the canonical
    /// JSON of `(workload, chip, candidate)`.
    pub fn key(workload: &Workload, chip: &ChipConfig, spec: &LayoutSpec) -> String {
        let canonical = to_json_string(&(workload, chip, spec));
        format!("{:016x}", fnv1a64(canonical.as_bytes()))
    }

    /// Looks `key` up, counting the outcome as a hit or a miss.
    pub fn get(&mut self, key: &str) -> Option<f64> {
        match self.entries.get(key) {
            Some(&gbs) => {
                self.hits += 1;
                Some(gbs)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks `key` up without touching the hit/miss counters.
    pub fn peek(&self, key: &str) -> Option<f64> {
        self.entries.get(key).copied()
    }

    /// Records a measured bandwidth under `key`.
    pub fn insert(&mut self, key: String, gbs: f64) {
        let prev = self.entries.insert(key, gbs);
        self.dirty = self.dirty || prev != Some(gbs);
    }

    /// Records a measured bandwidth plus the transfer side-table record
    /// describing it (see [`TrialMeta`]); entries inserted this way become
    /// visible to [`ResultCache::transfer_seed`].
    pub fn insert_with_meta(&mut self, key: String, gbs: f64, meta: TrialMeta) {
        let prev = self.meta.insert(key.clone(), meta.clone());
        self.dirty = self.dirty || prev.as_ref() != Some(&meta);
        self.insert(key, gbs);
    }

    /// FNV-1a 64 fingerprint (hex) of a chip's canonical JSON — the fence
    /// [`ResultCache::transfer_seed`] uses to keep layouts measured on one
    /// memory system from seeding searches on another.
    pub fn chip_fingerprint(chip: &ChipConfig) -> String {
        format!("{:016x}", fnv1a64(to_json_string(chip).as_bytes()))
    }

    /// Cross-kernel seeding: the best layout any *foreign* workload family
    /// (different [`TrialMeta::tag`]) measured on the same chip, with its
    /// shift and block offset reduced mod `period` (the memory-controller
    /// interleave period — on the T2, 512 B; layouts in the same residue
    /// class produce the same controller walk, so the reduction only
    /// canonicalizes, never changes behavior).
    ///
    /// Ranking is *relative within each family*: each entry scores
    /// `gbs / family_max`, so a slow kernel's clear winner beats a fast
    /// kernel's mediocre candidate. Absolute bandwidths never transfer.
    /// Ties break to the lexicographically smallest key, keeping the seed
    /// deterministic for a given cache state.
    pub fn transfer_seed(&self, target_tag: &str, chip: &str, period: usize) -> Option<LayoutSpec> {
        assert!(period > 0, "interleave period must be positive");
        let mut family_max: BTreeMap<&str, f64> = BTreeMap::new();
        for (key, m) in &self.meta {
            if m.tag == target_tag || m.chip != chip {
                continue;
            }
            let Some(&gbs) = self.entries.get(key) else {
                continue;
            };
            let best = family_max.entry(m.tag.as_str()).or_insert(f64::MIN);
            *best = best.max(gbs);
        }
        let mut winner: Option<(f64, &String, &TrialMeta)> = None;
        for (key, m) in &self.meta {
            if m.tag == target_tag || m.chip != chip {
                continue;
            }
            let Some(&gbs) = self.entries.get(key) else {
                continue;
            };
            let fam = family_max[m.tag.as_str()];
            let score = if fam > 0.0 { gbs / fam } else { 0.0 };
            let better = match winner {
                None => true,
                // BTreeMap iterates keys ascending, so on a tie the
                // earlier (smaller) key wins by keeping `>` strict.
                Some((best, _, _)) => score > best,
            };
            if better {
                winner = Some((score, key, m));
            }
        }
        winner.map(|(_, _, m)| {
            m.spec
                .clone()
                .shift(m.spec.shift % period)
                .block_offset(m.spec.block_offset % period)
        })
    }

    /// Writes the cache back to its backing file. A no-op for in-memory
    /// caches and when nothing changed since the last load/save.
    pub fn save(&mut self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if !self.dirty {
            return Ok(());
        }
        std::fs::write(
            path,
            format!(
                r#"{{"version":{FORMAT_VERSION},"entries":{},"meta":{}}}"#,
                to_json_string(&self.entries),
                to_json_string(&self.meta)
            ),
        )?;
        self.dirty = false;
        Ok(())
    }

    /// Number of cached trials.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no trials.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache since the last counter reset.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh simulation since the last counter
    /// reset.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Zeroes the hit/miss counters (e.g. between tuner invocations that
    /// share one cache).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

type CacheTables = (BTreeMap<String, f64>, BTreeMap<String, TrialMeta>);

fn parse_file(text: &str) -> Result<CacheTables, String> {
    let doc = parse_json(text).map_err(|e| e.to_string())?;
    let obj = doc.as_object().ok_or("top level must be an object")?;
    match obj.get("version").and_then(JsonValue::as_f64) {
        // Version 1 lacks the meta side-table but its entries are still
        // valid measurements; load them (they just cannot seed transfers).
        Some(v) if v == 1.0 || v == FORMAT_VERSION => {}
        other => return Err(format!("unsupported cache version {other:?}")),
    }
    let entries: BTreeMap<String, f64> = obj
        .get("entries")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"entries\" object")?
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|gbs| (k.clone(), gbs))
                .ok_or_else(|| format!("entry {k:?} is not a number"))
        })
        .collect::<Result<_, _>>()?;
    let mut meta = BTreeMap::new();
    if let Some(table) = obj.get("meta").and_then(JsonValue::as_object) {
        for (k, v) in table {
            meta.insert(
                k.clone(),
                parse_meta(v).map_err(|e| format!("meta {k:?}: {e}"))?,
            );
        }
    }
    Ok((entries, meta))
}

fn parse_meta(v: &JsonValue) -> Result<TrialMeta, String> {
    let obj = v.as_object().ok_or("must be an object")?;
    let field_str = |name: &str| -> Result<String, String> {
        obj.get(name)
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing string field {name:?}"))
    };
    let spec = obj
        .get("spec")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"spec\" object")?;
    let field_usize = |name: &str| -> Result<usize, String> {
        spec.get(name)
            .and_then(JsonValue::as_f64)
            .map(|f| f as usize)
            .ok_or_else(|| format!("missing numeric spec field {name:?}"))
    };
    let (ba, sa) = (field_usize("base_align")?, field_usize("seg_align")?);
    for (name, v) in [("base_align", ba), ("seg_align", sa)] {
        if !v.max(1).is_power_of_two() {
            return Err(format!("spec field {name:?} = {v} is not a power of two"));
        }
    }
    Ok(TrialMeta {
        tag: field_str("tag")?,
        chip: field_str("chip")?,
        // Rebuild through the setters so loaded specs are canonical.
        spec: LayoutSpec::new()
            .base_align(ba)
            .seg_align(sa)
            .shift(field_usize("shift")?)
            .block_offset(field_usize("block_offset")?),
    })
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("t2opt-autotune-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn key_is_stable_and_content_sensitive() {
        let chip = ChipConfig::ultrasparc_t2();
        let w = Workload::triad_smoke(1 << 10, 8);
        let spec = LayoutSpec::new().base_align(8192);
        let k1 = ResultCache::key(&w, &chip, &spec);
        let k2 = ResultCache::key(&w, &chip, &spec);
        assert_eq!(k1, k2, "same triple, same key");
        assert_eq!(k1.len(), 16);

        let other_spec = ResultCache::key(&w, &chip, &spec.clone().block_offset(128));
        assert_ne!(k1, other_spec, "candidate must be part of the address");
        let other_load = ResultCache::key(&Workload::triad_smoke(1 << 11, 8), &chip, &spec);
        assert_ne!(k1, other_load, "workload must be part of the address");
    }

    #[test]
    fn canonical_specs_share_a_key() {
        // seg_align 0 and 1 normalize to the same spec, so they must hit
        // the same cache line.
        let chip = ChipConfig::ultrasparc_t2();
        let w = Workload::triad_smoke(1 << 10, 8);
        assert_eq!(
            ResultCache::key(&w, &chip, &LayoutSpec::new().seg_align(0)),
            ResultCache::key(&w, &chip, &LayoutSpec::new().seg_align(1)),
        );
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c = ResultCache::in_memory();
        assert_eq!(c.get("00"), None);
        c.insert("00".into(), 7.5);
        assert_eq!(c.get("00"), Some(7.5));
        assert_eq!(c.get("01"), None);
        assert_eq!((c.hits(), c.misses()), (1, 2));
        c.reset_counters();
        assert_eq!((c.hits(), c.misses()), (0, 0));
    }

    #[test]
    fn round_trips_through_disk() {
        let path = tmp_path("roundtrip.json");
        let _ = std::fs::remove_file(&path);
        let mut c = ResultCache::at_path(&path).unwrap();
        c.insert("aa".into(), 1.25);
        c.insert("bb".into(), 2.5);
        c.save().unwrap();

        let mut reloaded = ResultCache::at_path(&path).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.get("aa"), Some(1.25));
        assert_eq!(reloaded.get("bb"), Some(2.5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_without_changes_is_cheap_and_corrupt_files_error() {
        let path = tmp_path("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = ResultCache::at_path(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);

        let mut mem = ResultCache::in_memory();
        mem.insert("aa".into(), 1.0);
        mem.save().unwrap();
    }

    #[test]
    fn rejects_unknown_version() {
        let path = tmp_path("version.json");
        std::fs::write(&path, r#"{"version":99,"entries":{}}"#).unwrap();
        assert!(ResultCache::at_path(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn accepts_version_1_files_without_meta() {
        let path = tmp_path("v1.json");
        std::fs::write(&path, r#"{"version":1,"entries":{"aa":3.5}}"#).unwrap();
        let mut c = ResultCache::at_path(&path).unwrap();
        assert_eq!(c.get("aa"), Some(3.5));
        assert_eq!(
            c.transfer_seed("jacobi", "anything", 512),
            None,
            "v1 entries carry no meta, so nothing can transfer"
        );
        let _ = std::fs::remove_file(&path);
    }

    fn meta(tag: &str, chip: &str, spec: LayoutSpec) -> TrialMeta {
        TrialMeta {
            tag: tag.into(),
            chip: chip.into(),
            spec,
        }
    }

    #[test]
    fn meta_round_trips_through_disk() {
        let path = tmp_path("meta_roundtrip.json");
        let _ = std::fs::remove_file(&path);
        let chip = ResultCache::chip_fingerprint(&ChipConfig::ultrasparc_t2());
        let spec = LayoutSpec::new().base_align(8192).seg_align(512).shift(128);
        let mut c = ResultCache::at_path(&path).unwrap();
        c.insert_with_meta("aa".into(), 9.0, meta("triad", &chip, spec.clone()));
        c.save().unwrap();

        let reloaded = ResultCache::at_path(&path).unwrap();
        assert_eq!(
            reloaded.transfer_seed("jacobi", &chip, 512),
            Some(spec),
            "meta must survive a save/load cycle"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transfer_seed_ranks_relatively_within_families() {
        let chip = "cafe";
        let mut c = ResultCache::in_memory();
        // Slow family: clear winner at 2 GB/s (score 1.0 on "good").
        let good = LayoutSpec::new().base_align(8192).block_offset(128);
        c.insert_with_meta("s0".into(), 2.0, meta("stream_mix", chip, good.clone()));
        c.insert_with_meta(
            "s1".into(),
            0.5,
            meta("stream_mix", chip, LayoutSpec::new()),
        );
        // Fast family: higher absolute bandwidths, but "bad" is only its
        // runner-up (score 10/16 < 1.0).
        c.insert_with_meta(
            "t0".into(),
            16.0,
            meta("triad", chip, good.clone().shift(64)),
        );
        c.insert_with_meta("t1".into(), 10.0, meta("triad", chip, LayoutSpec::new()));
        let seed = c.transfer_seed("jacobi", chip, 512).unwrap();
        // Both family winners score 1.0; the tie breaks to the smaller
        // key "s0" — proving absolute bandwidth does not leak across.
        assert_eq!(seed, good);
    }

    #[test]
    fn transfer_seed_skips_own_family_and_foreign_chips() {
        let mut c = ResultCache::in_memory();
        c.insert_with_meta(
            "j0".into(),
            99.0,
            meta("jacobi", "cafe", LayoutSpec::new().shift(64)),
        );
        c.insert_with_meta(
            "x0".into(),
            99.0,
            meta("triad", "beef", LayoutSpec::new().shift(64)),
        );
        assert_eq!(
            c.transfer_seed("jacobi", "cafe", 512),
            None,
            "own-family and wrong-chip entries must not seed"
        );
        assert!(c.transfer_seed("lbm_IvJK", "cafe", 512).is_some());
    }

    #[test]
    fn transfer_seed_canonicalizes_mod_period() {
        let mut c = ResultCache::in_memory();
        let spec = LayoutSpec::new()
            .base_align(8192)
            .shift(512 + 128)
            .block_offset(1024 + 64);
        c.insert_with_meta("a0".into(), 5.0, meta("triad", "cafe", spec));
        let seed = c.transfer_seed("jacobi", "cafe", 512).unwrap();
        assert_eq!(seed.shift, 128);
        assert_eq!(seed.block_offset, 64);
    }
}
