//! Persistent, content-addressed trial-result cache.
//!
//! Every simulated trial is fully determined by `(workload, chip config,
//! candidate layout)`; its measured bandwidth is therefore cacheable under a
//! hash of that triple. The cache keys on the FNV-1a 64 digest of the
//! triple's canonical JSON serialization, so *any* change to the workload,
//! the chip, or the candidate produces a fresh key, while re-running the
//! same sweep (or extending it) reuses every previous trial — repeated
//! sweeps and CI runs are incremental.
//!
//! The on-disk format is a single JSON object (written with
//! [`t2opt_core::json`], read back with its parser), human-inspectable and
//! diff-friendly:
//!
//! ```json
//! {"version":1,"entries":{"89ab…":12.5,"cdef…":3.25}}
//! ```

use crate::workload::Workload;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use t2opt_core::json::{parse_json, to_json_string, JsonValue};
use t2opt_core::layout::LayoutSpec;
use t2opt_sim::ChipConfig;

/// On-disk format version; bump when the trial semantics change in a way
/// that invalidates old measurements.
const FORMAT_VERSION: f64 = 1.0;

/// A content-addressed map from trial key to measured bandwidth (GB/s),
/// optionally backed by a JSON file. See the module docs.
#[derive(Debug)]
pub struct ResultCache {
    path: Option<PathBuf>,
    entries: BTreeMap<String, f64>,
    hits: u64,
    misses: u64,
    dirty: bool,
}

impl ResultCache {
    /// An empty cache with no backing file (every sweep starts cold;
    /// [`ResultCache::save`] is a no-op).
    pub fn in_memory() -> Self {
        ResultCache {
            path: None,
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            dirty: false,
        }
    }

    /// A cache backed by `path`. If the file exists it is loaded (a
    /// malformed file is an `InvalidData` error — delete it to start over);
    /// if not, the cache starts empty and the file is created on
    /// [`ResultCache::save`].
    pub fn at_path(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut cache = ResultCache::in_memory();
        if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            cache.entries = parse_entries(&text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("corrupt result cache {}: {e}", path.display()),
                )
            })?;
        }
        cache.path = Some(path);
        Ok(cache)
    }

    /// The content address of one trial: FNV-1a 64 (hex) over the canonical
    /// JSON of `(workload, chip, candidate)`.
    pub fn key(workload: &Workload, chip: &ChipConfig, spec: &LayoutSpec) -> String {
        let canonical = to_json_string(&(workload, chip, spec));
        format!("{:016x}", fnv1a64(canonical.as_bytes()))
    }

    /// Looks `key` up, counting the outcome as a hit or a miss.
    pub fn get(&mut self, key: &str) -> Option<f64> {
        match self.entries.get(key) {
            Some(&gbs) => {
                self.hits += 1;
                Some(gbs)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks `key` up without touching the hit/miss counters.
    pub fn peek(&self, key: &str) -> Option<f64> {
        self.entries.get(key).copied()
    }

    /// Records a measured bandwidth under `key`.
    pub fn insert(&mut self, key: String, gbs: f64) {
        let prev = self.entries.insert(key, gbs);
        self.dirty = self.dirty || prev != Some(gbs);
    }

    /// Writes the cache back to its backing file. A no-op for in-memory
    /// caches and when nothing changed since the last load/save.
    pub fn save(&mut self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if !self.dirty {
            return Ok(());
        }
        std::fs::write(
            path,
            format!(
                r#"{{"version":{FORMAT_VERSION},"entries":{}}}"#,
                to_json_string(&self.entries)
            ),
        )?;
        self.dirty = false;
        Ok(())
    }

    /// Number of cached trials.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no trials.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache since the last counter reset.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh simulation since the last counter
    /// reset.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Zeroes the hit/miss counters (e.g. between tuner invocations that
    /// share one cache).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

fn parse_entries(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let doc = parse_json(text).map_err(|e| e.to_string())?;
    let obj = doc.as_object().ok_or("top level must be an object")?;
    match obj.get("version").and_then(JsonValue::as_f64) {
        Some(v) if v == FORMAT_VERSION => {}
        other => return Err(format!("unsupported cache version {other:?}")),
    }
    let entries = obj
        .get("entries")
        .and_then(JsonValue::as_object)
        .ok_or("missing \"entries\" object")?;
    entries
        .iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|gbs| (k.clone(), gbs))
                .ok_or_else(|| format!("entry {k:?} is not a number"))
        })
        .collect()
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("t2opt-autotune-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn key_is_stable_and_content_sensitive() {
        let chip = ChipConfig::ultrasparc_t2();
        let w = Workload::triad_smoke(1 << 10, 8);
        let spec = LayoutSpec::new().base_align(8192);
        let k1 = ResultCache::key(&w, &chip, &spec);
        let k2 = ResultCache::key(&w, &chip, &spec);
        assert_eq!(k1, k2, "same triple, same key");
        assert_eq!(k1.len(), 16);

        let other_spec = ResultCache::key(&w, &chip, &spec.clone().block_offset(128));
        assert_ne!(k1, other_spec, "candidate must be part of the address");
        let other_load = ResultCache::key(&Workload::triad_smoke(1 << 11, 8), &chip, &spec);
        assert_ne!(k1, other_load, "workload must be part of the address");
    }

    #[test]
    fn canonical_specs_share_a_key() {
        // seg_align 0 and 1 normalize to the same spec, so they must hit
        // the same cache line.
        let chip = ChipConfig::ultrasparc_t2();
        let w = Workload::triad_smoke(1 << 10, 8);
        assert_eq!(
            ResultCache::key(&w, &chip, &LayoutSpec::new().seg_align(0)),
            ResultCache::key(&w, &chip, &LayoutSpec::new().seg_align(1)),
        );
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut c = ResultCache::in_memory();
        assert_eq!(c.get("00"), None);
        c.insert("00".into(), 7.5);
        assert_eq!(c.get("00"), Some(7.5));
        assert_eq!(c.get("01"), None);
        assert_eq!((c.hits(), c.misses()), (1, 2));
        c.reset_counters();
        assert_eq!((c.hits(), c.misses()), (0, 0));
    }

    #[test]
    fn round_trips_through_disk() {
        let path = tmp_path("roundtrip.json");
        let _ = std::fs::remove_file(&path);
        let mut c = ResultCache::at_path(&path).unwrap();
        c.insert("aa".into(), 1.25);
        c.insert("bb".into(), 2.5);
        c.save().unwrap();

        let mut reloaded = ResultCache::at_path(&path).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.get("aa"), Some(1.25));
        assert_eq!(reloaded.get("bb"), Some(2.5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_without_changes_is_cheap_and_corrupt_files_error() {
        let path = tmp_path("corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = ResultCache::at_path(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);

        let mut mem = ResultCache::in_memory();
        mem.insert("aa".into(), 1.0);
        mem.save().unwrap();
    }

    #[test]
    fn rejects_unknown_version() {
        let path = tmp_path("version.json");
        std::fs::write(&path, r#"{"version":99,"entries":{}}"#).unwrap();
        assert!(ResultCache::at_path(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
