//! The analytic surrogate behind [`SearchStrategy::ModelPruned`]
//! (see [`crate::tuner`]): a [`PerfModel`] built field-by-field from the
//! *same* simulator configuration the trials run on, so the surrogate and
//! the simulator always describe the same machine — including any manual
//! overrides a caller applied on top of the chip template.
//!
//! [`SearchStrategy::ModelPruned`]: crate::tuner::SearchStrategy::ModelPruned

use t2opt_model::{KernelShape, ModelTiming, PerfModel};
use t2opt_sim::ChipConfig;

use crate::workload::Workload;
use t2opt_core::layout::LayoutSpec;

/// A closed-form performance model sharing every timing figure with the
/// given simulator configuration.
pub fn model_for_chip(chip: &ChipConfig) -> PerfModel {
    PerfModel::new(
        chip.map,
        ModelTiming {
            clock_hz: chip.clock_hz,
            read_service: chip.mem.read_service,
            write_service: chip.mem.write_service,
            command_cycles: chip.mem.command_cycles,
            extra_latency: chip.mem.extra_latency,
            hit_latency: chip.l2.hit_latency,
            queue_depth: chip.mem.queue_depth,
            outstanding_misses: chip.core.outstanding_misses,
        },
    )
    .with_numa(chip.numa)
}

/// The model's predicted bandwidth for one (workload, layout) candidate —
/// the score [`SearchStrategy::ModelPruned`] ranks the grid by. Costs one
/// closed-form evaluation, zero simulations.
///
/// [`SearchStrategy::ModelPruned`]: crate::tuner::SearchStrategy::ModelPruned
pub fn surrogate_score(model: &PerfModel, workload: &Workload, spec: &LayoutSpec) -> f64 {
    let shape: KernelShape = workload.model_shape(spec);
    model.predict_placed(&shape, spec.placement).gbs
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2opt_core::chip::ChipSpec;

    #[test]
    fn chip_model_mirrors_the_simulator_config() {
        let chip = ChipConfig::ultrasparc_t2();
        let model = model_for_chip(&chip);
        assert_eq!(model.timing().read_service, chip.mem.read_service);
        assert_eq!(model.timing().write_service, chip.mem.write_service);
        assert_eq!(model.timing().queue_depth, chip.mem.queue_depth);
        // For a preset-derived config this coincides with the spec path.
        assert_eq!(
            model,
            PerfModel::for_spec(&ChipSpec::ultrasparc_t2()),
            "ChipConfig template and ChipSpec template must agree"
        );
    }

    #[test]
    fn surrogate_prefers_the_spread_offset() {
        let chip = ChipConfig::ultrasparc_t2();
        let model = model_for_chip(&chip);
        let w = Workload::triad_smoke(1 << 12, 16);
        let aliased = surrogate_score(&model, &w, &LayoutSpec::new().base_align(8192));
        let spread = surrogate_score(
            &model,
            &w,
            &LayoutSpec::new().base_align(8192).block_offset(128),
        );
        assert!(
            spread > 1.5 * aliased,
            "model must rank offset 128 far above aliased: {aliased} vs {spread}"
        );
    }
}
