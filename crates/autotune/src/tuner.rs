//! The search engine: strategies, parallel trial execution, and the
//! [`TuneReport`] with its advisor cross-validation.
//!
//! A [`Tuner`] evaluates candidate [`LayoutSpec`]s from a [`ParamSpace`]
//! against a [`Workload`] by running the memory-system simulator, batching
//! independent trials onto a [`ThreadPool`] (each simulated trial is
//! single-threaded host work, so trials — not simulator internals — are the
//! parallel grain). Results are memoized in a content-addressed
//! [`ResultCache`], checked *before* dispatch: a warm cache re-runs a sweep
//! with zero new simulations.

use crate::cache::{ResultCache, TrialMeta};
use crate::space::{ParamSpace, N_DIMS};
use crate::workload::Workload;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use t2opt_core::advisor::LayoutAdvisor;
use t2opt_core::layout::LayoutSpec;
use t2opt_parallel::{Schedule, ThreadPool};
use t2opt_sim::{ChipConfig, Simulation};
use t2opt_telemetry::metrics::Sink;

/// How the tuner walks the parameter space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SearchStrategy {
    /// Measure every candidate of the space. Exact; cost is the product of
    /// the dimension sizes.
    Exhaustive,
    /// Cyclic coordinate descent from the space's origin `[0, 0, 0, 0]`:
    /// sweep one dimension at a time (each sweep is one parallel batch),
    /// move to its best value, repeat until a full round improves nothing
    /// or `max_rounds` is reached.
    CoordinateDescent {
        /// Upper bound on full rounds over the four dimensions.
        max_rounds: usize,
    },
    /// Coordinate descent seeded at the in-space candidate nearest to the
    /// analytic [`LayoutAdvisor::suggest_layout`] — the paper's closed-form
    /// optimum — and refined locally. When the model is right this
    /// converges in one round; when the mapping diverges from the model the
    /// descent walks away from the seed and the report's agreement check
    /// flags it.
    AdvisorSeeded {
        /// Upper bound on full rounds over the four dimensions.
        max_rounds: usize,
    },
    /// Simulated annealing from the space's origin: a seeded xorshift64*
    /// PRNG proposes single-coordinate moves, accepted by the Metropolis
    /// rule on *relative* bandwidth loss under geometric cooling (fixed
    /// endpoints [`ANNEAL_T0`] → [`ANNEAL_T_END`]). Unlike coordinate
    /// descent this escapes the local optima of the non-separable
    /// `(seg_align, shift, block_offset)` space — improving one parameter
    /// alone can hurt until a second one moves with it. Fully
    /// deterministic for a fixed `seed`; repeated proposals cost nothing
    /// (the result cache absorbs them).
    SimulatedAnnealing {
        /// PRNG seed; equal seeds reproduce the identical trial sequence.
        seed: u64,
        /// Proposal steps (≈ upper bound on fresh simulations + 1).
        steps: usize,
    },
    /// Surrogate pre-filter: the closed-form `t2opt-model` predictor (built
    /// from the *same* simulator configuration the trials run on, see
    /// [`crate::surrogate::model_for_chip`]) scores every candidate of the
    /// grid at zero simulation cost, and only the best `keep_percent` % —
    /// extended to include every candidate tying the cutoff score, so a
    /// flat model plateau is never split arbitrarily — is actually
    /// simulated. On the pinned T2 grids this finds the same winner as
    /// [`SearchStrategy::Exhaustive`] with strictly fewer simulations;
    /// the report's [`Agreement`] section flags the cases where the model
    /// mis-ranks and the pruning would be unsafe.
    ModelPruned {
        /// Percentage (1–100) of the grid to simulate, model-best first.
        keep_percent: u32,
    },
    /// Coordinate descent seeded by the best *cross-kernel* cached layout:
    /// [`crate::cache::ResultCache::transfer_seed`] picks the
    /// relatively-best layout any other workload family measured on this
    /// chip (residue classes mod the chip's interleave period make layouts
    /// transferable), and the
    /// descent refines from there. With an empty or unrelated cache this
    /// degrades gracefully to plain coordinate descent from the origin.
    TransferSeeded {
        /// Upper bound on full rounds over the four dimensions.
        max_rounds: usize,
    },
}

impl SearchStrategy {
    /// The default refinement budget used by the convenience constructors.
    pub const DEFAULT_ROUNDS: usize = 4;

    /// The default annealing proposal budget.
    pub const DEFAULT_STEPS: usize = 64;

    /// The default fraction of the grid the surrogate pre-filter keeps.
    /// Half (plus cutoff ties) is the smallest default that preserves the
    /// exhaustive winner on the pinned T2 grids: simulator micro-effects
    /// (bank conflicts, service jitter) split layouts the closed-form
    /// model scores identically, so the winner can sit one model plateau
    /// below the top and a tighter cut would drop it.
    pub const DEFAULT_KEEP_PERCENT: u32 = 50;

    /// Coordinate descent with the default round budget.
    pub fn coordinate_descent() -> Self {
        SearchStrategy::CoordinateDescent {
            max_rounds: Self::DEFAULT_ROUNDS,
        }
    }

    /// Advisor-seeded descent with the default round budget.
    pub fn advisor_seeded() -> Self {
        SearchStrategy::AdvisorSeeded {
            max_rounds: Self::DEFAULT_ROUNDS,
        }
    }

    /// Simulated annealing with the default step budget.
    pub fn simulated_annealing(seed: u64) -> Self {
        SearchStrategy::SimulatedAnnealing {
            seed,
            steps: Self::DEFAULT_STEPS,
        }
    }

    /// Model-pruned exhaustive search with the default keep fraction.
    pub fn model_pruned() -> Self {
        SearchStrategy::ModelPruned {
            keep_percent: Self::DEFAULT_KEEP_PERCENT,
        }
    }

    /// Cache-transfer-seeded descent with the default round budget.
    pub fn transfer_seeded() -> Self {
        SearchStrategy::TransferSeeded {
            max_rounds: Self::DEFAULT_ROUNDS,
        }
    }
}

/// One measured candidate.
#[derive(Debug, Clone, Serialize)]
pub struct Trial {
    /// The layout that was measured.
    pub spec: LayoutSpec,
    /// Simulated bandwidth (GB/s, kernel-reported bytes).
    pub gbs: f64,
    /// The analytic advisor's predicted controller-utilization efficiency
    /// for the same layout (averaged over threads), in `(0, 1]`.
    pub predicted_efficiency: f64,
    /// Whether the measurement was served from the result cache.
    pub from_cache: bool,
}

/// A trial whose measured and predicted *relative* quality disagree: the
/// analytic model mis-ranks this layout — evidence that the real mapping
/// policy differs from the modelled one.
#[derive(Debug, Clone, Serialize)]
pub struct Divergence {
    /// The layout in question.
    pub spec: LayoutSpec,
    /// Measured bandwidth relative to the sweep's best (in `(0, 1]`).
    pub measured_rel: f64,
    /// Predicted efficiency relative to the sweep's best prediction.
    pub predicted_rel: f64,
}

/// Cross-validation of the analytic model against the measurements.
#[derive(Debug, Clone, Serialize)]
pub struct Agreement {
    /// Spearman rank correlation between predicted efficiency and measured
    /// bandwidth over all trials; `None` when undefined (fewer than two
    /// trials, or a constant side).
    pub spearman: Option<f64>,
    /// Relative-quality gap above which a trial is flagged.
    pub tolerance: f64,
    /// Trials whose measured and predicted relative quality differ by more
    /// than `tolerance`, worst first.
    pub divergences: Vec<Divergence>,
}

/// The outcome of one [`Tuner::run`].
#[derive(Debug, Clone, Serialize)]
pub struct TuneReport {
    /// The tuned workload.
    pub workload: Workload,
    /// The strategy that produced the trials.
    pub strategy: SearchStrategy,
    /// Every distinct candidate measured, best first (ties keep
    /// measurement order, so reports are deterministic).
    pub trials: Vec<Trial>,
    /// The winning trial (`trials[0]`).
    pub best: Trial,
    /// Trial lookups served by the result cache.
    pub cache_hits: u64,
    /// Trial lookups that missed the cache.
    pub cache_misses: u64,
    /// Fresh simulations actually executed (= `cache_misses`; kept separate
    /// so a cache-policy change can't silently skew acceptance checks).
    pub simulations_run: u64,
    /// Advisor cross-validation over the trials.
    pub agreement: Agreement,
}

impl TuneReport {
    /// Speedup of the best layout over the worst measured one — for the
    /// offset sweep this is the paper's Fig. 4 gain.
    pub fn best_over_worst(&self) -> f64 {
        match self.trials.last() {
            Some(worst) if worst.gbs > 0.0 => self.best.gbs / worst.gbs,
            _ => 1.0,
        }
    }

    /// Speedup of the best layout over a given measured candidate, if that
    /// candidate is among the trials.
    pub fn speedup_over(&self, spec: &LayoutSpec) -> Option<f64> {
        self.trials
            .iter()
            .find(|t| &t.spec == spec)
            .map(|t| self.best.gbs / t.gbs)
    }
}

/// Relative-quality gap above which the agreement check flags a trial.
const DIVERGENCE_TOLERANCE: f64 = 0.25;

/// The empirical layout autotuner; see the module docs.
pub struct Tuner {
    workload: Workload,
    chip: ChipConfig,
    space: ParamSpace,
    strategy: SearchStrategy,
    cache: ResultCache,
    pool_threads: usize,
    sink: Option<Arc<Sink>>,
}

impl Tuner {
    /// A tuner over `space` for `workload` on `chip`, with the exhaustive
    /// strategy, an in-memory cache, and one trial-runner thread per host
    /// CPU. The advisor used for cross-validation is derived from the
    /// chip's mapping policy.
    pub fn new(workload: Workload, chip: ChipConfig, space: ParamSpace) -> Self {
        let host = std::thread::available_parallelism().map_or(4, |n| n.get());
        Tuner {
            workload,
            chip,
            space,
            strategy: SearchStrategy::Exhaustive,
            cache: ResultCache::in_memory(),
            pool_threads: host,
            sink: None,
        }
    }

    /// Attaches a telemetry sink: every trial gets a span, cache traffic
    /// and pool activity become counters/histograms. A disabled sink (the
    /// [`Sink::new`] default) costs one branch per event.
    pub fn telemetry(mut self, sink: Arc<Sink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Selects the search strategy.
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the result cache (e.g. with a file-backed one).
    pub fn cache(mut self, cache: ResultCache) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the host thread-pool size used to run trials.
    pub fn pool_threads(mut self, n: usize) -> Self {
        self.pool_threads = n.max(1);
        self
    }

    /// The current result cache (hit/miss counters reflect the last run).
    pub fn cache_ref(&self) -> &ResultCache {
        &self.cache
    }

    /// Consumes the tuner, returning its cache (e.g. to save it).
    pub fn into_cache(self) -> ResultCache {
        self.cache
    }

    /// The advisor matching the chip's mapping policy and socket topology.
    pub fn advisor(&self) -> LayoutAdvisor {
        LayoutAdvisor::new(self.chip.map).with_numa(self.chip.numa, self.chip.mem.read_service)
    }

    /// Runs the configured search and returns the report. Counters in the
    /// report cover this invocation only; the cache itself persists across
    /// invocations, so a second run over the same space performs zero new
    /// simulations.
    ///
    /// # Panics
    /// Panics if the space is empty or the workload does not fit the chip.
    pub fn run(&mut self) -> TuneReport {
        assert!(
            !self.space.is_empty(),
            "parameter space has an empty dimension"
        );
        self.workload.validate(&self.chip);
        self.cache.reset_counters();

        // The run span roots a fresh trace; trial spans parent to it so
        // exporters can reassemble the tuning run as one tree.
        let run_span = self.sink.as_ref().map(|s| s.span_root("tune.run", 0));
        let run_ids = run_span
            .as_ref()
            .map_or((0, 0), |g| (g.trace_id(), g.span_id()));
        let pool = if self.sink.is_some() {
            ThreadPool::instrumented(self.pool_threads)
        } else {
            ThreadPool::new(self.pool_threads)
        };
        let mut trials: Vec<Trial> = Vec::new();
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        let mut simulations_run = 0u64;

        // Resolve strategy seeds before the walk borrows `self` for its
        // objective closure.
        let strategy = self.strategy;
        let dims = self.space.dims();
        let transfer_start = match strategy {
            SearchStrategy::TransferSeeded { .. } => {
                let fingerprint = ResultCache::chip_fingerprint(&self.chip);
                let period = self.chip.interleave_period();
                self.cache
                    .transfer_seed(&self.workload.tag(), &fingerprint, period)
                    .map(|spec| self.space.nearest_index(&spec))
            }
            _ => None,
        };
        let transfer_seed_used = transfer_start.is_some();
        let advisor_start = match strategy {
            SearchStrategy::AdvisorSeeded { .. } => {
                Some(self.space.nearest_index(&self.advisor().suggest_layout()))
            }
            _ => None,
        };
        let pruned = match strategy {
            SearchStrategy::ModelPruned { keep_percent } => {
                Some(self.model_pruned_candidates(keep_percent))
            }
            _ => None,
        };

        {
            let mut eval = |batch: &[[usize; N_DIMS]]| {
                self.measure(
                    batch,
                    &pool,
                    &mut trials,
                    &mut seen,
                    &mut simulations_run,
                    run_ids,
                )
            };
            match strategy {
                SearchStrategy::Exhaustive => {
                    let mut all = Vec::with_capacity(dims.iter().product());
                    for b in 0..dims[0] {
                        for s in 0..dims[1] {
                            for h in 0..dims[2] {
                                for o in 0..dims[3] {
                                    for p in 0..dims[4] {
                                        all.push([b, s, h, o, p]);
                                    }
                                }
                            }
                        }
                    }
                    eval(&all);
                }
                SearchStrategy::CoordinateDescent { max_rounds } => {
                    descend_impl(dims, [0; N_DIMS], max_rounds, &mut eval);
                }
                SearchStrategy::AdvisorSeeded { max_rounds } => {
                    descend_impl(
                        dims,
                        advisor_start.expect("advisor seed resolved above"),
                        max_rounds,
                        &mut eval,
                    );
                }
                SearchStrategy::SimulatedAnnealing { seed, steps } => {
                    anneal_impl(dims, [0; N_DIMS], seed, steps, &mut eval);
                }
                SearchStrategy::ModelPruned { .. } => {
                    eval(&pruned.expect("pruned candidates resolved above"));
                }
                SearchStrategy::TransferSeeded { max_rounds } => {
                    descend_impl(
                        dims,
                        transfer_start.unwrap_or([0; N_DIMS]),
                        max_rounds,
                        &mut eval,
                    );
                }
            }
        }

        // Rank best-first; ties keep measurement order (stable sort), so a
        // fixed configuration always yields the identical report.
        trials.sort_by(|a, b| b.gbs.partial_cmp(&a.gbs).expect("bandwidth is finite"));
        let best = trials
            .first()
            .expect("non-empty space yields trials")
            .clone();
        let agreement = agreement_check(&trials);

        // Persistence is best effort — a read-only cache location must not
        // fail the tuning run — but not silent.
        if let Err(e) = self.cache.save() {
            eprintln!("t2opt-autotune: warning: could not persist result cache: {e}");
        }

        if let Some(sink) = &self.sink {
            sink.counter("autotune.cache_hits").add(self.cache.hits());
            sink.counter("autotune.cache_misses")
                .add(self.cache.misses());
            sink.counter("autotune.simulations_run")
                .add(simulations_run);
            if transfer_seed_used {
                sink.counter("autotune.transfer_seed_used").add(1);
            }
            if let Some(m) = pool.metrics() {
                sink.counter("autotune.pool_jobs").add(m.jobs);
                sink.counter("autotune.pool_busy_ns")
                    .add(m.worker_busy_ns.iter().sum());
                sink.counter("autotune.pool_queue_latency_mean_ns")
                    .add(m.queue_latency_ns.mean() as u64);
            }
        }

        TuneReport {
            workload: self.workload.clone(),
            strategy: self.strategy,
            best,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            simulations_run,
            agreement,
            trials,
        }
    }

    /// Ranks the whole grid with the analytic surrogate and returns the
    /// model-best `keep_percent` % of candidates, extended across ties at
    /// the cutoff score (the model's efficiency statistic plateaus at 1.0
    /// for every fully spread layout, and splitting such a plateau would
    /// make the kept set — and possibly the winner — depend on grid
    /// enumeration order). Costs zero simulations.
    fn model_pruned_candidates(&self, keep_percent: u32) -> Vec<[usize; N_DIMS]> {
        let keep_percent = keep_percent.clamp(1, 100) as usize;
        let model = crate::surrogate::model_for_chip(&self.chip);
        let dims = self.space.dims();
        let mut scored: Vec<([usize; N_DIMS], f64)> = Vec::with_capacity(self.space.len());
        for b in 0..dims[0] {
            for s in 0..dims[1] {
                for h in 0..dims[2] {
                    for o in 0..dims[3] {
                        for pl in 0..dims[4] {
                            let idx = [b, s, h, o, pl];
                            let spec = self.space.spec_at(idx);
                            let gbs =
                                crate::surrogate::surrogate_score(&model, &self.workload, &spec);
                            scored.push((idx, gbs));
                        }
                    }
                }
            }
        }
        // Model-best first; equal scores keep row-major order so the kept
        // set is deterministic.
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("model scores are finite")
                .then(a.0.cmp(&b.0))
        });
        let keep = (scored.len() * keep_percent).div_ceil(100).max(1);
        let cutoff = scored[keep - 1].1;
        let mut kept: Vec<[usize; N_DIMS]> = scored
            .iter()
            .take_while(|(_, gbs)| *gbs >= cutoff)
            .map(|(idx, _)| *idx)
            .collect();
        // Evaluate the survivors in row-major order — the same relative
        // order the exhaustive walk uses — so measured-bandwidth ties break
        // identically and pruning never flips the reported winner.
        kept.sort();
        kept
    }

    /// Measures the candidates at `idxs` (cache first, then one parallel
    /// batch for the misses), records fresh distinct trials, and returns
    /// each candidate's bandwidth in input order.
    fn measure(
        &mut self,
        idxs: &[[usize; N_DIMS]],
        pool: &ThreadPool,
        trials: &mut Vec<Trial>,
        seen: &mut BTreeMap<String, usize>,
        simulations_run: &mut u64,
        run_ids: (u64, u64),
    ) -> Vec<f64> {
        let advisor = self.advisor();
        let specs: Vec<LayoutSpec> = idxs.iter().map(|&i| self.space.spec_at(i)).collect();
        let keys: Vec<String> = specs
            .iter()
            .map(|s| ResultCache::key(&self.workload, &self.chip, s))
            .collect();

        // Cache pass. Candidates repeated within one batch (distinct grid
        // points can normalize to the same spec) or measured by an earlier
        // batch are neither re-simulated nor double-counted: only the first
        // occurrence of an unknown key is dispatched.
        let mut pending: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        let mut to_run: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if seen.contains_key(key) || pending.contains(key.as_str()) {
                continue;
            }
            match self.cache.get(key) {
                Some(gbs) => {
                    seen.insert(key.clone(), trials.len());
                    trials.push(Trial {
                        spec: specs[i].clone(),
                        gbs,
                        predicted_efficiency: self
                            .workload
                            .predicted_efficiency(&advisor, &specs[i]),
                        from_cache: true,
                    });
                }
                None => {
                    pending.insert(key.as_str());
                    to_run.push(i);
                }
            }
        }

        // Parallel batch over the misses. Simulator programs are built
        // inside the workers (`Program` is not `Send`); each slot is
        // written by exactly one trial, and the simulator is deterministic,
        // so the batch result does not depend on worker interleaving.
        if !to_run.is_empty() {
            let slots: Vec<Mutex<Option<f64>>> = to_run.iter().map(|_| Mutex::new(None)).collect();
            let workload = &self.workload;
            let chip = &self.chip;
            let n_cores = self.chip.core.n_cores;
            let sink = self.sink.clone();
            let run_specs: Vec<&LayoutSpec> = to_run.iter().map(|&i| &specs[i]).collect();
            pool.parallel_for(0..to_run.len(), Schedule::Dynamic(1), |tid, chunk| {
                for j in chunk {
                    let spec = run_specs[j];
                    let _span = sink.as_ref().map(|s| {
                        s.span_child(
                            format!("trial bo{} sh{}", spec.block_offset, spec.shift),
                            tid as u32,
                            run_ids.0,
                            run_ids.1,
                        )
                    });
                    // The candidate's NUMA page placement rides on the
                    // layout spec; the engine takes it from the config.
                    let mut trial_chip = chip.clone();
                    trial_chip.placement = spec.placement;
                    let mut sim = Simulation::new(trial_chip);
                    if workload.warmup() {
                        sim = sim.measure_after_barrier(0);
                    }
                    let programs = workload.build_programs(spec);
                    let stats = sim.run_programs(programs, |tid| tid % n_cores);
                    let gbs = stats.reported_bandwidth_gbs(chip, workload.reported_bytes());
                    *slots[j].lock().expect("slot lock") = Some(gbs);
                }
            });
            *simulations_run += to_run.len() as u64;
            let tag = self.workload.tag();
            let fingerprint = ResultCache::chip_fingerprint(&self.chip);
            for (j, &i) in to_run.iter().enumerate() {
                let gbs = slots[j]
                    .lock()
                    .expect("slot lock")
                    .expect("every dispatched trial completes");
                // Fresh measurements carry transfer meta so later searches
                // of *other* kernels can seed from them.
                self.cache.insert_with_meta(
                    keys[i].clone(),
                    gbs,
                    TrialMeta {
                        tag: tag.clone(),
                        chip: fingerprint.clone(),
                        spec: specs[i].clone(),
                    },
                );
                seen.insert(keys[i].clone(), trials.len());
                trials.push(Trial {
                    spec: specs[i].clone(),
                    gbs,
                    predicted_efficiency: self.workload.predicted_efficiency(&advisor, &specs[i]),
                    from_cache: false,
                });
            }
        }

        keys.iter().map(|key| trials[seen[key]].gbs).collect()
    }
}

/// Annealing start temperature (relative-bandwidth units: at `T0` a move
/// costing 25 % of the current bandwidth is accepted with probability
/// `1/e`).
pub const ANNEAL_T0: f64 = 0.25;

/// Annealing end temperature — cold enough that only near-neutral moves
/// are still accepted in the final steps.
pub const ANNEAL_T_END: f64 = 0.005;

/// xorshift64\* step: fast, well-distributed, and trivially portable — the
/// determinism the fixed-seed reproducibility tests pin down.
fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Uniform draw in `[0, 1)` from the top 53 bits of one PRNG step.
fn rand_unit(state: &mut u64) -> f64 {
    (xorshift64star(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Cyclic coordinate descent over the grid `dims` from `start`, driven by
/// a batch objective (higher is better): sweep one dimension at a time,
/// move to its best value, stop when a full round improves nothing or
/// `max_rounds` is reached. Returns the final position and value.
///
/// A free function over the objective so walkers are unit-testable against
/// synthetic landscapes; [`Tuner::run`] passes a closure that simulates
/// (cache-first) and records trials.
pub(crate) fn descend_impl<F>(
    dims: [usize; N_DIMS],
    start: [usize; N_DIMS],
    max_rounds: usize,
    eval: &mut F,
) -> ([usize; N_DIMS], f64)
where
    F: FnMut(&[[usize; N_DIMS]]) -> Vec<f64>,
{
    let mut cur = start;
    let mut cur_gbs = eval(&[cur])[0];
    for _ in 0..max_rounds {
        let mut improved = false;
        for dim in 0..N_DIMS {
            let line: Vec<[usize; N_DIMS]> = (0..dims[dim])
                .map(|v| {
                    let mut idx = cur;
                    idx[dim] = v;
                    idx
                })
                .collect();
            let gbs = eval(&line);
            // Argmax along the line; ties to the lowest grid value so
            // the walk is deterministic.
            let (best_v, &best_gbs) = gbs
                .iter()
                .enumerate()
                .max_by(|(ai, a), (bi, b)| {
                    a.partial_cmp(b)
                        .expect("bandwidth is finite")
                        .then(bi.cmp(ai))
                })
                .expect("dimension is non-empty");
            if best_gbs > cur_gbs {
                cur[dim] = best_v;
                cur_gbs = best_gbs;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    (cur, cur_gbs)
}

/// Simulated annealing over the grid `dims` from `start` (see
/// [`SearchStrategy::SimulatedAnnealing`] for the schedule): each step
/// proposes one random single-coordinate move, always accepts
/// improvements, and accepts a relative loss `δ < 0` with probability
/// `exp(δ / T)` under geometric cooling from [`ANNEAL_T0`] to
/// [`ANNEAL_T_END`]. Returns the best position *ever visited* and its
/// value (the walk itself may end somewhere worse).
pub(crate) fn anneal_impl<F>(
    dims: [usize; N_DIMS],
    start: [usize; N_DIMS],
    seed: u64,
    steps: usize,
    eval: &mut F,
) -> ([usize; N_DIMS], f64)
where
    F: FnMut(&[[usize; N_DIMS]]) -> Vec<f64>,
{
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    if state == 0 {
        state = 0x2545_f491_4f6c_dd1d;
    }
    let mut cur = start;
    let mut cur_gbs = eval(&[cur])[0];
    let (mut best, mut best_gbs) = (cur, cur_gbs);
    let movable: Vec<usize> = (0..N_DIMS).filter(|&d| dims[d] > 1).collect();
    if movable.is_empty() {
        return (best, best_gbs);
    }
    let denom = steps.saturating_sub(1).max(1) as f64;
    for step in 0..steps {
        let t = ANNEAL_T0 * (ANNEAL_T_END / ANNEAL_T0).powf(step as f64 / denom);
        let dim = movable[(xorshift64star(&mut state) % movable.len() as u64) as usize];
        // A uniformly random *different* value along `dim`.
        let mut v = (xorshift64star(&mut state) % (dims[dim] as u64 - 1)) as usize;
        if v >= cur[dim] {
            v += 1;
        }
        let mut cand = cur;
        cand[dim] = v;
        let gbs = eval(&[cand])[0];
        let accept = gbs >= cur_gbs || {
            let delta_rel = (gbs - cur_gbs) / cur_gbs.max(f64::MIN_POSITIVE);
            rand_unit(&mut state) < (delta_rel / t).exp()
        };
        if accept {
            cur = cand;
            cur_gbs = gbs;
            if cur_gbs > best_gbs {
                best = cur;
                best_gbs = cur_gbs;
            }
        }
    }
    (best, best_gbs)
}

/// Builds the [`Agreement`] section: Spearman rank correlation plus the
/// list of trials whose relative measured and predicted quality diverge.
fn agreement_check(trials: &[Trial]) -> Agreement {
    let measured: Vec<f64> = trials.iter().map(|t| t.gbs).collect();
    let predicted: Vec<f64> = trials.iter().map(|t| t.predicted_efficiency).collect();
    let max_m = measured.iter().cloned().fold(f64::MIN, f64::max);
    let max_p = predicted.iter().cloned().fold(f64::MIN, f64::max);

    let mut divergences: Vec<Divergence> = trials
        .iter()
        .filter_map(|t| {
            let measured_rel = if max_m > 0.0 { t.gbs / max_m } else { 1.0 };
            let predicted_rel = if max_p > 0.0 {
                t.predicted_efficiency / max_p
            } else {
                1.0
            };
            ((measured_rel - predicted_rel).abs() > DIVERGENCE_TOLERANCE).then(|| Divergence {
                spec: t.spec.clone(),
                measured_rel,
                predicted_rel,
            })
        })
        .collect();
    divergences.sort_by(|a, b| {
        let ga = (a.measured_rel - a.predicted_rel).abs();
        let gb = (b.measured_rel - b.predicted_rel).abs();
        gb.partial_cmp(&ga).expect("relative quality is finite")
    });

    Agreement {
        spearman: t2opt_core::corr::spearman(&measured, &predicted),
        tolerance: DIVERGENCE_TOLERANCE,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_tuner(space: ParamSpace) -> Tuner {
        Tuner::new(
            Workload::triad_smoke(1 << 12, 16),
            ChipConfig::ultrasparc_t2(),
            space,
        )
        .pool_threads(4)
    }

    #[test]
    fn exhaustive_covers_the_space_and_ranks_trials() {
        let space = ParamSpace::offset_sweep(128, 512);
        let mut tuner = smoke_tuner(space.clone());
        let report = tuner.run();
        assert_eq!(report.trials.len(), space.len());
        assert_eq!(report.simulations_run, space.len() as u64);
        assert_eq!(report.cache_hits, 0);
        for pair in report.trials.windows(2) {
            assert!(pair[0].gbs >= pair[1].gbs, "trials must be ranked");
        }
        assert_eq!(report.best.spec, report.trials[0].spec);
    }

    #[test]
    fn offset_sweep_beats_the_aliased_baseline() {
        let mut tuner = smoke_tuner(ParamSpace::offset_sweep(128, 512));
        let report = tuner.run();
        // The aliased candidate (block offset 0) convoys all three arrays
        // on one controller; any spread offset must win clearly.
        let aliased = LayoutSpec::new().base_align(8192);
        assert_ne!(report.best.spec.block_offset, 0);
        assert!(
            report.speedup_over(&aliased).unwrap() > 1.5,
            "best must beat the aliased baseline by 1.5x: {report:?}"
        );
    }

    #[test]
    fn warm_cache_reruns_simulate_nothing_and_agree() {
        let mut tuner = smoke_tuner(ParamSpace::offset_sweep(128, 512));
        let cold = tuner.run();
        assert!(cold.simulations_run > 0);
        let warm = tuner.run();
        assert_eq!(warm.simulations_run, 0, "warm rerun must be pure cache");
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.cache_hits, cold.trials.len() as u64);
        assert_eq!(warm.best.spec, cold.best.spec);
        assert_eq!(warm.best.gbs, cold.best.gbs);
        assert!(warm.trials.iter().all(|t| t.from_cache));
    }

    #[test]
    fn model_pruned_matches_exhaustive_with_fewer_simulations() {
        let space = ParamSpace::t2_default();
        let exhaustive = smoke_tuner(space.clone()).run();
        let pruned = smoke_tuner(space.clone())
            .strategy(SearchStrategy::model_pruned())
            .run();
        assert_eq!(
            pruned.best.spec, exhaustive.best.spec,
            "surrogate pruning must preserve the exhaustive winner"
        );
        assert!(
            pruned.simulations_run < exhaustive.simulations_run,
            "pruning must simulate strictly fewer candidates: {} vs {}",
            pruned.simulations_run,
            exhaustive.simulations_run
        );
        assert!(!pruned.trials.is_empty());
    }

    #[test]
    fn model_pruned_keeps_ties_at_the_cutoff() {
        // On the offset sweep most spread layouts tie at model efficiency
        // 1.0, so a 25 % cut extends across the whole plateau — only the
        // strictly worse aliased candidates are dropped.
        let space = ParamSpace::offset_sweep(64, 512);
        let tuner = smoke_tuner(space.clone());
        let kept = tuner.model_pruned_candidates(SearchStrategy::DEFAULT_KEEP_PERCENT);
        assert!(kept.len() < space.len(), "something must be pruned");
        assert!(
            kept.len() > space.len() / 4,
            "tied scores at the cutoff must all be kept: {} of {}",
            kept.len(),
            space.len()
        );
    }

    #[test]
    fn coordinate_descent_measures_fewer_trials_than_exhaustive() {
        let space = ParamSpace::t2_default();
        let mut cd = smoke_tuner(space.clone()).strategy(SearchStrategy::coordinate_descent());
        let report = cd.run();
        assert!(
            report.trials.len() < space.len(),
            "descent must prune the grid: {} of {}",
            report.trials.len(),
            space.len()
        );
        assert!(report.best.gbs > 0.0);
    }

    #[test]
    fn advisor_seeded_finds_a_spread_offset() {
        let mut tuner = smoke_tuner(ParamSpace::offset_sweep(128, 512))
            .strategy(SearchStrategy::advisor_seeded());
        let report = tuner.run();
        assert_ne!(
            report.best.spec.block_offset % 512,
            0,
            "advisor-seeded search must keep a de-aliasing offset"
        );
    }

    #[test]
    fn determinism_across_fresh_tuners() {
        let run = || {
            let mut t = smoke_tuner(ParamSpace::offset_sweep(128, 512));
            let r = t.run();
            (r.best.spec.clone(), r.best.gbs, r.trials.len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn telemetry_sink_records_trials_and_cache_traffic() {
        let sink = Sink::enabled();
        let mut tuner =
            smoke_tuner(ParamSpace::offset_sweep(128, 512)).telemetry(Arc::clone(&sink));
        let cold = tuner.run();
        let spans = sink.spans();
        let run_span = spans
            .iter()
            .find(|s| s.name == "tune.run")
            .unwrap_or_else(|| panic!("run span missing: {spans:?}"));
        assert_ne!(run_span.trace_id, 0, "run span roots a trace");
        assert_eq!(run_span.parent_id, 0, "run span is the trace root");
        let trial_spans: Vec<_> = spans
            .iter()
            .filter(|s| s.name.starts_with("trial "))
            .collect();
        assert_eq!(trial_spans.len() as u64, cold.simulations_run);
        // Every trial span parents to the run span within its trace.
        assert!(trial_spans
            .iter()
            .all(|s| s.trace_id == run_span.trace_id && s.parent_id == run_span.span_id));
        let counters: BTreeMap<String, u64> = sink.counter_values().into_iter().collect();
        assert_eq!(counters["autotune.cache_misses"], cold.simulations_run);
        assert_eq!(counters["autotune.cache_hits"], 0);
        assert!(counters["autotune.pool_jobs"] > 0);
        // A warm rerun adds hits, not misses or spans.
        let warm = tuner.run();
        assert_eq!(warm.simulations_run, 0);
        let counters: BTreeMap<String, u64> = sink.counter_values().into_iter().collect();
        assert_eq!(counters["autotune.cache_hits"], cold.trials.len() as u64);
        assert_eq!(counters["autotune.cache_misses"], cold.simulations_run);
    }

    #[test]
    fn jacobi_workload_tunes_toward_shifted_rows() {
        // A small Fig. 6 instance: plain contiguous rows of a 64-row grid
        // alias (64 × 512 B rows ≡ 0 mod 512); the advisor-style
        // 512-align + 128-shift candidate must win.
        let space = ParamSpace {
            base_aligns: vec![8192],
            seg_aligns: vec![1, 512],
            shifts: vec![0, 128],
            block_offsets: vec![0],
            placements: vec![t2opt_core::mapping::PagePlacement::FirstTouch],
        };
        let mut tuner = Tuner::new(
            Workload::jacobi_smoke(64, 16),
            ChipConfig::ultrasparc_t2(),
            space,
        )
        .pool_threads(4);
        let report = tuner.run();
        assert_eq!(
            report.best.spec.shift, 128,
            "only the 128 B row shift rotates controllers: {report:?}"
        );
        let plain = LayoutSpec::new().base_align(8192);
        assert!(
            report.speedup_over(&plain).unwrap() > 1.3,
            "shifted rows must clearly beat aliased rows: {report:?}"
        );
    }

    /// A deceptive non-separable 3×3 landscape over (seg_align, shift):
    /// the origin is a local optimum for *both* axis sweeps — every
    /// single-coordinate move from (0, 0) loses — while the global optimum
    /// sits diagonally at (2, 2). Exactly the trap coordinate descent
    /// cannot leave and annealing must.
    const DECEPTIVE: [[f64; 3]; 3] = [[10.0, 6.0, 7.0], [6.0, 8.0, 9.0], [7.0, 9.0, 20.0]];
    const DECEPTIVE_DIMS: [usize; N_DIMS] = [1, 3, 3, 1, 1];

    fn deceptive_eval(batch: &[[usize; N_DIMS]]) -> Vec<f64> {
        batch.iter().map(|i| DECEPTIVE[i[1]][i[2]]).collect()
    }

    #[test]
    fn coordinate_descent_stalls_on_the_deceptive_landscape() {
        let (pos, val) = descend_impl(DECEPTIVE_DIMS, [0; N_DIMS], 8, &mut deceptive_eval);
        assert_eq!(pos, [0; N_DIMS], "every axis sweep from the origin loses");
        assert_eq!(val, 10.0);
    }

    #[test]
    fn annealing_escapes_the_deceptive_landscape() {
        let (pos, val) = anneal_impl(DECEPTIVE_DIMS, [0; N_DIMS], 7, 64, &mut deceptive_eval);
        assert_eq!(val, 20.0, "annealing must reach the diagonal optimum");
        assert_eq!(pos, [0, 2, 2, 0, 0]);
        // The acceptance criterion, stated directly: annealing strictly
        // beats coordinate descent here.
        let (_, cd_val) = descend_impl(DECEPTIVE_DIMS, [0; N_DIMS], 8, &mut deceptive_eval);
        assert!(val > cd_val);
    }

    #[test]
    fn annealing_with_a_fixed_seed_reproduces_the_trial_sequence() {
        let run = |seed: u64| {
            let mut visits: Vec<[usize; N_DIMS]> = Vec::new();
            let result = anneal_impl(DECEPTIVE_DIMS, [0; N_DIMS], seed, 48, &mut |batch| {
                visits.extend_from_slice(batch);
                deceptive_eval(batch)
            });
            (visits, result)
        };
        let (v1, r1) = run(1234);
        let (v2, r2) = run(1234);
        assert_eq!(v1, v2, "same seed, same proposal sequence");
        assert_eq!(r1, r2);
        let (v3, _) = run(99);
        assert_ne!(v1, v3, "a different seed must explore differently");
    }

    #[test]
    fn annealing_matches_or_beats_descent_on_the_simulator() {
        let space = ParamSpace::t2_default();
        let cd = smoke_tuner(space.clone())
            .strategy(SearchStrategy::coordinate_descent())
            .run();
        let sa = smoke_tuner(space)
            .strategy(SearchStrategy::simulated_annealing(42))
            .run();
        assert!(
            sa.best.gbs >= cd.best.gbs,
            "annealing must not lose to descent: {} vs {}",
            sa.best.gbs,
            cd.best.gbs
        );
    }

    #[test]
    fn annealing_with_fixed_seed_is_deterministic_end_to_end() {
        let run = || {
            smoke_tuner(ParamSpace::t2_default())
                .strategy(SearchStrategy::simulated_annealing(7))
                .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best.spec, b.best.spec);
        assert_eq!(a.best.gbs, b.best.gbs);
        let specs = |r: &TuneReport| r.trials.iter().map(|t| t.spec.clone()).collect::<Vec<_>>();
        assert_eq!(specs(&a), specs(&b), "identical trial set, same order");
    }

    /// A Jacobi space with a *unique* optimum at (shift 64, offset 0) and
    /// the origin placed at offset 64, so a cold descent must move twice
    /// (shift, then offset) and its second round sweeps lines a seeded
    /// start never visits. seg_align is omitted: 512 B rows make it a
    /// no-op, and its exact ties would let path order pick the winner.
    fn jacobi_transfer_space() -> ParamSpace {
        ParamSpace {
            base_aligns: vec![8192],
            seg_aligns: vec![1],
            shifts: vec![0, 64, 128],
            block_offsets: vec![64, 0, 128],
            placements: vec![t2opt_core::mapping::PagePlacement::FirstTouch],
        }
    }

    fn jacobi_transfer_tuner() -> Tuner {
        Tuner::new(
            Workload::jacobi_smoke(64, 16),
            ChipConfig::ultrasparc_t2(),
            jacobi_transfer_space(),
        )
        .pool_threads(4)
        .strategy(SearchStrategy::transfer_seeded())
    }

    #[test]
    fn transfer_seeded_falls_back_to_origin_descent_when_cache_is_cold() {
        let sink = Sink::enabled();
        let report = jacobi_transfer_tuner().telemetry(Arc::clone(&sink)).run();
        assert!(report.simulations_run > 0);
        let counters: BTreeMap<String, u64> = sink.counter_values().into_iter().collect();
        assert!(
            !counters.contains_key("autotune.transfer_seed_used"),
            "no foreign entries, nothing to transfer: {counters:?}"
        );
    }

    #[test]
    fn transfer_seeded_warm_run_same_winner_fewer_simulations() {
        // Cold: nothing cached, descent starts at the space origin.
        let cold = jacobi_transfer_tuner().run();

        // Warm: a foreign "triad" family already measured the paper's
        // rotating layout as its winner on this chip; the Jacobi search is
        // seeded from it.
        let chip = ChipConfig::ultrasparc_t2();
        let fingerprint = ResultCache::chip_fingerprint(&chip);
        let mut cache = ResultCache::in_memory();
        let winner = LayoutSpec::new().base_align(8192).shift(64);
        for (key, gbs, spec) in [
            ("t0", 16.0, winner.clone()),
            ("t1", 4.0, LayoutSpec::new().base_align(8192)),
        ] {
            cache.insert_with_meta(
                key.into(),
                gbs,
                TrialMeta {
                    tag: "triad".into(),
                    chip: fingerprint.clone(),
                    spec,
                },
            );
        }
        let sink = Sink::enabled();
        let warm = jacobi_transfer_tuner()
            .cache(cache)
            .telemetry(Arc::clone(&sink))
            .run();

        assert_eq!(
            warm.best.spec, cold.best.spec,
            "transfer changes the path, not the destination"
        );
        assert!(
            warm.simulations_run < cold.simulations_run,
            "warm start must simulate strictly less: {} vs {}",
            warm.simulations_run,
            cold.simulations_run
        );
        let counters: BTreeMap<String, u64> = sink.counter_values().into_iter().collect();
        assert_eq!(counters["autotune.transfer_seed_used"], 1);
        assert_eq!(counters["autotune.simulations_run"], warm.simulations_run);
    }

    #[test]
    fn a_triad_sweep_seeds_a_jacobi_search_through_a_shared_cache() {
        // End to end: an actual triad tuning run populates the cache, and
        // the Jacobi search transfers its winner.
        let chip = ChipConfig::ultrasparc_t2();
        let triad_space = ParamSpace {
            base_aligns: vec![8192],
            seg_aligns: vec![1, 512],
            shifts: vec![0, 128],
            block_offsets: vec![0],
            placements: vec![t2opt_core::mapping::PagePlacement::FirstTouch],
        };
        let mut triad = Tuner::new(
            Workload::triad_smoke(1 << 12, 16),
            chip.clone(),
            triad_space,
        )
        .pool_threads(4);
        triad.run();
        let shared = triad.into_cache();

        let sink = Sink::enabled();
        let report = jacobi_transfer_tuner()
            .cache(shared)
            .telemetry(Arc::clone(&sink))
            .run();
        let counters: BTreeMap<String, u64> = sink.counter_values().into_iter().collect();
        assert_eq!(
            counters.get("autotune.transfer_seed_used"),
            Some(&1),
            "a populated foreign family must seed the search"
        );
        assert!(report.best.gbs > 0.0);
    }

    #[test]
    fn agreement_flags_misranked_trials() {
        let mk = |gbs: f64, pred: f64| Trial {
            spec: LayoutSpec::new(),
            gbs,
            predicted_efficiency: pred,
            from_cache: false,
        };
        // Model says both are perfect; measurement halves the second one.
        let agr = agreement_check(&[mk(10.0, 1.0), mk(4.0, 1.0)]);
        assert_eq!(agr.divergences.len(), 1);
        assert!((agr.divergences[0].measured_rel - 0.4).abs() < 1e-12);
        // Perfectly proportional trials raise no flags.
        let agr = agreement_check(&[mk(10.0, 1.0), mk(9.0, 0.9)]);
        assert!(agr.divergences.is_empty());
        assert!(agr.spearman.unwrap() > 0.99);
    }
}
