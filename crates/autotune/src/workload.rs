//! Workload descriptions the tuner can measure.
//!
//! A [`Workload`] fixes everything about a trial *except* the layout: which
//! streams the kernel touches, the problem size, the thread count, and the
//! measurement protocol (warm-up sweep + measured repetitions). Given a
//! candidate [`LayoutSpec`] it builds the per-thread simulator programs —
//! every array `j` is laid out with block offset `j · spec.block_offset`
//! and split into per-thread segments, reproducing the paper's Fig. 4
//! setup — and, for the advisor cross-check, the equivalent analytic
//! [`StreamDesc`] sets.

use serde::Serialize;
use t2opt_core::advisor::{LayoutAdvisor, StreamDesc, StreamKind};
use t2opt_core::layout::{LayoutSpec, SegLayout, SegmentPlan};
use t2opt_kernels::common::VirtualAlloc;
use t2opt_kernels::lbm::{LbmLayout, C, FLOPS_PER_SITE, Q};
use t2opt_model::{KernelShape, StreamUnit};
use t2opt_parallel::{chunk_assignment, Schedule};
use t2opt_sim::trace::{chain_with_barriers, Program, StreamLoop, StreamSpec};
use t2opt_sim::ChipConfig;

/// A tunable workload: a stream mix or a named kernel loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Workload {
    /// A generic lockstep loop touching `reads` load streams and `writes`
    /// store streams (loads first), `n` total elements split over
    /// `threads` segments.
    StreamMix {
        /// Number of load streams.
        reads: u32,
        /// Number of store streams.
        writes: u32,
        /// Total elements per array.
        n: usize,
        /// Simulated threads (= segments per array).
        threads: usize,
        /// Measured sweeps.
        ntimes: u32,
        /// Whether to run (and exclude) a cache-warming sweep first.
        warmup: bool,
    },
    /// The STREAM vector triad `A(i) = B(i) + s·C(i)` of Fig. 2/Fig. 4:
    /// two load streams, one store stream, two flops per element.
    Triad {
        /// Total elements per array.
        n: usize,
        /// Simulated threads (= segments per array).
        threads: usize,
        /// Measured sweeps.
        ntimes: u32,
        /// Whether to run (and exclude) a cache-warming sweep first.
        warmup: bool,
    },
    /// The 2-D five-point Jacobi sweep of Fig. 6 as a tunable workload:
    /// two `dim × dim` toggle grids laid out one-segment-per-row under the
    /// candidate spec (row alignment/shift are exactly what the tuner is
    /// searching). Interior row `i` is owned by thread `(i − 1) mod
    /// threads` (the paper's `schedule(static,1)`); updating it streams
    /// three `src` rows and stores one `dst` row, four flops per site.
    Jacobi {
        /// Grid side (each grid is `dim × dim` elements; `dim ≥ 3`).
        dim: usize,
        /// Simulated threads (interior rows round-robined over them).
        threads: usize,
        /// Measured sweeps.
        ntimes: u32,
        /// Whether to run (and exclude) a cache-warming sweep first.
        warmup: bool,
    },
    /// The D3Q19 lattice-Boltzmann propagation step of Fig. 7 as a tunable
    /// workload: two toggle distribution grids of `(N+2)³ × 19` elements,
    /// segmented per data layout — IJKv into its 19 velocity blocks, IvJK
    /// into its `(N+2)²` (y, z) pencils (see
    /// [`LbmLayout::segment_sizes`]) — so the candidate's
    /// `(seg_align, shift, block_offset)` is exactly the inter-block
    /// padding the paper tunes by hand. Each measured sweep streams the 19
    /// loads + 19 pushed stores of every sampled row (all z-planes,
    /// `y_rows` sampled rows per plane), z-planes statically chunked over
    /// threads.
    ///
    /// This variant must stay *last* in the enum: [`crate::cache`] keys are
    /// serialized workloads, and appending keeps old keys stable.
    Lbm {
        /// Cubic domain side N without halo (`n ≥ 2`; grids are `(N+2)³`).
        n: usize,
        /// Distribution-array data layout under comparison.
        layout: LbmLayout,
        /// Simulated threads (z-planes statically chunked over them).
        threads: usize,
        /// Sampled y-rows per z-plane (clamped to `n`; the steady state is
        /// row-homogeneous, so sampling preserves the aliasing physics at a
        /// fraction of the cost).
        y_rows: usize,
        /// Measured sweeps (timesteps).
        ntimes: u32,
        /// Whether to run (and exclude) a cache-warming sweep first.
        warmup: bool,
    },
}

impl Workload {
    /// The Fig. 4 triad at full measurement fidelity: arrays far larger
    /// than the L2 so the warm-up sweep leaves only capacity misses, one
    /// measured sweep.
    pub fn triad(n: usize, threads: usize) -> Self {
        Workload::Triad {
            n,
            threads,
            ntimes: 1,
            warmup: true,
        }
    }

    /// A fast cold-cache triad for smoke tests and CI: no warm-up sweep,
    /// so small arrays still show the controller-aliasing effect (every
    /// access is a miss, exactly the regime of the paper's measurement).
    pub fn triad_smoke(n: usize, threads: usize) -> Self {
        Workload::Triad {
            n,
            threads,
            ntimes: 1,
            warmup: false,
        }
    }

    /// The Fig. 6 Jacobi sweep at full measurement fidelity: one warm-up
    /// sweep, then one measured sweep.
    pub fn jacobi(dim: usize, threads: usize) -> Self {
        Workload::Jacobi {
            dim,
            threads,
            ntimes: 1,
            warmup: true,
        }
    }

    /// A fast cold-cache Jacobi for smoke tests and CI (no warm-up sweep).
    pub fn jacobi_smoke(dim: usize, threads: usize) -> Self {
        Workload::Jacobi {
            dim,
            threads,
            ntimes: 1,
            warmup: false,
        }
    }

    /// The Fig. 7 LBM propagation step at measurement fidelity: 16 sampled
    /// y-rows per plane, one warm-up sweep, one measured sweep.
    pub fn lbm(n: usize, layout: LbmLayout, threads: usize) -> Self {
        Workload::Lbm {
            n,
            layout,
            threads,
            y_rows: 16,
            ntimes: 1,
            warmup: true,
        }
    }

    /// A fast cold-cache LBM for smoke tests and CI: two sampled rows per
    /// plane, no warm-up sweep (every access misses — the streaming regime
    /// where the controller-aliasing effect lives).
    pub fn lbm_smoke(n: usize, layout: LbmLayout, threads: usize) -> Self {
        Workload::Lbm {
            n,
            layout,
            threads,
            y_rows: 2,
            ntimes: 1,
            warmup: false,
        }
    }

    /// Short workload-family name used to group result-cache entries for
    /// cross-kernel transfer (see [`crate::cache::ResultCache::
    /// transfer_seed`]): workloads sharing a tag differ only in size or
    /// protocol, so their cached layout rankings are *not* treated as
    /// foreign knowledge.
    pub fn tag(&self) -> String {
        match self {
            Workload::StreamMix { .. } => "stream_mix".into(),
            Workload::Triad { .. } => "triad".into(),
            Workload::Jacobi { .. } => "jacobi".into(),
            Workload::Lbm { layout, .. } => format!("lbm_{}", layout.label()),
        }
    }

    /// Stream kinds of the workload's arrays, loads first. For
    /// [`Workload::Jacobi`] this is the per-row stream set (three `src`
    /// rows, one `dst` row), not the array count — Jacobi has two arrays.
    pub fn kinds(&self) -> Vec<StreamKind> {
        match self {
            Workload::StreamMix { reads, writes, .. } => {
                let mut v = vec![StreamKind::Read; *reads as usize];
                v.resize((*reads + *writes) as usize, StreamKind::Write);
                v
            }
            Workload::Triad { .. } => {
                vec![StreamKind::Read, StreamKind::Read, StreamKind::Write]
            }
            Workload::Jacobi { .. } => {
                vec![
                    StreamKind::Read,
                    StreamKind::Read,
                    StreamKind::Read,
                    StreamKind::Write,
                ]
            }
            Workload::Lbm { .. } => {
                let mut v = vec![StreamKind::Read; Q];
                v.resize(2 * Q, StreamKind::Write);
                v
            }
        }
    }

    /// Total elements per array (per grid for [`Workload::Jacobi`] and
    /// [`Workload::Lbm`]).
    pub fn n(&self) -> usize {
        match self {
            Workload::StreamMix { n, .. } | Workload::Triad { n, .. } => *n,
            Workload::Jacobi { dim, .. } => dim * dim,
            Workload::Lbm { n, layout, .. } => layout.volume(n + 2),
        }
    }

    /// Simulated thread count.
    pub fn threads(&self) -> usize {
        match self {
            Workload::StreamMix { threads, .. }
            | Workload::Triad { threads, .. }
            | Workload::Jacobi { threads, .. }
            | Workload::Lbm { threads, .. } => *threads,
        }
    }

    /// Measured sweeps.
    pub fn ntimes(&self) -> u32 {
        match self {
            Workload::StreamMix { ntimes, .. }
            | Workload::Triad { ntimes, .. }
            | Workload::Jacobi { ntimes, .. }
            | Workload::Lbm { ntimes, .. } => *ntimes,
        }
    }

    /// Whether trials run a warm-up sweep (excluded from measurement).
    pub fn warmup(&self) -> bool {
        match self {
            Workload::StreamMix { warmup, .. }
            | Workload::Triad { warmup, .. }
            | Workload::Jacobi { warmup, .. }
            | Workload::Lbm { warmup, .. } => *warmup,
        }
    }

    /// Floating-point work per element (charged to the core FPUs).
    pub fn flops_per_elem(&self) -> f64 {
        match self {
            Workload::StreamMix { .. } => 0.0,
            Workload::Triad { .. } => 2.0,
            Workload::Jacobi { .. } => 4.0,
            Workload::Lbm { .. } => FLOPS_PER_SITE,
        }
    }

    /// Effective sampled y-rows per z-plane for [`Workload::Lbm`].
    fn lbm_y_eff(n: usize, y_rows: usize) -> usize {
        y_rows.min(n).max(1)
    }

    /// Bytes the kernel is credited with per full run, for
    /// [`t2opt_sim::SimStats::reported_bandwidth_gbs`]. Stream workloads
    /// use the STREAM convention (each array touched once per element per
    /// sweep); Jacobi uses its usual credit of 16 B per streamed site (one
    /// fresh `src` read plus one `dst` write — row reuse and RFO excluded).
    pub fn reported_bytes(&self) -> u64 {
        match self {
            Workload::Jacobi { dim, ntimes, .. } => ((dim - 2) * dim * 16) as u64 * *ntimes as u64,
            Workload::Lbm {
                n, y_rows, ntimes, ..
            } => {
                // 19 loads + 19 stores of 8 B per streamed site, over the
                // sampled sites (x extent × sampled y rows × all z planes).
                let sites = (n * Self::lbm_y_eff(*n, *y_rows) * n) as u64;
                sites * (2 * Q as u64 * 8) * *ntimes as u64
            }
            _ => (self.n() * 8 * self.kinds().len()) as u64 * self.ntimes() as u64,
        }
    }

    /// Checks the workload fits the chip (thread capacity, non-empty).
    ///
    /// # Panics
    /// Panics with a descriptive message if not.
    pub fn validate(&self, chip: &ChipConfig) {
        chip.validate()
            .unwrap_or_else(|e| panic!("workload targets an inconsistent chip: {e}"));
        let capacity = chip.core.n_cores * chip.core.threads_per_core;
        assert!(self.n() > 0, "workload needs at least one element");
        assert!(self.threads() > 0, "workload needs at least one thread");
        assert!(self.ntimes() > 0, "workload needs at least one sweep");
        assert!(
            !self.kinds().is_empty(),
            "workload needs at least one stream"
        );
        assert!(
            self.threads() <= capacity,
            "{} threads exceed the chip's {} hardware threads",
            self.threads(),
            capacity
        );
        if let Workload::Jacobi { dim, .. } = self {
            assert!(*dim >= 3, "Jacobi needs at least one interior row");
        }
        if let Workload::Lbm { n, y_rows, .. } = self {
            assert!(*n >= 2, "LBM needs an interior of at least 2^3 sites");
            assert!(*y_rows >= 1, "LBM needs at least one sampled y-row");
        }
    }

    /// Lays out every array under `spec` in a fresh virtual address space:
    /// array `j` uses `spec` with block offset `j · spec.block_offset` and
    /// is split into per-thread segments — except [`Workload::Jacobi`],
    /// whose two grids are split one segment *per row*, and
    /// [`Workload::Lbm`], whose two grids are split per
    /// [`LbmLayout::segment_sizes`] (the layout under tune is the
    /// inter-block padding). Returns each array's (absolute base address,
    /// segment layout).
    pub fn layout_arrays(&self, spec: &LayoutSpec) -> Vec<(u64, SegLayout)> {
        let mut va = VirtualAlloc::new();
        let (n_arrays, plan) = match self {
            Workload::Jacobi { dim, .. } => (2, SegmentPlan::Sizes(vec![*dim; *dim])),
            Workload::Lbm { n, layout, .. } => (2, SegmentPlan::Sizes(layout.segment_sizes(n + 2))),
            _ => (self.kinds().len(), SegmentPlan::Count(self.threads())),
        };
        (0..n_arrays)
            .map(|j| {
                let arr_spec = spec.clone().block_offset(j * spec.block_offset);
                let layout = arr_spec.plan(self.n(), 8, &plan);
                let base = va.alloc(
                    layout.total_bytes.max(1) as u64,
                    spec.base_align.max(1) as u64,
                    0,
                );
                (base, layout)
            })
            .collect()
    }

    /// Builds the per-thread simulator programs for one trial of `spec`:
    /// thread `t` sweeps its segment of every array, `warmup + ntimes`
    /// times, with a global barrier between sweeps. With warm-up enabled
    /// the measurement window opens at barrier 0 (use
    /// [`t2opt_sim::Simulation::measure_after_barrier`]).
    pub fn build_programs(&self, spec: &LayoutSpec) -> Vec<Program> {
        if let Workload::Jacobi {
            dim,
            threads,
            ntimes,
            warmup,
        } = self
        {
            return self.build_jacobi_programs(spec, *dim, *threads, *ntimes, *warmup);
        }
        if let Workload::Lbm { .. } = self {
            return self.build_lbm_programs(spec);
        }
        let kinds = self.kinds();
        let arrays = self.layout_arrays(spec);
        let sweeps = self.ntimes() as usize + usize::from(self.warmup());
        let flops = self.flops_per_elem();
        (0..self.threads())
            .map(|t| {
                let phases: Vec<StreamLoop> = (0..sweeps)
                    .map(|_| {
                        let streams: Vec<StreamSpec> = arrays
                            .iter()
                            .zip(kinds.iter())
                            .map(|((base, layout), kind)| {
                                let addr = base + layout.seg_byte_starts[t] as u64;
                                match kind {
                                    StreamKind::Read => StreamSpec::load(addr),
                                    _ => StreamSpec::store(addr),
                                }
                            })
                            .collect();
                        StreamLoop::new(streams, arrays[0].1.seg_sizes[t], 8, flops, 64)
                    })
                    .collect();
                chain_with_barriers(phases, 0)
            })
            .collect()
    }

    /// Per-thread Jacobi programs: each sweep streams the thread's interior
    /// rows (round-robin ownership, the paper's `static,1`) with the toggle
    /// grids swapping roles between barrier-separated sweeps.
    fn build_jacobi_programs(
        &self,
        spec: &LayoutSpec,
        dim: usize,
        threads: usize,
        ntimes: u32,
        warmup: bool,
    ) -> Vec<Program> {
        let arrays = self.layout_arrays(spec);
        let row_base = |g: usize, i: usize| arrays[g].0 + arrays[g].1.seg_byte_starts[i] as u64;
        let total_sweeps = ntimes as usize + usize::from(warmup);
        (0..threads)
            .map(|t| {
                let mut sweeps = Vec::new();
                for s in 0..total_sweeps {
                    let (src, dst) = if s % 2 == 0 { (0, 1) } else { (1, 0) };
                    let rows: Vec<StreamLoop> = (1..dim - 1)
                        .filter(|i| (i - 1) % threads == t)
                        .map(|i| {
                            StreamLoop::new(
                                vec![
                                    StreamSpec::load(row_base(src, i - 1)),
                                    StreamSpec::load(row_base(src, i)),
                                    StreamSpec::load(row_base(src, i + 1)),
                                    StreamSpec::store(row_base(dst, i)),
                                ],
                                dim,
                                8,
                                self.flops_per_elem(),
                                64,
                            )
                        })
                        .collect();
                    sweeps.push(rows.into_iter().flatten());
                }
                chain_with_barriers(sweeps, 0)
            })
            .collect()
    }

    /// Per-thread (z, y) row list for [`Workload::Lbm`]: interior z-planes
    /// statically chunked over threads (the paper's z-parallelization),
    /// the first `y_eff` interior rows sampled in each plane.
    fn lbm_rows(n: usize, threads: usize, y_rows: usize) -> Vec<Vec<(usize, usize)>> {
        let y_eff = Self::lbm_y_eff(n, y_rows);
        chunk_assignment(Schedule::Static, n, threads)
            .into_iter()
            .map(|chunks| {
                chunks
                    .iter()
                    .flat_map(|ch| ch.range())
                    .flat_map(|zi| (1..=y_eff).map(move |y| (zi + 1, y)))
                    .collect()
            })
            .collect()
    }

    /// Per-thread D3Q19 propagation programs: each sweep streams, for every
    /// owned row, the 19 loads of the row's distributions plus the 19
    /// pushed stores into the neighbor rows of the other toggle grid —
    /// addressed through the candidate's segmented layout, so padding and
    /// shift between velocity blocks (IJKv) or (y, z) pencils (IvJK) move
    /// the stream bases exactly as the Fig. 7 hand-tuning does.
    fn build_lbm_programs(&self, spec: &LayoutSpec) -> Vec<Program> {
        let (n, layout, threads, y_rows, ntimes, warmup) = match self {
            Workload::Lbm {
                n,
                layout,
                threads,
                y_rows,
                ntimes,
                warmup,
            } => (*n, *layout, *threads, *y_rows, *ntimes, *warmup),
            _ => unreachable!("build_lbm_programs on a non-LBM workload"),
        };
        let d = n + 2;
        let arrays = self.layout_arrays(spec);
        let addr = |g: usize, x: usize, y: usize, z: usize, v: usize| -> u64 {
            let (seg, local) = layout.seg_coords(d, x, y, z, v);
            arrays[g].0 + arrays[g].1.elem_byte_offset(seg, local) as u64
        };
        let rows_per_thread = Self::lbm_rows(n, threads, y_rows);
        let total_sweeps = ntimes as usize + usize::from(warmup);
        (0..threads)
            .map(|t| {
                let rows = &rows_per_thread[t];
                let mut phases = Vec::new();
                for s in 0..total_sweeps {
                    let (src, dst) = if s % 2 == 0 { (0, 1) } else { (1, 0) };
                    let mut row_loops: Vec<StreamLoop> = Vec::new();
                    for &(z, y) in rows {
                        let mut streams = Vec::with_capacity(2 * Q);
                        for v in 0..Q {
                            streams.push(StreamSpec::load(addr(src, 1, y, z, v)));
                        }
                        for (v, &(cx, cy, cz)) in C.iter().enumerate() {
                            let nx = (1 + cx) as usize;
                            let ny = (y as i32 + cy) as usize;
                            let nz = (z as i32 + cz) as usize;
                            streams.push(StreamSpec::store(addr(dst, nx, ny, nz, v)));
                        }
                        row_loops.push(
                            StreamLoop::new(streams, n, 8, FLOPS_PER_SITE, 64)
                                // Two touches per line keep the set-thrash
                                // re-misses visible (as in kernels::lbm).
                                .with_touches(2),
                        );
                    }
                    phases.push(row_loops.into_iter().flatten());
                }
                chain_with_barriers(phases, 0)
            })
            .collect()
    }

    /// The workload's lockstep units under `spec`: for each analysis unit
    /// (a thread's segment sweep; an interior Jacobi row; a sampled LBM
    /// row) the concurrent stream set at its absolute layout addresses,
    /// plus the cache lines each stream advances over the measured sweeps.
    /// This is the single source both predictors consume — the advisor's
    /// relative [`Workload::predicted_efficiency`] and the closed-form
    /// [`t2opt_model::PerfModel`] via [`Workload::model_shape`] — so the
    /// two can never drift apart on what the kernel accesses.
    pub fn stream_units(&self, spec: &LayoutSpec) -> Vec<StreamUnit> {
        let ntimes = self.ntimes() as u64;
        let lines_of = |elems: usize| ((elems * 8) as u64).div_ceil(64) * ntimes;
        if let Workload::Jacobi { dim, .. } = self {
            let dim = *dim;
            let arrays = self.layout_arrays(spec);
            let row_base = |g: usize, i: usize| arrays[g].0 + arrays[g].1.seg_byte_starts[i] as u64;
            return (1..dim - 1)
                .map(|i| {
                    StreamUnit::new(
                        vec![
                            StreamDesc::read(row_base(0, i - 1)),
                            StreamDesc::read(row_base(0, i)),
                            StreamDesc::read(row_base(0, i + 1)),
                            StreamDesc::write(row_base(1, i)),
                        ],
                        lines_of(dim),
                    )
                })
                .collect();
        }
        if let Workload::Lbm {
            n,
            layout,
            threads,
            y_rows,
            ..
        } = self
        {
            let (n, layout) = (*n, *layout);
            let d = n + 2;
            let arrays = self.layout_arrays(spec);
            let addr = |g: usize, x: usize, y: usize, z: usize, v: usize| -> u64 {
                let (seg, local) = layout.seg_coords(d, x, y, z, v);
                arrays[g].0 + arrays[g].1.elem_byte_offset(seg, local) as u64
            };
            return Self::lbm_rows(n, *threads, *y_rows)
                .into_iter()
                .flatten()
                .map(|(z, y)| {
                    let mut streams = Vec::with_capacity(2 * Q);
                    for v in 0..Q {
                        streams.push(StreamDesc::read(addr(0, 1, y, z, v)));
                    }
                    for (v, &(cx, cy, cz)) in C.iter().enumerate() {
                        streams.push(StreamDesc::write(addr(
                            1,
                            (1 + cx) as usize,
                            (y as i32 + cy) as usize,
                            (z as i32 + cz) as usize,
                            v,
                        )));
                    }
                    StreamUnit::new(streams, lines_of(n))
                })
                .collect();
        }
        let kinds = self.kinds();
        let arrays = self.layout_arrays(spec);
        (0..self.threads())
            .map(|t| {
                let streams: Vec<StreamDesc> = arrays
                    .iter()
                    .zip(kinds.iter())
                    .map(|((base, layout), &kind)| StreamDesc {
                        base: base + layout.seg_byte_starts[t] as u64,
                        kind,
                    })
                    .collect();
                StreamUnit::new(streams, lines_of(arrays[0].1.seg_sizes[t]))
            })
            .collect()
    }

    /// The workload description the closed-form [`t2opt_model::PerfModel`]
    /// consumes: the [`Workload::stream_units`] plus the concurrency and
    /// byte-credit needed to turn predicted cycles into reported GB/s.
    pub fn model_shape(&self, spec: &LayoutSpec) -> KernelShape {
        KernelShape {
            units: self.stream_units(spec),
            threads: self.threads(),
            reported_bytes: self.reported_bytes(),
        }
    }

    /// The advisor's predicted controller-utilization efficiency for this
    /// workload under `spec`: the mean of [`LayoutAdvisor::predict`] over
    /// each [`Workload::stream_units`] stream set (threads differ when the
    /// layout shifts segments against each other; for [`Workload::Jacobi`]
    /// the unit is the interior row's stream set instead).
    pub fn predicted_efficiency(&self, advisor: &LayoutAdvisor, spec: &LayoutSpec) -> f64 {
        let units = self.stream_units(spec);
        let total: f64 = units
            .iter()
            .map(|u| advisor.predict(&u.streams).efficiency)
            .sum();
        // On a NUMA chip the candidate's page placement scales the whole
        // estimate: remote traffic cannot be recovered by byte offsets
        // (affinity dominates aliasing). Unity on single-socket chips.
        let locality = advisor.locality_factor(spec.placement);
        locality * total / units.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2opt_sim::trace::Op;

    #[test]
    fn triad_kinds_and_bytes() {
        let w = Workload::triad(1 << 10, 8);
        assert_eq!(
            w.kinds(),
            vec![StreamKind::Read, StreamKind::Read, StreamKind::Write]
        );
        // 3 arrays × 8 B × n × 1 sweep.
        assert_eq!(w.reported_bytes(), 3 * 8 * (1 << 10));
        w.validate(&ChipConfig::ultrasparc_t2());
    }

    #[test]
    fn arrays_are_offset_by_multiples_of_block_offset() {
        let w = Workload::triad_smoke(1 << 10, 4);
        let spec = LayoutSpec::new().base_align(8192).block_offset(128);
        let arrays = w.layout_arrays(&spec);
        assert_eq!(arrays.len(), 3);
        for (j, (base, layout)) in arrays.iter().enumerate() {
            assert_eq!(base % 8192, 0, "bases must stay page-aligned");
            assert_eq!(layout.seg_byte_starts[0], j * 128);
        }
    }

    #[test]
    fn programs_cover_each_thread_segment() {
        let w = Workload::triad_smoke(256, 4);
        let spec = LayoutSpec::new().base_align(8192);
        let programs = w.build_programs(&spec);
        assert_eq!(programs.len(), 4);
        // 64 elements/thread/array = 8 lines; 2 read streams + 1 write.
        let ops: Vec<Op> = programs.into_iter().next().unwrap().collect();
        let reads = ops.iter().filter(|o| matches!(o, Op::Read(_))).count();
        let writes = ops.iter().filter(|o| matches!(o, Op::Write(_))).count();
        assert_eq!(reads, 16);
        assert_eq!(writes, 8);
        assert!(
            !ops.iter().any(|o| matches!(o, Op::Barrier(_))),
            "one sweep, no barrier"
        );
    }

    #[test]
    fn warmup_adds_a_barrier_separated_sweep() {
        let w = Workload::triad(256, 4);
        let spec = LayoutSpec::new().base_align(8192);
        let ops: Vec<Op> = w
            .build_programs(&spec)
            .into_iter()
            .next()
            .unwrap()
            .collect();
        let barriers: Vec<&Op> = ops.iter().filter(|o| matches!(o, Op::Barrier(_))).collect();
        assert_eq!(barriers.len(), 1);
        assert_eq!(*barriers[0], Op::Barrier(0));
    }

    #[test]
    fn jacobi_programs_cover_interior_rows() {
        let w = Workload::jacobi_smoke(16, 7);
        w.validate(&ChipConfig::ultrasparc_t2());
        assert_eq!(w.n(), 256);
        assert_eq!(w.flops_per_elem(), 4.0);
        // 14 interior rows × 16 sites × 16 B.
        assert_eq!(w.reported_bytes(), 14 * 16 * 16);
        let spec = LayoutSpec::new().base_align(8192).seg_align(512).shift(128);
        let programs = w.build_programs(&spec);
        assert_eq!(programs.len(), 7);
        // 14 interior rows round-robined over 7 threads → 2 rows each;
        // a 16-element row is exactly 2 cache lines, 3 loads + 1 store.
        let ops: Vec<Op> = programs.into_iter().next().unwrap().collect();
        let reads = ops.iter().filter(|o| matches!(o, Op::Read(_))).count();
        let writes = ops.iter().filter(|o| matches!(o, Op::Write(_))).count();
        assert_eq!(reads, 2 * 3 * 2);
        assert_eq!(writes, 2 * 2);
        assert!(
            !ops.iter().any(|o| matches!(o, Op::Barrier(_))),
            "smoke variant: one sweep, no barrier"
        );
    }

    #[test]
    fn jacobi_warmup_adds_barrier_and_toggles_grids() {
        let w = Workload::jacobi(16, 4);
        let spec = LayoutSpec::new().base_align(8192).seg_align(512);
        let ops: Vec<Op> = w
            .build_programs(&spec)
            .into_iter()
            .next()
            .unwrap()
            .collect();
        let barriers: Vec<&Op> = ops.iter().filter(|o| matches!(o, Op::Barrier(_))).collect();
        assert_eq!(barriers.len(), 1);
        assert_eq!(*barriers[0], Op::Barrier(0));
        // The warm-up sweep writes grid 1, the measured sweep grid 0: the
        // first store before and after the barrier must differ.
        let bar = ops
            .iter()
            .position(|o| matches!(o, Op::Barrier(_)))
            .unwrap();
        let first_store = |s: &[Op]| {
            s.iter()
                .find_map(|o| match o {
                    Op::Write(a) => Some(*a),
                    _ => None,
                })
                .unwrap()
        };
        assert_ne!(first_store(&ops[..bar]), first_store(&ops[bar..]));
    }

    #[test]
    fn jacobi_prediction_prefers_shifted_rows() {
        let w = Workload::jacobi_smoke(64, 16);
        let advisor = LayoutAdvisor::t2();
        let plain = w.predicted_efficiency(&advisor, &LayoutSpec::new().base_align(8192));
        let shifted = w.predicted_efficiency(
            &advisor,
            &LayoutSpec::new().base_align(8192).seg_align(512).shift(128),
        );
        assert!(
            shifted > 1.5 * plain,
            "rotating rows must rank far above aliased rows: {plain} vs {shifted}"
        );
    }

    #[test]
    fn lbm_programs_cover_sampled_rows() {
        let w = Workload::lbm_smoke(8, LbmLayout::IvJK, 4);
        w.validate(&ChipConfig::ultrasparc_t2());
        assert_eq!(w.n(), LbmLayout::IvJK.volume(10));
        assert_eq!(w.flops_per_elem(), FLOPS_PER_SITE);
        // 8 × 2 × 8 sampled sites × 38 streams × 8 B.
        assert_eq!(w.reported_bytes(), 8 * 2 * 8 * 38 * 8);
        let spec = LayoutSpec::new().base_align(8192);
        let programs = w.build_programs(&spec);
        assert_eq!(programs.len(), 4);
        // 8 z-planes over 4 threads → 2 planes × 2 sampled rows each; one
        // row is 8 doubles (64 B) per stream, walked in two 32 B
        // sub-blocks (touches = 2). A load stream starts at x = 1, off
        // line alignment, so its two sub-blocks cover 3 line-touches.
        let ops: Vec<Op> = programs.into_iter().next().unwrap().collect();
        let reads = ops.iter().filter(|o| matches!(o, Op::Read(_))).count();
        let writes = ops.iter().filter(|o| matches!(o, Op::Write(_))).count();
        assert_eq!(reads, 2 * 2 * Q * 3);
        // Store streams land on neighbor offsets, some line-aligned
        // (2 touches) and some not (3) — bound instead of pinning.
        assert!(
            (2 * 2 * Q * 2..=2 * 2 * Q * 3).contains(&writes),
            "writes out of range: {writes}"
        );
        assert!(
            !ops.iter().any(|o| matches!(o, Op::Barrier(_))),
            "smoke variant: one sweep, no barrier"
        );
    }

    #[test]
    fn lbm_packed_spec_reproduces_flat_addresses() {
        // With no padding the segmented addressing must agree with the
        // flat LbmLayout::index addressing, for both layouts.
        for layout in [LbmLayout::IJKv, LbmLayout::IvJK] {
            let w = Workload::lbm_smoke(4, layout, 2);
            let d = 6;
            let arrays = w.layout_arrays(&LayoutSpec::new().base_align(8192));
            for (base, seg) in &arrays {
                for z in 0..d {
                    for y in 0..d {
                        for v in 0..Q {
                            let (s, l) = layout.seg_coords(d, 2, y, z, v);
                            assert_eq!(
                                base + seg.elem_byte_offset(s, l) as u64,
                                base + (layout.index(d, 2, y, z, v) * 8) as u64,
                                "{layout:?} packed segmentation must be flat"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lbm_warmup_toggles_grids() {
        let w = Workload::lbm(4, LbmLayout::IJKv, 8);
        let spec = LayoutSpec::new().base_align(8192);
        let ops: Vec<Op> = w
            .build_programs(&spec)
            .into_iter()
            .next()
            .unwrap()
            .collect();
        let bar = ops
            .iter()
            .position(|o| matches!(o, Op::Barrier(_)))
            .expect("warm-up sweep must end in barrier 0");
        let first_store = |s: &[Op]| {
            s.iter()
                .find_map(|o| match o {
                    Op::Write(a) => Some(*a),
                    _ => None,
                })
                .unwrap()
        };
        assert_ne!(
            first_store(&ops[..bar]),
            first_store(&ops[bar..]),
            "toggle grids must swap roles across the barrier"
        );
    }

    #[test]
    fn predicted_efficiency_prefers_advisor_offsets() {
        let w = Workload::triad_smoke(1 << 12, 64);
        let advisor = LayoutAdvisor::t2();
        let aliased = w.predicted_efficiency(&advisor, &LayoutSpec::new().base_align(8192));
        let spread = w.predicted_efficiency(
            &advisor,
            &LayoutSpec::new().base_align(8192).block_offset(128),
        );
        assert!(
            spread > 1.5 * aliased,
            "advisor must rank offset 128 far above aliased: {aliased} vs {spread}"
        );
    }
}
