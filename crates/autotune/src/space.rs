//! The tuning parameter space: a grid over the four layout parameters of
//! Fig. 3 (`base_align`, `seg_align`, `shift`, `block_offset`) plus, on
//! multi-socket chips, the NUMA page-placement axis.
//!
//! The space is a cartesian product of per-dimension value lists, so every
//! candidate has grid coordinates `[i0, i1, i2, i3, i4]` — which is what
//! the coordinate-descent and advisor-seeded strategies walk.

use t2opt_core::chip::ChipSpec;
use t2opt_core::layout::LayoutSpec;
use t2opt_core::mapping::PagePlacement;

/// Number of tuned dimensions (the four Fig. 3 parameters plus the NUMA
/// page-placement axis).
pub const N_DIMS: usize = 5;

/// A grid over the four layout parameters. Every dimension must be
/// non-empty; candidates are enumerated in row-major order
/// (`base_align` outermost, `block_offset` innermost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpace {
    /// Allocation base alignments to try (power of two; 0 = unaligned).
    pub base_aligns: Vec<usize>,
    /// Segment alignments to try (power of two; 0/1 = packed).
    pub seg_aligns: Vec<usize>,
    /// Per-segment shifts to try (bytes).
    pub shifts: Vec<usize>,
    /// Per-array block offsets to try (bytes): array `j` of the workload is
    /// displaced by `j · block_offset`.
    pub block_offsets: Vec<usize>,
    /// NUMA page placements to try. `[PagePlacement::FirstTouch]` — the
    /// single-socket identity — everywhere except grids built for a
    /// multi-socket chip, so pre-NUMA spaces keep their exact shape.
    pub placements: Vec<PagePlacement>,
}

impl ParamSpace {
    /// The degenerate space holding only the default [`LayoutSpec`].
    pub fn single() -> Self {
        ParamSpace {
            base_aligns: vec![64],
            seg_aligns: vec![0],
            shifts: vec![0],
            block_offsets: vec![0],
            placements: vec![PagePlacement::FirstTouch],
        }
    }

    /// The Fig. 4 offset sweep: page-aligned arrays, block offset swept in
    /// `step`-byte increments over `[0, limit)`.
    pub fn offset_sweep(step: usize, limit: usize) -> Self {
        assert!(step > 0 && limit > 0, "need a positive step and limit");
        ParamSpace {
            base_aligns: vec![8192],
            seg_aligns: vec![0],
            shifts: vec![0],
            block_offsets: (0..limit).step_by(step).collect(),
            placements: vec![PagePlacement::FirstTouch],
        }
    }

    /// A practical default grid derived from a chip topology: page or
    /// cache-line base alignment, packed or period-padded segments, the
    /// advisor's shift candidates, and block offsets spanning one
    /// interleave period in steps of half a controller stride (never finer
    /// than a cache line). For the T2 this reproduces the historical
    /// hardcoded grid exactly — see [`ParamSpace::t2_default`].
    pub fn for_chip(spec: &ChipSpec) -> Self {
        let period = spec.interleave_period();
        let line = spec.line_size();
        let n_mc = spec.num_controllers();
        let step = (period / (2 * n_mc)).max(line);
        ParamSpace {
            base_aligns: vec![line, 8192usize.max(period)],
            seg_aligns: vec![0, period],
            shifts: vec![0, period / n_mc],
            block_offsets: (0..period).step_by(step).collect(),
            // Multi-socket chips get the affinity axis: the tuner
            // co-optimizes placement × byte layout.
            placements: if spec.sockets.is_numa() {
                PagePlacement::ALL.to_vec()
            } else {
                vec![PagePlacement::FirstTouch]
            },
        }
    }

    /// The Fig. 4 offset sweep for an arbitrary chip: the block offset is
    /// swept over one interleave period in controller-stride steps (so the
    /// sweep always contains the advisor's suggested offset class and the
    /// fully aliased zero offset).
    pub fn offset_sweep_for(spec: &ChipSpec) -> Self {
        let period = spec.interleave_period();
        ParamSpace::offset_sweep(period / spec.num_controllers(), period)
            .with_base_align(8192usize.max(period))
    }

    /// A practical default grid for the T2: page or cache-line base
    /// alignment, packed or super-line-padded segments, the advisor's shift
    /// candidates, and block offsets over one super-line in cache-line
    /// steps.
    pub fn t2_default() -> Self {
        ParamSpace::for_chip(&ChipSpec::ultrasparc_t2())
    }

    /// Replaces the base-alignment dimension with a single value.
    fn with_base_align(mut self, align: usize) -> Self {
        self.base_aligns = vec![align];
        self
    }

    /// Replaces the placement dimension.
    pub fn with_placements(mut self, placements: Vec<PagePlacement>) -> Self {
        assert!(!placements.is_empty(), "need at least one placement");
        self.placements = placements;
        self
    }

    /// The Fig. 7 LBM padding sweep: page-aligned grids, segments packed
    /// or padded out to the 512 B super-line, inter-segment shifts up to
    /// one controller step, and the two toggle grids packed or displaced
    /// by one controller line. Small (12 candidates) because one LBM trial
    /// simulates 38 streams per row — yet it spans the paper's comparison:
    /// packed IJKv aliases, padded + shifted IJKv recovers, and IvJK is
    /// near-optimal already packed.
    pub fn lbm_padding_sweep() -> Self {
        ParamSpace {
            base_aligns: vec![8192],
            seg_aligns: vec![1, 512],
            shifts: vec![0, 64, 128],
            block_offsets: vec![0, 128],
            placements: vec![PagePlacement::FirstTouch],
        }
    }

    /// Per-dimension sizes `[|base_aligns|, |seg_aligns|, |shifts|,
    /// |block_offsets|, |placements|]`.
    pub fn dims(&self) -> [usize; N_DIMS] {
        [
            self.base_aligns.len(),
            self.seg_aligns.len(),
            self.shifts.len(),
            self.block_offsets.len(),
            self.placements.len(),
        ]
    }

    /// Total number of candidates.
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Whether the space is empty (some dimension has no values).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The candidate at grid coordinates `idx`.
    ///
    /// # Panics
    /// Panics if any coordinate is out of range.
    pub fn spec_at(&self, idx: [usize; N_DIMS]) -> LayoutSpec {
        LayoutSpec::new()
            .base_align(self.base_aligns[idx[0]])
            .seg_align(self.seg_aligns[idx[1]])
            .shift(self.shifts[idx[2]])
            .block_offset(self.block_offsets[idx[3]])
            .placement(self.placements[idx[4]])
    }

    /// All candidates in row-major order.
    pub fn candidates(&self) -> Vec<LayoutSpec> {
        let mut out = Vec::with_capacity(self.len());
        for &ba in &self.base_aligns {
            for &sa in &self.seg_aligns {
                for &sh in &self.shifts {
                    for &bo in &self.block_offsets {
                        for &pl in &self.placements {
                            out.push(
                                LayoutSpec::new()
                                    .base_align(ba)
                                    .seg_align(sa)
                                    .shift(sh)
                                    .block_offset(bo)
                                    .placement(pl),
                            );
                        }
                    }
                }
            }
        }
        out
    }

    /// Grid coordinates of the in-space candidate closest (per dimension,
    /// by absolute difference; ties to the smaller value) to `target` —
    /// used to project the advisor's closed-form suggestion into the grid.
    pub fn nearest_index(&self, target: &LayoutSpec) -> [usize; N_DIMS] {
        // Compare in the setters' canonical form (0 → 1 for alignments).
        let nearest = |values: &[usize], want: usize, canon: bool| -> usize {
            values
                .iter()
                .enumerate()
                .min_by_key(|(_, &v)| {
                    let v = if canon { v.max(1) } else { v };
                    v.abs_diff(want)
                })
                .map(|(i, _)| i)
                .expect("dimension must be non-empty")
        };
        [
            nearest(&self.base_aligns, target.base_align, true),
            nearest(&self.seg_aligns, target.seg_align, true),
            nearest(&self.shifts, target.shift, false),
            nearest(&self.block_offsets, target.block_offset, false),
            // Placement is categorical: exact match, else the first entry.
            self.placements
                .iter()
                .position(|&p| p == target.placement)
                .unwrap_or(0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_row_major_and_complete() {
        let space = ParamSpace {
            base_aligns: vec![64, 8192],
            seg_aligns: vec![0, 512],
            shifts: vec![0],
            block_offsets: vec![0, 128],
            placements: vec![PagePlacement::FirstTouch],
        };
        let all = space.candidates();
        assert_eq!(all.len(), space.len());
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], space.spec_at([0, 0, 0, 0, 0]));
        assert_eq!(all[1], space.spec_at([0, 0, 0, 1, 0]));
        assert_eq!(all[7], space.spec_at([1, 1, 0, 1, 0]));
    }

    #[test]
    fn offset_sweep_matches_fig4_grid() {
        let s = ParamSpace::offset_sweep(64, 512);
        assert_eq!(s.block_offsets, vec![0, 64, 128, 192, 256, 320, 384, 448]);
        assert_eq!(s.len(), 8);
        assert!(s.candidates().iter().all(|c| c.base_align == 8192));
    }

    #[test]
    fn t2_grid_derivation_reproduces_the_historical_literals() {
        // `t2_default` used to hardcode this grid; it is now derived from
        // the chip spec and must stay pinned to the same values.
        let s = ParamSpace::t2_default();
        assert_eq!(s.base_aligns, vec![64, 8192]);
        assert_eq!(s.seg_aligns, vec![0, 512]);
        assert_eq!(s.shifts, vec![0, 128]);
        assert_eq!(s.block_offsets, (0..512).step_by(64).collect::<Vec<_>>());
        assert_eq!(
            ParamSpace::offset_sweep_for(&ChipSpec::ultrasparc_t2()),
            ParamSpace::offset_sweep(128, 512)
        );
    }

    #[test]
    fn chip_grids_scale_with_the_interleave_period() {
        let wide = ParamSpace::for_chip(&ChipSpec::wide_8mc());
        assert_eq!(wide.seg_aligns, vec![0, 1024]);
        assert_eq!(wide.shifts, vec![0, 128]);
        assert_eq!(wide.block_offsets.len(), 16); // 1024 / 64
        let budget = ParamSpace::for_chip(&ChipSpec::budget_2mc());
        assert_eq!(budget.seg_aligns, vec![0, 256]);
        assert_eq!(budget.shifts, vec![0, 128]);
        assert_eq!(budget.block_offsets, vec![0, 64, 128, 192]);
        // Page interleave: the grid must step whole pages, and the sweep
        // must still include the advisor's suggested class.
        let paged = ParamSpace::for_chip(&ChipSpec::t2_page_interleave());
        assert_eq!(paged.seg_aligns, vec![0, 16384]);
        assert_eq!(paged.shifts, vec![0, 4096]);
        assert!(paged.block_offsets.contains(&4096));
        let sweep = ParamSpace::offset_sweep_for(&ChipSpec::t2_page_interleave());
        assert_eq!(sweep.block_offsets, vec![0, 4096, 8192, 12288]);
        assert!(sweep.candidates().iter().all(|c| c.base_align == 16384));
    }

    #[test]
    fn numa_chips_get_the_placement_axis_and_single_socket_chips_do_not() {
        let t2 = ParamSpace::t2_default();
        assert_eq!(t2.placements, vec![PagePlacement::FirstTouch]);
        let numa = ParamSpace::for_chip(&ChipSpec::preset("2s-numa").unwrap());
        assert_eq!(numa.placements, PagePlacement::ALL.to_vec());
        assert_eq!(numa.len(), numa.candidates().len());
        // The categorical dimension projects exactly.
        let idx = numa.nearest_index(&LayoutSpec::new().placement(PagePlacement::Remote));
        assert_eq!(numa.spec_at(idx).placement, PagePlacement::Remote);
    }

    #[test]
    fn nearest_index_projects_advisor_seed() {
        let space = ParamSpace::t2_default();
        let seed = t2opt_core::advisor::LayoutAdvisor::t2().suggest_layout();
        let idx = space.nearest_index(&seed);
        let projected = space.spec_at(idx);
        assert_eq!(projected.base_align, 8192);
        assert_eq!(projected.seg_align, 512);
        assert_eq!(projected.shift, 128);
        assert_eq!(projected.block_offset, 128);
    }

    #[test]
    fn nearest_index_canonicalizes_zero_alignment() {
        let space = ParamSpace {
            base_aligns: vec![0, 8192],
            seg_aligns: vec![0],
            shifts: vec![0],
            block_offsets: vec![0],
            placements: vec![PagePlacement::FirstTouch],
        };
        // A canonical spec with base_align 1 must match the grid's 0 entry.
        let idx = space.nearest_index(&LayoutSpec::new().base_align(0));
        assert_eq!(idx[0], 0);
    }
}
