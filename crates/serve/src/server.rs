//! The daemon: a nonblocking acceptor feeding a connection queue drained
//! by a `t2opt_parallel::ThreadPool` of request workers, plus dedicated
//! refiner threads draining the refinement queue.
//!
//! Shutdown contract: flipping the shutdown flag (via `POST /shutdown`, a
//! signal observed through [`Server::observe_signal`], or the handle from
//! [`Server::shutdown_handle`]) stops the acceptor, lets every worker
//! finish its in-flight request (with a short drain deadline for stalled
//! clients), stops the refiners after their current job, and finally
//! flushes dirty store shards to disk via compaction.

use crate::http::{read_request, write_response, Partial, ReadOutcome, Response};
use crate::refine::RefineQueue;
use crate::service::AdviceService;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};
use t2opt_autotune::ResultCache;
use t2opt_parallel::ThreadPool;
use t2opt_telemetry::logger::{log_line, Level};

/// Pool sizes for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Request worker threads (the `ThreadPool` size).
    pub workers: usize,
    /// Background refiner threads.
    pub refiners: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            refiners: 1,
        }
    }
}

/// A bound-but-not-yet-serving daemon. [`Server::serve`] blocks until
/// shutdown.
pub struct Server {
    listener: TcpListener,
    service: Arc<AdviceService>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    signal: Option<&'static AtomicBool>,
}

/// How long a worker keeps waiting for the rest of a half-received
/// request once shutdown has been requested.
const DRAIN_DEADLINE: Duration = Duration::from_secs(2);
/// Read timeout on request sockets — the cadence at which an idle worker
/// rechecks the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(250);

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) over `service`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: AdviceService,
        config: ServerConfig,
    ) -> io::Result<Self> {
        assert!(config.workers > 0, "server needs at least one worker");
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service: Arc::new(service),
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            signal: None,
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that triggers graceful shutdown when set to `true`.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The service behind this server (for metrics inspection in tests).
    pub fn service(&self) -> Arc<AdviceService> {
        Arc::clone(&self.service)
    }

    /// Additionally watch a process-global flag (a signal handler's
    /// `AtomicBool`) for shutdown — SIGTERM/ctrl-c support for `main`.
    pub fn observe_signal(mut self, flag: &'static AtomicBool) -> Self {
        self.signal = Some(flag);
        self
    }

    /// Runs the accept → worker-pool → respond loop until shutdown, then
    /// drains in-flight requests, stops refiners, and flushes the store.
    pub fn serve(self) -> io::Result<()> {
        let Server {
            listener,
            service,
            config,
            shutdown,
            signal,
        } = self;
        listener.set_nonblocking(true)?;
        let conns: ConnQueue = ConnQueue::default();
        let pool = ThreadPool::new(config.workers);
        let queue = service.refine_queue();

        std::thread::scope(|scope| {
            scope.spawn(|| accept_loop(&listener, &conns, &shutdown, signal));
            for _ in 0..config.refiners {
                let service = Arc::clone(&service);
                let queue = Arc::clone(&queue);
                let shutdown = Arc::clone(&shutdown);
                scope.spawn(move || refiner_loop(&service, &queue, &shutdown));
            }
            pool.run(|tid| worker_loop(&conns, &service, &shutdown, tid as u32));
            // Workers are done; wake anyone still parked on the queue.
            conns.signal.notify_all();
        });
        service.store().metrics().publish(&service.sink());
        service.store().compact()
    }
}

/// The pending-connection queue between the acceptor and the workers.
/// Each entry carries its accept time so the request trace's `accept`
/// span can cover the queue wait.
#[derive(Default)]
struct ConnQueue {
    streams: Mutex<VecDeque<(TcpStream, Instant)>>,
    signal: Condvar,
}

fn accept_loop(
    listener: &TcpListener,
    conns: &ConnQueue,
    shutdown: &AtomicBool,
    signal: Option<&'static AtomicBool>,
) {
    loop {
        if signal.is_some_and(|f| f.load(Ordering::Relaxed)) {
            shutdown.store(true, Ordering::Relaxed);
        }
        if shutdown.load(Ordering::Relaxed) {
            conns.signal.notify_all();
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                conns
                    .streams
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push_back((stream, Instant::now()));
                conns.signal.notify_one();
            }
            // Nonblocking listener: idle or transient error — nap and
            // recheck the shutdown flag.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn worker_loop(conns: &ConnQueue, service: &AdviceService, shutdown: &AtomicBool, tid: u32) {
    loop {
        let stream = {
            let mut streams = conns.streams.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(s) = streams.pop_front() {
                    break Some(s);
                }
                if shutdown.load(Ordering::Relaxed) {
                    break None;
                }
                let (guard, _) = conns
                    .signal
                    .wait_timeout(streams, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                streams = guard;
            }
        };
        match stream {
            Some((s, accepted_at)) => handle_connection(s, accepted_at, service, shutdown, tid),
            None => return,
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    accepted_at: Instant,
    service: &AdviceService,
    shutdown: &AtomicBool,
    tid: u32,
) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let traces = service.traces();
    // Accept-queue wait: accept() in the acceptor thread until this worker
    // dequeued the connection. Attributed to the connection's first
    // request (later keep-alive requests never waited in that queue).
    let dequeued_at = Instant::now();
    let mut first_request = true;
    let mut pending = Partial::default();
    let mut drain_deadline: Option<Instant> = None;
    loop {
        match read_request(&mut stream, std::mem::take(&mut pending)) {
            Ok(ReadOutcome::Request(req)) => {
                let parsed_at = Instant::now();
                let arrived = req.first_byte.unwrap_or(parsed_at);
                let ctx = traces.start_at(
                    format!("{} {}", req.method, req.path),
                    traces.us_of(if first_request { accepted_at } else { arrived }),
                );
                if first_request {
                    ctx.record(
                        "accept",
                        tid,
                        traces.us_of(accepted_at),
                        traces.us_of(dequeued_at) - traces.us_of(accepted_at),
                    );
                    first_request = false;
                }
                ctx.record(
                    "parse",
                    tid,
                    traces.us_of(arrived),
                    traces.us_of(parsed_at) - traces.us_of(arrived),
                );
                let _ambient = ctx.enter();
                let stop_requested = req.method == "POST" && req.path == "/shutdown";
                let response = if stop_requested {
                    Response::json(r#"{"status":"shutting down"}"#.to_string())
                } else {
                    service.handle_request(
                        &req.method,
                        &req.path,
                        &req.body,
                        &req.accept,
                        &ctx,
                        tid,
                        req.first_byte,
                    )
                };
                // End-to-end latency (first byte → response ready): recorded
                // before the write so a client holding the response always
                // finds its own sample already present in a scrape, and the
                // histogram quantiles line up with a client-side stopwatch
                // up to syscall and context-switch time.
                if req.first_byte.is_some()
                    && req.method == "POST"
                    && req.path.split('?').next() == Some("/advise")
                {
                    let us = arrived.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    service.record_advise_latency(&response, us);
                }
                let keep_alive =
                    req.keep_alive && !stop_requested && !shutdown.load(Ordering::Relaxed);
                let write = write_response(&mut stream, &response, keep_alive);
                ctx.finish_root("request", tid);
                if stop_requested {
                    log_line(Level::Info, "shutdown requested over HTTP", &[]);
                    shutdown.store(true, Ordering::Relaxed);
                }
                if write.is_err() || !keep_alive {
                    return;
                }
            }
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::TimedOut(partial)) => {
                if shutdown.load(Ordering::Relaxed) {
                    if partial.bytes.is_empty() {
                        // Idle keep-alive connection: nothing to drain.
                        return;
                    }
                    // Half-received request: drain it, but not forever.
                    let deadline =
                        *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_DEADLINE);
                    if Instant::now() > deadline {
                        return;
                    }
                }
                pending = partial;
            }
            Err(e) => {
                if e.kind() == io::ErrorKind::InvalidData {
                    let _ =
                        write_response(&mut stream, &Response::error(400, &e.to_string()), false);
                }
                return;
            }
        }
    }
}

/// A refiner thread: pops jobs until shutdown, threading one trial-level
/// [`ResultCache`] across jobs so later refinements reuse simulations and
/// transfer-seed from earlier kernels' winners.
fn refiner_loop(service: &AdviceService, queue: &RefineQueue, shutdown: &AtomicBool) {
    let mut trials = ResultCache::in_memory();
    while let Some(job) = queue.pop(shutdown) {
        trials = service.run_refinement(&job, trials);
    }
}
