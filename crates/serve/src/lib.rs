//! Layout-advice-as-a-service: a daemon answering "what layout for kernel
//! K on chip C with T threads?" over minimal HTTP/1.1 + JSON, composed
//! from every existing subsystem:
//!
//! - the closed-form **advisor** and analytic **model** answer cold
//!   queries immediately (microseconds — no query ever blocks on a
//!   simulation),
//! - the **autotuner** refines each query in the background with
//!   model-pruned / transfer-seeded search,
//! - the sharded **store** keeps the best known answer per query durable
//!   across restarts,
//! - the **thread pool** from `t2opt-parallel` drives the request
//!   workers, and `t2opt-telemetry` carries the counters, per-tier
//!   latency histograms, request traces, and structured logs.
//!
//! Endpoints: `POST /advise`, `GET /metrics` (JSON or Prometheus text
//! exposition via `?format=prometheus` / `Accept: text/plain`),
//! `GET /trace` (recent request traces as Chrome-trace JSON),
//! `GET /healthz`, plus `POST /shutdown` for portable clean shutdown in
//! CI.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod refine;
pub mod server;
pub mod service;

pub use client::Client;
pub use refine::{RefineJob, RefineQueue};
pub use server::{Server, ServerConfig};
pub use service::{AdviceService, AdviseAnswer, AdviseQuery, WORKLOAD_NAMES};
