//! `t2opt-serve` daemon entry point.
//!
//! ```text
//! cargo run --release -p t2opt-serve -- --port 8080 --store-dir results/store
//! cargo run --release -p t2opt-serve -- --port 0 --port-file /tmp/serve.port
//! ```
//!
//! Flags (all optional):
//! - `--host H` bind host (default `127.0.0.1`)
//! - `--port P` bind port (default `0` = ephemeral; the chosen port is
//!   printed and, with `--port-file`, written to a file for scripts)
//! - `--store-dir DIR` durable sharded store (default: in-memory)
//! - `--shards N` shard count for a fresh store dir (default 8)
//! - `--workers N` request worker threads (default 8)
//! - `--refiners N` background refiner threads (default 1)
//! - `--queue-cap N` refinement queue capacity (default 64)
//! - `--log PATH` append JSONL logs to PATH instead of stderr
//! - `--no-trace` disable request tracing and store lock-wait timing
//!   (the `/trace` buffer stays empty; counters and latency histograms
//!   remain live)
//!
//! The log level comes from `T2OPT_LOG` (`error|warn|info|debug`,
//! default `info`).
//!
//! SIGINT/SIGTERM (or `POST /shutdown`) trigger graceful shutdown:
//! in-flight requests drain, refiners stop after their current job, and
//! dirty store shards are compacted to disk.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use t2opt_serve::{AdviceService, Server, ServerConfig};
use t2opt_store::Store;
use t2opt_telemetry::logger::{self, log_line, Level};

/// Set by the signal handler; observed by the server's accept loop.
static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SIGNALED.store(true, Ordering::Relaxed);
}

type SigHandler = extern "C" fn(i32);
extern "C" {
    fn signal(signum: i32, handler: SigHandler) -> isize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    flag_value(name).map_or(default, |v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{name} expects a number, got {v:?}"))
    })
}

fn flag_present(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let log_path = flag_value("--log");
    logger::init_from_env(log_path.as_deref());
    let host = flag_value("--host").unwrap_or_else(|| "127.0.0.1".to_string());
    let port: u16 = flag_parse("--port", 0);
    let shards: usize = flag_parse("--shards", 8);
    let config = ServerConfig {
        workers: flag_parse("--workers", 8),
        refiners: flag_parse("--refiners", 1),
    };
    let queue_cap: usize = flag_parse("--queue-cap", 64);

    let store = match flag_value("--store-dir") {
        Some(dir) => Store::open_dir(&dir, shards).expect("failed to open store dir"),
        None => Store::in_memory(shards),
    };
    let service = AdviceService::new(store, queue_cap);
    if flag_present("--no-trace") {
        service.set_tracing(false);
    }

    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }

    let server = Server::bind(format!("{host}:{port}"), service, config)
        .expect("failed to bind")
        .observe_signal(&SIGNALED);
    let addr = server.local_addr().expect("bound socket has an address");
    log_line(
        Level::Info,
        "t2opt-serve listening",
        &[("addr", logger::json_str(&addr.to_string()))],
    );
    if let Some(path) = flag_value("--port-file") {
        let mut f = std::fs::File::create(&path).expect("failed to create port file");
        writeln!(f, "{}", addr.port()).expect("failed to write port file");
    }
    server.serve().expect("server error");
    log_line(Level::Info, "t2opt-serve: store flushed, bye", &[]);
}
