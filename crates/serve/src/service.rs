//! The advice service: tiered answers to "what layout for workload W on
//! chip C with T threads?".
//!
//! Tier contract (the escalation path DESIGN §11 documents):
//!
//! 1. **Store hit, refined** — a background autotune already ran for this
//!    query; answer from the store (`tier: "cache"`, measured GB/s).
//! 2. **Store hit, advisor placeholder** — refinement is still pending;
//!    answer the closed-form advisor layout with the analytic model's
//!    predicted bandwidth (`tier: "advisor"`) and make sure a refinement
//!    job is queued.
//! 3. **Miss** — compute the advisor layout + model prediction
//!    immediately (microseconds, never a simulation), store it as a
//!    placeholder, and enqueue a background refinement that upgrades the
//!    entry when it lands.
//!
//! Every query is answered synchronously from closed-form math or the
//! store; simulations only ever run on refiner threads.

use crate::http::Response;
use crate::refine::{RefineJob, RefineQueue};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use t2opt_autotune::surrogate::{model_for_chip, surrogate_score};
use t2opt_autotune::{ParamSpace, ResultCache, SearchStrategy, Tuner, Workload};
use t2opt_core::chip::{ChipSpec, PRESET_NAMES};
use t2opt_core::json::{parse_json, to_json_string};
use t2opt_core::layout::LayoutSpec;
use t2opt_kernels::lbm::LbmLayout;
use t2opt_model::PerfModel;
use t2opt_sim::ChipConfig;
use t2opt_store::{Entry, Store, TrialMeta};
use t2opt_telemetry::export::{prometheus_text, traces_chrome_trace};
use t2opt_telemetry::logger::{log_line, Level};
use t2opt_telemetry::metrics::{Counter, Histogram, Sink};
use t2opt_telemetry::trace::{TraceBuffer, TraceCtx};

/// Workload labels the service accepts.
pub const WORKLOAD_NAMES: [&str; 5] = ["triad", "jacobi", "lbm-ijkv", "lbm-ivjk", "mix"];

/// Tag suffix marking a store entry as an unrefined advisor placeholder.
const ADVISOR_SUFFIX: &str = "#advisor";
/// Tag suffix marking a store entry as an autotuned (refined) result.
const REFINED_SUFFIX: &str = "#refined";

/// Everything precomputed per chip preset at service construction, so the
/// hot path never rebuilds models or advisors.
struct ChipEntry {
    spec: ChipSpec,
    config: ChipConfig,
    fingerprint: String,
    model: PerfModel,
    advisor_spec: LayoutSpec,
}

/// One parsed `/advise` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdviseQuery {
    /// Chip preset name (see [`PRESET_NAMES`]).
    pub chip: String,
    /// Workload label (see [`WORKLOAD_NAMES`]).
    pub workload: String,
    /// Requested thread count, clamped to the chip's hardware threads.
    pub threads: usize,
}

/// The JSON body answered to `/advise`.
#[derive(Debug, Clone, Serialize)]
pub struct AdviseAnswer {
    /// Chip preset the advice is for.
    pub chip: String,
    /// Workload label the advice is for.
    pub workload: String,
    /// Thread count actually used (after clamping).
    pub threads: usize,
    /// `"cache"` (refined, measured) or `"advisor"` (closed-form + model).
    pub tier: String,
    /// Whether a background autotune has upgraded this entry.
    pub refined: bool,
    /// The advised layout.
    pub layout: LayoutSpec,
    /// Bandwidth in GB/s: measured for `"cache"`, model-predicted for
    /// `"advisor"`.
    pub gbs: f64,
    /// `"measured"` or `"model-predicted"`.
    pub source: String,
    /// The store key for this query (stable across requests).
    pub key: String,
}

/// How many recent request traces `GET /trace` retains by default.
const TRACE_BUF_TRACES: usize = 64;
/// Span cap per retained trace.
const TRACE_BUF_SPANS: usize = 64;
/// Default trace count returned by `GET /trace`.
const TRACE_DEFAULT_N: usize = 32;

/// Shared, thread-safe service state behind every endpoint.
pub struct AdviceService {
    store: Store,
    chips: BTreeMap<String, ChipEntry>,
    refine: Arc<RefineQueue>,
    sink: Arc<Sink>,
    traces: Arc<TraceBuffer>,
    // Hot-path instruments, resolved once at construction so request
    // handling never takes the sink's registry mutex.
    lat_cache_us: Arc<Histogram>,
    lat_advisor_us: Arc<Histogram>,
    queue_wait_us: Arc<Histogram>,
    bad_parse: Arc<Counter>,
    bad_chip: Arc<Counter>,
    bad_workload: Arc<Counter>,
}

impl AdviceService {
    /// Builds a service over `store` with a refinement queue of the given
    /// capacity, precomputing per-preset advisors and models. Tracing
    /// starts enabled; see [`AdviceService::set_tracing`].
    pub fn new(store: Store, queue_capacity: usize) -> Self {
        let chips: BTreeMap<String, ChipEntry> = PRESET_NAMES
            .iter()
            .map(|&name| {
                let spec = ChipSpec::preset(name).expect("preset names are exhaustive");
                let config = ChipConfig::from_spec(&spec);
                ChipEntry {
                    fingerprint: ResultCache::chip_fingerprint(&config),
                    model: model_for_chip(&config),
                    advisor_spec: spec.advisor().suggest_layout(),
                    spec,
                    config,
                }
            })
            .map(|e| (e.spec.name.clone(), e))
            .collect();
        let sink = Sink::enabled();
        // Pre-register every counter the Prometheus exposition should
        // show even at zero.
        for name in [
            "serve.requests",
            "serve.advise",
            "serve.cache_tier",
            "serve.advisor_tier",
            "serve.not_found",
            "serve.bad_method",
        ] {
            sink.counter(name);
        }
        store.metrics().set_lock_timing(true);
        AdviceService {
            store,
            chips,
            refine: Arc::new(RefineQueue::new(queue_capacity)),
            traces: TraceBuffer::new(TRACE_BUF_TRACES, TRACE_BUF_SPANS),
            lat_cache_us: sink.histogram("serve.latency.cache_tier_us"),
            lat_advisor_us: sink.histogram("serve.latency.advisor_tier_us"),
            queue_wait_us: sink.histogram("refine.queue_wait_us"),
            bad_parse: sink.counter("serve.bad_requests.parse"),
            bad_chip: sink.counter("serve.bad_requests.chip"),
            bad_workload: sink.counter("serve.bad_requests.workload"),
            sink,
        }
    }

    /// Turns request tracing (the `/trace` span buffer) and store
    /// lock-wait timing on or off together. Off restores the overhead
    /// contract of one relaxed load per probe site; the always-on counters
    /// and latency histograms are plain relaxed atomics either way.
    pub fn set_tracing(&self, on: bool) {
        self.traces.set_enabled(on);
        self.store.metrics().set_lock_timing(on);
    }

    /// The request-trace buffer backing `GET /trace`.
    pub fn traces(&self) -> Arc<TraceBuffer> {
        Arc::clone(&self.traces)
    }

    /// The backing store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The background refinement queue.
    pub fn refine_queue(&self) -> Arc<RefineQueue> {
        Arc::clone(&self.refine)
    }

    /// The telemetry sink the service publishes its counters through.
    pub fn sink(&self) -> Arc<Sink> {
        Arc::clone(&self.sink)
    }

    /// Routes one HTTP request to its endpoint (untraced; see
    /// [`AdviceService::handle_request`] for the daemon's full path).
    pub fn handle(&self, method: &str, path: &str, body: &str) -> Response {
        self.handle_request(method, path, body, "", &TraceCtx::disabled(), 0, None)
    }

    /// Routes one HTTP request to its endpoint, carrying the request's
    /// trace context and worker thread id. `path` may include a query
    /// string; `accept` is the `Accept` header value (for `/metrics`
    /// content negotiation); `received_at` is when the request's first
    /// byte arrived, so the per-tier latency histograms cover nearly the
    /// same interval a client's stopwatch does.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_request(
        &self,
        method: &str,
        path: &str,
        body: &str,
        accept: &str,
        ctx: &TraceCtx,
        tid: u32,
        received_at: Option<Instant>,
    ) -> Response {
        self.sink.counter("serve.requests").inc();
        let (route, query) = match path.split_once('?') {
            Some((r, q)) => (r, q),
            None => (path, ""),
        };
        match (method, route) {
            ("POST", "/advise") => self.advise_request(body, ctx, tid, received_at),
            ("GET", "/metrics") => {
                if wants_prometheus(query, accept) {
                    Response::text(self.metrics_prometheus(), "text/plain; version=0.0.4")
                } else {
                    Response::json(self.metrics_json())
                }
            }
            ("GET", "/trace") => {
                let n = query_param(query, "n")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(TRACE_DEFAULT_N);
                Response::json(traces_chrome_trace(&self.traces.recent(n)))
            }
            ("GET", "/healthz") => Response::json(format!(
                r#"{{"status":"ok","entries":{},"shards":{}}}"#,
                self.store.len(),
                self.store.shard_count()
            )),
            ("GET" | "POST", _) => {
                self.sink.counter("serve.not_found").inc();
                Response::error(404, &format!("no such endpoint {route}"))
            }
            _ => {
                self.sink.counter("serve.bad_method").inc();
                Response::error(
                    405,
                    "use POST /advise, GET /metrics, GET /trace, GET /healthz",
                )
            }
        }
    }

    /// The `/advise` endpoint: parse, resolve the tier, answer (untraced;
    /// records the handler-local latency into the per-tier histograms —
    /// the daemon instead records end-to-end latency via
    /// [`AdviceService::record_advise_latency`]).
    pub fn advise(&self, body: &str) -> Response {
        self.advise_request(body, &TraceCtx::disabled(), 0, None)
    }

    /// `/advise` with trace context: records one span per stage into the
    /// request's trace. When `received_at` is `None` (embedded use, no
    /// surrounding connection loop) the handler also records its own
    /// latency into the per-tier histogram; when the daemon supplies the
    /// first-byte arrival time it records the fuller first-byte →
    /// response-written interval itself after the write.
    pub fn advise_request(
        &self,
        body: &str,
        ctx: &TraceCtx,
        tid: u32,
        received_at: Option<Instant>,
    ) -> Response {
        self.sink.counter("serve.advise").inc();
        let t0 = Instant::now();
        let (response, tier) = self.advise_inner(body, ctx, tid);
        if received_at.is_none() {
            let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
            match tier {
                Some(Tier::Cache) => self.lat_cache_us.record(us),
                Some(Tier::Advisor) => self.lat_advisor_us.record(us),
                None => {}
            }
        }
        response
    }

    /// Records one `/advise` answer's end-to-end latency (first byte →
    /// response written, microseconds) into the per-tier histogram. The
    /// daemon calls this after the response write so the histogram's
    /// quantiles are comparable to a client-side stopwatch; the tier is
    /// read back from the answer body.
    pub fn record_advise_latency(&self, response: &Response, us: u64) {
        if response.status != 200 {
            return;
        }
        if response.body.contains(r#""tier":"cache""#) {
            self.lat_cache_us.record(us);
        } else if response.body.contains(r#""tier":"advisor""#) {
            self.lat_advisor_us.record(us);
        }
    }

    fn advise_inner(&self, body: &str, ctx: &TraceCtx, tid: u32) -> (Response, Option<Tier>) {
        let query = match parse_query(body) {
            Ok(q) => q,
            Err(msg) => {
                self.bad_parse.inc();
                log_line(
                    Level::Debug,
                    "advise rejected",
                    &[("class", "\"parse\"".into())],
                );
                return (Response::error(400, &msg), None);
            }
        };
        let Some(chip) = self.chips.get(&query.chip) else {
            self.bad_chip.inc();
            log_line(
                Level::Debug,
                "advise rejected",
                &[("class", "\"chip\"".into())],
            );
            return (
                Response::error(
                    400,
                    &format!("unknown chip {:?}; presets: {PRESET_NAMES:?}", query.chip),
                ),
                None,
            );
        };
        let threads = query.threads.clamp(1, chip.spec.max_threads());
        let Some(workload) = resolve_workload(&query.workload, threads) else {
            self.bad_workload.inc();
            log_line(
                Level::Debug,
                "advise rejected",
                &[("class", "\"workload\"".into())],
            );
            return (
                Response::error(
                    400,
                    &format!(
                        "unknown workload {:?}; labels: {WORKLOAD_NAMES:?}",
                        query.workload
                    ),
                ),
                None,
            );
        };
        let key = query_key(&chip.fingerprint, &workload);

        // Store lookup span, named by its outcome.
        let lookup_start = Instant::now();
        let stored = self.store.get_entry(&key);
        let lookup_us = lookup_start.elapsed().as_secs_f64() * 1e6;
        ctx.record(
            if stored.is_some() {
                "store.hit"
            } else {
                "store.miss"
            },
            tid,
            self.traces.us_of(lookup_start),
            lookup_us,
        );
        let refined = stored.as_ref().is_some_and(|e| {
            e.meta
                .as_ref()
                .is_some_and(|m| m.tag.ends_with(REFINED_SUFFIX))
        });
        let (answer, tier) = if refined {
            self.sink.counter("serve.cache_tier").inc();
            let e = stored.expect("refined implies an entry");
            let answer = AdviseAnswer {
                chip: query.chip.clone(),
                workload: query.workload.clone(),
                threads,
                tier: "cache".into(),
                refined: true,
                layout: e.meta.expect("refined implies meta").spec,
                gbs: e.gbs,
                source: "measured".into(),
                key,
            };
            (answer, Tier::Cache)
        } else {
            self.sink.counter("serve.advisor_tier").inc();
            let predicted;
            {
                let _model_span = ctx.span("advisor.model", tid);
                predicted = surrogate_score(&chip.model, &workload, &chip.advisor_spec);
                if stored.is_none() {
                    // First sight of this query: store the placeholder
                    // unless a racing refinement landed in the meantime.
                    let placeholder = Entry {
                        gbs: predicted,
                        meta: Some(TrialMeta {
                            tag: format!("{}{ADVISOR_SUFFIX}", workload.tag()),
                            chip: chip.fingerprint.clone(),
                            spec: chip.advisor_spec.clone(),
                        }),
                    };
                    self.store
                        .update(&key, |cur| cur.is_none().then_some(placeholder));
                }
            }
            // Pending placeholder either way: make sure refinement is
            // queued (the queue dedupes by key). The enqueue span's id
            // rides on the job so the background refinement parents to it.
            {
                let enq_span = ctx.span("refine.enqueue", tid);
                self.refine.enqueue(
                    RefineJob::new(key.clone(), query.chip.clone(), workload.clone())
                        .traced(ctx.trace_id(), enq_span.id()),
                );
            }
            let answer = AdviseAnswer {
                chip: query.chip.clone(),
                workload: query.workload.clone(),
                threads,
                tier: "advisor".into(),
                refined: false,
                layout: chip.advisor_spec.clone(),
                gbs: predicted,
                source: "model-predicted".into(),
                key,
            };
            (answer, Tier::Advisor)
        };
        (Response::json(to_json_string(&answer)), Some(tier))
    }

    /// Runs one queued refinement job to completion: a `ModelPruned` (or,
    /// when the shared trial cache can seed it, `TransferSeeded`) autotune
    /// over the chip's offset sweep, then a monotone store upgrade. The
    /// trial cache is threaded through so later jobs reuse simulations and
    /// transfer seeds from earlier ones. Only refiner threads call this —
    /// never the request path.
    pub fn run_refinement(&self, job: &RefineJob, trials: ResultCache) -> ResultCache {
        let wait_us = job.enqueued_at.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.queue_wait_us.record(wait_us);
        // Rejoin the originating request's trace (no-op when the job was
        // untraced or the trace has been evicted).
        let ctx = self.traces.resume(job.trace_id, job.parent_span);
        let _ambient = ctx.enter();
        let Some(chip) = self.chips.get(&job.chip) else {
            return trials; // chip disappeared — impossible for presets
        };
        let tag = job.workload.tag();
        let strategy = if trials
            .transfer_seed(&tag, &chip.fingerprint, chip.spec.interleave_period())
            .is_some()
        {
            SearchStrategy::transfer_seeded()
        } else {
            SearchStrategy::model_pruned()
        };
        let space = if tag.starts_with("lbm") {
            ParamSpace::lbm_padding_sweep()
        } else {
            ParamSpace::offset_sweep_for(&chip.spec)
        };
        let run_span = ctx.span("refine.run", 0);
        let mut tuner = Tuner::new(job.workload.clone(), chip.config.clone(), space)
            .strategy(strategy)
            .cache(trials)
            .pool_threads(2);
        let report = tuner.run();
        let upgraded = Entry {
            gbs: report.best.gbs,
            meta: Some(TrialMeta {
                tag: format!("{tag}{REFINED_SUFFIX}"),
                chip: chip.fingerprint.clone(),
                spec: report.best.spec.clone(),
            }),
        };
        let best_gbs = upgraded.gbs;
        // Monotone upgrade: never replace a refined entry with a worse
        // one; always replace an advisor placeholder.
        {
            let _up_span = ctx.child_of(run_span.id()).span("store.upgrade", 0);
            self.store.update(&job.key, |cur| match cur {
                Some(e)
                    if e.gbs >= upgraded.gbs
                        && e.meta
                            .as_ref()
                            .is_some_and(|m| m.tag.ends_with(REFINED_SUFFIX)) =>
                {
                    None
                }
                _ => Some(upgraded),
            });
        }
        drop(run_span);
        self.refine.mark_completed();
        log_line(
            Level::Info,
            "refinement completed",
            &[
                ("key", t2opt_telemetry::logger::json_str(&job.key)),
                ("chip", t2opt_telemetry::logger::json_str(&job.chip)),
                ("gbs", format!("{best_gbs:.3}")),
                ("queue_wait_us", wait_us.to_string()),
            ],
        );
        tuner.into_cache()
    }

    /// Total rejected `/advise` bodies across all rejection classes —
    /// the backward-compatible `bad_requests` JSON field.
    fn bad_requests_total(&self) -> u64 {
        self.bad_parse.get() + self.bad_chip.get() + self.bad_workload.get()
    }

    /// The JSON `/metrics` document: serve counters, refinement queue
    /// state, and the store snapshot. Also publishes store counters into
    /// the telemetry sink. `bad_requests` is the sum of the per-class
    /// rejection counters, so the shape predates the class split.
    pub fn metrics_json(&self) -> String {
        self.store.metrics().publish(&self.sink);
        let counter = |name: &str| self.sink.counter(name).get();
        format!(
            r#"{{"serve":{{"requests":{},"advise":{},"cache_tier":{},"advisor_tier":{},"bad_requests":{}}},"refine":{},"store":{}}}"#,
            counter("serve.requests"),
            counter("serve.advise"),
            counter("serve.cache_tier"),
            counter("serve.advisor_tier"),
            self.bad_requests_total(),
            self.refine.snapshot_json(),
            to_json_string(&self.store.snapshot()),
        )
    }

    /// The Prometheus text-exposition `/metrics` document (format 0.0.4):
    /// every sink counter and histogram, the store's lock-wait histogram,
    /// and the refinement queue gauges. The `serve.bad_requests.*`
    /// counters render as one `serve_bad_requests_total` family labelled
    /// by rejection `class`.
    pub fn metrics_prometheus(&self) -> String {
        self.store.metrics().publish(&self.sink);
        let mut counters = self.sink.counter_values();
        counters.push(("refine.queue_depth".into(), self.refine.depth() as u64));
        counters.push(("refine.enqueued".into(), self.refine.enqueued()));
        counters.push(("refine.completed".into(), self.refine.completed()));
        counters.push(("refine.dropped".into(), self.refine.dropped()));
        let mut histograms = self.sink.histogram_values();
        histograms.push((
            "store.lock_wait_us".into(),
            self.store.metrics().lock_wait(),
        ));
        prometheus_text(&counters, &histograms, &[("serve.bad_requests.", "class")])
    }
}

/// Which answer tier served an `/advise` request (drives the per-tier
/// latency histograms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Cache,
    Advisor,
}

/// `/metrics` content negotiation: an explicit `?format=` wins, then an
/// `Accept` header mentioning `text/plain`; JSON is the default.
fn wants_prometheus(query: &str, accept: &str) -> bool {
    match query_param(query, "format") {
        Some("prometheus") | Some("openmetrics") => true,
        Some(_) => false, // explicit format (e.g. json) wins over Accept
        None => accept.contains("text/plain"),
    }
}

/// The value of `name` in a `k=v&k=v` query string, if present.
fn query_param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then_some(v)
    })
}

/// The store key for one `(chip, workload)` query. Keyed on the chip's
/// full configuration fingerprint — not its preset name — so an edited
/// custom spec can never alias a preset's stored results. The workload
/// already encodes its thread count and problem size, so distinct thread
/// counts get distinct keys.
pub fn query_key(chip_fingerprint: &str, workload: &Workload) -> String {
    t2opt_store::fnv1a64_hex(to_json_string(&(chip_fingerprint, workload)).as_bytes())
}

/// Maps a workload label to its CI-sized (smoke) workload: serve answers
/// must stay interactive, so refinement simulates the small variants.
pub fn resolve_workload(label: &str, threads: usize) -> Option<Workload> {
    Some(match label {
        "triad" => Workload::triad_smoke(1 << 12, threads),
        "jacobi" => Workload::jacobi_smoke(64, threads),
        "lbm-ijkv" => Workload::lbm_smoke(16, LbmLayout::IJKv, threads),
        "lbm-ivjk" => Workload::lbm_smoke(16, LbmLayout::IvJK, threads),
        "mix" => Workload::StreamMix {
            reads: 2,
            writes: 1,
            n: 1 << 12,
            threads,
            ntimes: 1,
            warmup: false,
        },
        _ => return None,
    })
}

fn parse_query(body: &str) -> Result<AdviseQuery, String> {
    let doc = parse_json(body).map_err(|e| format!("bad JSON body: {e}"))?;
    let obj = doc
        .as_object()
        .ok_or("body must be a JSON object like {\"chip\":…,\"workload\":…,\"threads\":…}")?;
    let field_str = |name: &str, default: &str| -> Result<String, String> {
        match obj.get(name) {
            None => Ok(default.to_string()),
            Some(v) => v
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("field {name:?} must be a string")),
        }
    };
    let threads = match obj.get("threads") {
        None => 16,
        Some(v) => {
            let t = v.as_f64().ok_or("field \"threads\" must be a number")?;
            if !(1.0..=4096.0).contains(&t) || t.fract() != 0.0 {
                return Err(format!(
                    "field \"threads\" must be an integer in [1, 4096], got {t}"
                ));
            }
            t as usize
        }
    };
    Ok(AdviseQuery {
        chip: field_str("chip", PRESET_NAMES[0])?,
        workload: field_str("workload", "triad")?,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2opt_core::json::JsonValue;

    fn service() -> AdviceService {
        AdviceService::new(Store::in_memory(2), 8)
    }

    fn parse_answer(resp: &Response) -> BTreeMap<String, JsonValue> {
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        parse_json(&resp.body).unwrap().as_object().unwrap().clone()
    }

    #[test]
    fn cold_advise_answers_from_advisor_tier_and_queues_refinement() {
        let svc = service();
        let resp = svc.advise(r#"{"chip":"ultrasparc-t2","workload":"triad","threads":32}"#);
        let obj = parse_answer(&resp);
        assert_eq!(obj["tier"].as_str(), Some("advisor"));
        assert_eq!(obj["source"].as_str(), Some("model-predicted"));
        assert!(obj["gbs"].as_f64().unwrap() > 0.0);
        assert_eq!(svc.refine_queue().depth(), 1);
        // Re-asking does not duplicate the pending job, and stays advisor
        // tier until a refiner upgrades the entry.
        let again = svc.advise(r#"{"chip":"ultrasparc-t2","workload":"triad","threads":32}"#);
        assert_eq!(parse_answer(&again)["tier"].as_str(), Some("advisor"));
        assert_eq!(svc.refine_queue().depth(), 1);
    }

    #[test]
    fn refinement_upgrades_the_entry_to_cache_tier() {
        let svc = service();
        let body = r#"{"chip":"budget-2mc","workload":"triad","threads":8}"#;
        svc.advise(body);
        let job = svc
            .refine_queue()
            .try_pop()
            .expect("advise must have queued a refinement");
        svc.run_refinement(&job, ResultCache::in_memory());
        let obj = parse_answer(&svc.advise(body));
        assert_eq!(obj["tier"].as_str(), Some("cache"));
        assert_eq!(obj["source"].as_str(), Some("measured"));
        assert!(matches!(obj["refined"], JsonValue::Bool(true)));
        assert_eq!(obj["key"].as_str().unwrap().len(), 16);
    }

    #[test]
    fn bad_requests_are_400_and_counted_by_class() {
        let svc = service();
        assert_eq!(svc.advise("{not json").status, 400);
        assert_eq!(svc.advise(r#"{"chip":"z80"}"#).status, 400);
        assert_eq!(svc.advise(r#"{"workload":"sort"}"#).status, 400);
        assert_eq!(svc.advise(r#"{"threads":0}"#).status, 400);
        let counter = |name: &str| svc.sink().counter(name).get();
        assert_eq!(
            counter("serve.bad_requests.parse"),
            2,
            "bad JSON + bad threads"
        );
        assert_eq!(counter("serve.bad_requests.chip"), 1);
        assert_eq!(counter("serve.bad_requests.workload"), 1);
        // The JSON document still reports the backward-compatible sum.
        let doc = parse_json(&svc.metrics_json()).unwrap();
        let serve = doc.as_object().unwrap()["serve"]
            .as_object()
            .unwrap()
            .clone();
        assert_eq!(serve["bad_requests"].as_f64(), Some(4.0));
    }

    #[test]
    fn unknown_endpoints_and_methods_have_their_own_counters() {
        let svc = service();
        assert_eq!(svc.handle("GET", "/nope", "").status, 404);
        assert_eq!(svc.handle("DELETE", "/advise", "").status, 405);
        assert_eq!(svc.sink().counter("serve.not_found").get(), 1);
        assert_eq!(svc.sink().counter("serve.bad_method").get(), 1);
        // Neither counts as a bad /advise body.
        assert_eq!(svc.bad_requests_total(), 0);
    }

    #[test]
    fn metrics_negotiates_prometheus_by_query_or_accept_header() {
        let svc = service();
        let ctx = TraceCtx::disabled();
        let json = svc.handle_request("GET", "/metrics", "", "", &ctx, 0, None);
        assert_eq!(json.content_type, "application/json");
        let by_query =
            svc.handle_request("GET", "/metrics?format=prometheus", "", "", &ctx, 0, None);
        assert_eq!(by_query.content_type, "text/plain; version=0.0.4");
        assert!(by_query
            .body
            .contains("# TYPE serve_requests_total counter"));
        let by_accept = svc.handle_request("GET", "/metrics", "", "text/plain", &ctx, 0, None);
        assert_eq!(by_accept.content_type, "text/plain; version=0.0.4");
        // An explicit format=json beats an Accept header asking for text.
        let explicit = svc.handle_request(
            "GET",
            "/metrics?format=json",
            "",
            "text/plain",
            &ctx,
            0,
            None,
        );
        assert_eq!(explicit.content_type, "application/json");
    }

    #[test]
    fn prometheus_exposition_carries_class_labels_and_histograms() {
        let svc = service();
        svc.advise("{not json");
        svc.advise(r#"{"chip":"z80"}"#);
        svc.advise(r#"{"workload":"triad","threads":8}"#);
        let text = svc.metrics_prometheus();
        assert!(
            text.contains(r#"serve_bad_requests_total{class="parse"} 1"#),
            "missing parse class in:\n{text}"
        );
        assert!(text.contains(r#"serve_bad_requests_total{class="chip"} 1"#));
        assert!(text.contains("# TYPE serve_latency_advisor_tier_us histogram"));
        assert!(
            text.contains("serve_latency_advisor_tier_us_count 1"),
            "advisor answer must land in the advisor-tier histogram:\n{text}"
        );
        assert!(text.contains("# TYPE store_lock_wait_us histogram"));
        assert!(text.contains("refine_enqueued_total 1"));
    }

    #[test]
    fn traced_advise_records_the_cold_miss_span_chain() {
        let svc = service();
        let traces = svc.traces();
        let ctx = traces.start("POST /advise");
        let resp = svc.handle_request(
            "POST",
            "/advise",
            r#"{"chip":"budget-2mc","workload":"triad","threads":8}"#,
            "",
            &ctx,
            3,
            None,
        );
        assert_eq!(resp.status, 200);
        // Run the queued refinement so the late spans join the trace.
        let job = svc.refine_queue().try_pop().expect("refinement queued");
        assert_eq!(job.trace_id, ctx.trace_id(), "job carries the trace");
        assert_ne!(job.parent_span, 0, "job parents to the enqueue span");
        svc.run_refinement(&job, ResultCache::in_memory());
        ctx.finish_root("request", 3);
        let t = &traces.recent(1)[0];
        let names: Vec<&str> = t.spans().iter().map(|s| s.name.as_str()).collect();
        for stage in [
            "store.miss",
            "advisor.model",
            "refine.enqueue",
            "refine.run",
            "store.upgrade",
            "request",
        ] {
            assert!(names.contains(&stage), "missing {stage} in {names:?}");
        }
        // store.upgrade is a child of refine.run, which parents to the
        // request's refine.enqueue span.
        let span_of = |n: &str| t.spans().iter().find(|s| s.name == n).unwrap();
        assert_eq!(span_of("refine.run").parent_id, job.parent_span);
        assert_eq!(
            span_of("store.upgrade").parent_id,
            span_of("refine.run").span_id
        );
        assert_eq!(span_of("refine.enqueue").span_id, job.parent_span);
    }

    #[test]
    fn trace_endpoint_returns_chrome_trace_json() {
        let svc = service();
        let traces = svc.traces();
        let ctx = traces.start("POST /advise");
        svc.handle_request(
            "POST",
            "/advise",
            r#"{"workload":"triad"}"#,
            "",
            &ctx,
            0,
            None,
        );
        ctx.finish_root("request", 0);
        let resp = svc.handle("GET", "/trace?n=5", "");
        assert_eq!(resp.status, 200);
        let doc = parse_json(&resp.body).unwrap();
        let events = doc.as_object().unwrap()["traceEvents"].as_array().unwrap();
        assert!(!events.is_empty());
        assert!(events.iter().any(|e| {
            e.as_object()
                .and_then(|o| o.get("name"))
                .and_then(|n| n.as_str())
                == Some("request")
        }));
    }

    #[test]
    fn disabled_tracing_records_no_traces_but_keeps_histograms() {
        let svc = service();
        svc.set_tracing(false);
        let traces = svc.traces();
        let ctx = traces.start("POST /advise");
        svc.handle_request(
            "POST",
            "/advise",
            r#"{"workload":"triad"}"#,
            "",
            &ctx,
            0,
            None,
        );
        ctx.finish_root("request", 0);
        assert!(traces.is_empty(), "disabled tracing must retain nothing");
        let snap = svc
            .sink()
            .histogram("serve.latency.advisor_tier_us")
            .snapshot();
        assert_eq!(snap.count, 1, "latency histograms are always on");
    }

    #[test]
    fn threads_clamp_to_the_chip_capacity() {
        let svc = service();
        let resp = svc.advise(r#"{"chip":"budget-2mc","workload":"triad","threads":4096}"#);
        let obj = parse_answer(&resp);
        let max = ChipSpec::preset("budget-2mc").unwrap().max_threads();
        assert_eq!(obj["threads"].as_f64(), Some(max as f64));
    }

    #[test]
    fn metrics_json_is_parseable_and_counts_tiers() {
        let svc = service();
        svc.advise(r#"{"workload":"triad"}"#);
        let doc = parse_json(&svc.metrics_json()).unwrap();
        let obj = doc.as_object().unwrap();
        let serve = obj["serve"].as_object().unwrap();
        assert_eq!(serve["advisor_tier"].as_f64(), Some(1.0));
        assert!(obj["refine"].as_object().is_some());
        assert!(obj["store"].as_object().unwrap()["shard_occupancy"]
            .as_array()
            .is_some());
    }
}
