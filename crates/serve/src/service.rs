//! The advice service: tiered answers to "what layout for workload W on
//! chip C with T threads?".
//!
//! Tier contract (the escalation path DESIGN §11 documents):
//!
//! 1. **Store hit, refined** — a background autotune already ran for this
//!    query; answer from the store (`tier: "cache"`, measured GB/s).
//! 2. **Store hit, advisor placeholder** — refinement is still pending;
//!    answer the closed-form advisor layout with the analytic model's
//!    predicted bandwidth (`tier: "advisor"`) and make sure a refinement
//!    job is queued.
//! 3. **Miss** — compute the advisor layout + model prediction
//!    immediately (microseconds, never a simulation), store it as a
//!    placeholder, and enqueue a background refinement that upgrades the
//!    entry when it lands.
//!
//! Every query is answered synchronously from closed-form math or the
//! store; simulations only ever run on refiner threads.

use crate::http::Response;
use crate::refine::{RefineJob, RefineQueue};
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::Arc;
use t2opt_autotune::surrogate::{model_for_chip, surrogate_score};
use t2opt_autotune::{ParamSpace, ResultCache, SearchStrategy, Tuner, Workload};
use t2opt_core::chip::{ChipSpec, PRESET_NAMES};
use t2opt_core::json::{parse_json, to_json_string};
use t2opt_core::layout::LayoutSpec;
use t2opt_kernels::lbm::LbmLayout;
use t2opt_model::PerfModel;
use t2opt_sim::ChipConfig;
use t2opt_store::{Entry, Store, TrialMeta};
use t2opt_telemetry::metrics::Sink;

/// Workload labels the service accepts.
pub const WORKLOAD_NAMES: [&str; 5] = ["triad", "jacobi", "lbm-ijkv", "lbm-ivjk", "mix"];

/// Tag suffix marking a store entry as an unrefined advisor placeholder.
const ADVISOR_SUFFIX: &str = "#advisor";
/// Tag suffix marking a store entry as an autotuned (refined) result.
const REFINED_SUFFIX: &str = "#refined";

/// Everything precomputed per chip preset at service construction, so the
/// hot path never rebuilds models or advisors.
struct ChipEntry {
    spec: ChipSpec,
    config: ChipConfig,
    fingerprint: String,
    model: PerfModel,
    advisor_spec: LayoutSpec,
}

/// One parsed `/advise` query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdviseQuery {
    /// Chip preset name (see [`PRESET_NAMES`]).
    pub chip: String,
    /// Workload label (see [`WORKLOAD_NAMES`]).
    pub workload: String,
    /// Requested thread count, clamped to the chip's hardware threads.
    pub threads: usize,
}

/// The JSON body answered to `/advise`.
#[derive(Debug, Clone, Serialize)]
pub struct AdviseAnswer {
    /// Chip preset the advice is for.
    pub chip: String,
    /// Workload label the advice is for.
    pub workload: String,
    /// Thread count actually used (after clamping).
    pub threads: usize,
    /// `"cache"` (refined, measured) or `"advisor"` (closed-form + model).
    pub tier: String,
    /// Whether a background autotune has upgraded this entry.
    pub refined: bool,
    /// The advised layout.
    pub layout: LayoutSpec,
    /// Bandwidth in GB/s: measured for `"cache"`, model-predicted for
    /// `"advisor"`.
    pub gbs: f64,
    /// `"measured"` or `"model-predicted"`.
    pub source: String,
    /// The store key for this query (stable across requests).
    pub key: String,
}

/// Shared, thread-safe service state behind every endpoint.
pub struct AdviceService {
    store: Store,
    chips: BTreeMap<String, ChipEntry>,
    refine: Arc<RefineQueue>,
    sink: Arc<Sink>,
}

impl AdviceService {
    /// Builds a service over `store` with a refinement queue of the given
    /// capacity, precomputing per-preset advisors and models.
    pub fn new(store: Store, queue_capacity: usize) -> Self {
        let chips = PRESET_NAMES
            .iter()
            .map(|&name| {
                let spec = ChipSpec::preset(name).expect("preset names are exhaustive");
                let config = ChipConfig::from_spec(&spec);
                ChipEntry {
                    fingerprint: ResultCache::chip_fingerprint(&config),
                    model: model_for_chip(&config),
                    advisor_spec: spec.advisor().suggest_layout(),
                    spec,
                    config,
                }
            })
            .map(|e| (e.spec.name.clone(), e))
            .collect();
        AdviceService {
            store,
            chips,
            refine: Arc::new(RefineQueue::new(queue_capacity)),
            sink: Sink::enabled(),
        }
    }

    /// The backing store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The background refinement queue.
    pub fn refine_queue(&self) -> Arc<RefineQueue> {
        Arc::clone(&self.refine)
    }

    /// The telemetry sink the service publishes its counters through.
    pub fn sink(&self) -> Arc<Sink> {
        Arc::clone(&self.sink)
    }

    /// Routes one HTTP request to its endpoint.
    pub fn handle(&self, method: &str, path: &str, body: &str) -> Response {
        self.sink.counter("serve.requests").inc();
        match (method, path) {
            ("POST", "/advise") => self.advise(body),
            ("GET", "/metrics") => Response::json(self.metrics_json()),
            ("GET", "/healthz") => Response::json(format!(
                r#"{{"status":"ok","entries":{},"shards":{}}}"#,
                self.store.len(),
                self.store.shard_count()
            )),
            ("GET" | "POST", _) => Response::error(404, &format!("no such endpoint {path}")),
            _ => Response::error(405, "use POST /advise, GET /metrics, GET /healthz"),
        }
    }

    /// The `/advise` endpoint: parse, resolve the tier, answer.
    pub fn advise(&self, body: &str) -> Response {
        self.sink.counter("serve.advise").inc();
        let query = match parse_query(body) {
            Ok(q) => q,
            Err(msg) => {
                self.sink.counter("serve.bad_requests").inc();
                return Response::error(400, &msg);
            }
        };
        let Some(chip) = self.chips.get(&query.chip) else {
            self.sink.counter("serve.bad_requests").inc();
            return Response::error(
                400,
                &format!("unknown chip {:?}; presets: {PRESET_NAMES:?}", query.chip),
            );
        };
        let threads = query.threads.clamp(1, chip.spec.max_threads());
        let Some(workload) = resolve_workload(&query.workload, threads) else {
            self.sink.counter("serve.bad_requests").inc();
            return Response::error(
                400,
                &format!(
                    "unknown workload {:?}; labels: {WORKLOAD_NAMES:?}",
                    query.workload
                ),
            );
        };
        let key = query_key(&query.chip, &workload);

        let stored = self.store.get_entry(&key);
        let refined = stored.as_ref().is_some_and(|e| {
            e.meta
                .as_ref()
                .is_some_and(|m| m.tag.ends_with(REFINED_SUFFIX))
        });
        let answer = if refined {
            self.sink.counter("serve.cache_tier").inc();
            let e = stored.expect("refined implies an entry");
            AdviseAnswer {
                chip: query.chip.clone(),
                workload: query.workload.clone(),
                threads,
                tier: "cache".into(),
                refined: true,
                layout: e.meta.expect("refined implies meta").spec,
                gbs: e.gbs,
                source: "measured".into(),
                key,
            }
        } else {
            self.sink.counter("serve.advisor_tier").inc();
            let predicted = surrogate_score(&chip.model, &workload, &chip.advisor_spec);
            if stored.is_none() {
                // First sight of this query: store the placeholder unless a
                // racing refinement landed in the meantime.
                let placeholder = Entry {
                    gbs: predicted,
                    meta: Some(TrialMeta {
                        tag: format!("{}{ADVISOR_SUFFIX}", workload.tag()),
                        chip: chip.fingerprint.clone(),
                        spec: chip.advisor_spec.clone(),
                    }),
                };
                self.store
                    .update(&key, |cur| cur.is_none().then_some(placeholder));
            }
            // Pending placeholder either way: make sure refinement is
            // queued (the queue dedupes by key).
            self.refine.enqueue(RefineJob {
                key: key.clone(),
                chip: query.chip.clone(),
                workload: workload.clone(),
            });
            AdviseAnswer {
                chip: query.chip.clone(),
                workload: query.workload.clone(),
                threads,
                tier: "advisor".into(),
                refined: false,
                layout: chip.advisor_spec.clone(),
                gbs: predicted,
                source: "model-predicted".into(),
                key,
            }
        };
        Response::json(to_json_string(&answer))
    }

    /// Runs one queued refinement job to completion: a `ModelPruned` (or,
    /// when the shared trial cache can seed it, `TransferSeeded`) autotune
    /// over the chip's offset sweep, then a monotone store upgrade. The
    /// trial cache is threaded through so later jobs reuse simulations and
    /// transfer seeds from earlier ones. Only refiner threads call this —
    /// never the request path.
    pub fn run_refinement(&self, job: &RefineJob, trials: ResultCache) -> ResultCache {
        let Some(chip) = self.chips.get(&job.chip) else {
            return trials; // chip disappeared — impossible for presets
        };
        let tag = job.workload.tag();
        let strategy = if trials
            .transfer_seed(&tag, &chip.fingerprint, chip.spec.interleave_period())
            .is_some()
        {
            SearchStrategy::transfer_seeded()
        } else {
            SearchStrategy::model_pruned()
        };
        let space = if tag.starts_with("lbm") {
            ParamSpace::lbm_padding_sweep()
        } else {
            ParamSpace::offset_sweep_for(&chip.spec)
        };
        let mut tuner = Tuner::new(job.workload.clone(), chip.config.clone(), space)
            .strategy(strategy)
            .cache(trials)
            .pool_threads(2);
        let report = tuner.run();
        let upgraded = Entry {
            gbs: report.best.gbs,
            meta: Some(TrialMeta {
                tag: format!("{tag}{REFINED_SUFFIX}"),
                chip: chip.fingerprint.clone(),
                spec: report.best.spec.clone(),
            }),
        };
        // Monotone upgrade: never replace a refined entry with a worse
        // one; always replace an advisor placeholder.
        self.store.update(&job.key, |cur| match cur {
            Some(e)
                if e.gbs >= upgraded.gbs
                    && e.meta
                        .as_ref()
                        .is_some_and(|m| m.tag.ends_with(REFINED_SUFFIX)) =>
            {
                None
            }
            _ => Some(upgraded),
        });
        self.refine.mark_completed();
        tuner.into_cache()
    }

    /// The `/metrics` document: serve counters, refinement queue state,
    /// and the store snapshot. Also publishes store counters into the
    /// telemetry sink.
    pub fn metrics_json(&self) -> String {
        self.store.metrics().publish(&self.sink);
        let counter = |name: &str| self.sink.counter(name).get();
        format!(
            r#"{{"serve":{{"requests":{},"advise":{},"cache_tier":{},"advisor_tier":{},"bad_requests":{}}},"refine":{},"store":{}}}"#,
            counter("serve.requests"),
            counter("serve.advise"),
            counter("serve.cache_tier"),
            counter("serve.advisor_tier"),
            counter("serve.bad_requests"),
            self.refine.snapshot_json(),
            to_json_string(&self.store.snapshot()),
        )
    }
}

/// The store key for one `(chip preset, workload)` query. The workload
/// already encodes its thread count and problem size, so distinct thread
/// counts get distinct keys.
pub fn query_key(chip_name: &str, workload: &Workload) -> String {
    t2opt_store::fnv1a64_hex(to_json_string(&(chip_name, workload)).as_bytes())
}

/// Maps a workload label to its CI-sized (smoke) workload: serve answers
/// must stay interactive, so refinement simulates the small variants.
pub fn resolve_workload(label: &str, threads: usize) -> Option<Workload> {
    Some(match label {
        "triad" => Workload::triad_smoke(1 << 12, threads),
        "jacobi" => Workload::jacobi_smoke(64, threads),
        "lbm-ijkv" => Workload::lbm_smoke(16, LbmLayout::IJKv, threads),
        "lbm-ivjk" => Workload::lbm_smoke(16, LbmLayout::IvJK, threads),
        "mix" => Workload::StreamMix {
            reads: 2,
            writes: 1,
            n: 1 << 12,
            threads,
            ntimes: 1,
            warmup: false,
        },
        _ => return None,
    })
}

fn parse_query(body: &str) -> Result<AdviseQuery, String> {
    let doc = parse_json(body).map_err(|e| format!("bad JSON body: {e}"))?;
    let obj = doc
        .as_object()
        .ok_or("body must be a JSON object like {\"chip\":…,\"workload\":…,\"threads\":…}")?;
    let field_str = |name: &str, default: &str| -> Result<String, String> {
        match obj.get(name) {
            None => Ok(default.to_string()),
            Some(v) => v
                .as_str()
                .map(str::to_owned)
                .ok_or_else(|| format!("field {name:?} must be a string")),
        }
    };
    let threads = match obj.get("threads") {
        None => 16,
        Some(v) => {
            let t = v.as_f64().ok_or("field \"threads\" must be a number")?;
            if !(1.0..=4096.0).contains(&t) || t.fract() != 0.0 {
                return Err(format!(
                    "field \"threads\" must be an integer in [1, 4096], got {t}"
                ));
            }
            t as usize
        }
    };
    Ok(AdviseQuery {
        chip: field_str("chip", PRESET_NAMES[0])?,
        workload: field_str("workload", "triad")?,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2opt_core::json::JsonValue;

    fn service() -> AdviceService {
        AdviceService::new(Store::in_memory(2), 8)
    }

    fn parse_answer(resp: &Response) -> BTreeMap<String, JsonValue> {
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        parse_json(&resp.body).unwrap().as_object().unwrap().clone()
    }

    #[test]
    fn cold_advise_answers_from_advisor_tier_and_queues_refinement() {
        let svc = service();
        let resp = svc.advise(r#"{"chip":"ultrasparc-t2","workload":"triad","threads":32}"#);
        let obj = parse_answer(&resp);
        assert_eq!(obj["tier"].as_str(), Some("advisor"));
        assert_eq!(obj["source"].as_str(), Some("model-predicted"));
        assert!(obj["gbs"].as_f64().unwrap() > 0.0);
        assert_eq!(svc.refine_queue().depth(), 1);
        // Re-asking does not duplicate the pending job, and stays advisor
        // tier until a refiner upgrades the entry.
        let again = svc.advise(r#"{"chip":"ultrasparc-t2","workload":"triad","threads":32}"#);
        assert_eq!(parse_answer(&again)["tier"].as_str(), Some("advisor"));
        assert_eq!(svc.refine_queue().depth(), 1);
    }

    #[test]
    fn refinement_upgrades_the_entry_to_cache_tier() {
        let svc = service();
        let body = r#"{"chip":"budget-2mc","workload":"triad","threads":8}"#;
        svc.advise(body);
        let job = svc
            .refine_queue()
            .try_pop()
            .expect("advise must have queued a refinement");
        svc.run_refinement(&job, ResultCache::in_memory());
        let obj = parse_answer(&svc.advise(body));
        assert_eq!(obj["tier"].as_str(), Some("cache"));
        assert_eq!(obj["source"].as_str(), Some("measured"));
        assert!(matches!(obj["refined"], JsonValue::Bool(true)));
        assert_eq!(obj["key"].as_str().unwrap().len(), 16);
    }

    #[test]
    fn bad_requests_are_400_with_the_valid_vocabulary() {
        let svc = service();
        assert_eq!(svc.advise("{not json").status, 400);
        assert_eq!(svc.advise(r#"{"chip":"z80"}"#).status, 400);
        assert_eq!(svc.advise(r#"{"workload":"sort"}"#).status, 400);
        assert_eq!(svc.advise(r#"{"threads":0}"#).status, 400);
        assert_eq!(svc.sink().counter("serve.bad_requests").get(), 4);
    }

    #[test]
    fn threads_clamp_to_the_chip_capacity() {
        let svc = service();
        let resp = svc.advise(r#"{"chip":"budget-2mc","workload":"triad","threads":4096}"#);
        let obj = parse_answer(&resp);
        let max = ChipSpec::preset("budget-2mc").unwrap().max_threads();
        assert_eq!(obj["threads"].as_f64(), Some(max as f64));
    }

    #[test]
    fn metrics_json_is_parseable_and_counts_tiers() {
        let svc = service();
        svc.advise(r#"{"workload":"triad"}"#);
        let doc = parse_json(&svc.metrics_json()).unwrap();
        let obj = doc.as_object().unwrap();
        let serve = obj["serve"].as_object().unwrap();
        assert_eq!(serve["advisor_tier"].as_f64(), Some(1.0));
        assert!(obj["refine"].as_object().is_some());
        assert!(obj["store"].as_object().unwrap()["shard_occupancy"]
            .as_array()
            .is_some());
    }
}
