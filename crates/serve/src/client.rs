//! Minimal HTTP/1.1 client over a persistent `TcpStream` — the other half
//! of the wire protocol in [`crate::http`], shared by the load generator,
//! the end-to-end tests, and CI smoke checks.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A keep-alive HTTP client bound to one server connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` with a generous read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client { stream })
    }

    /// Issues `GET path`, returning `(status, body)`.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, None, None)
    }

    /// Issues `GET path` with an `Accept` header (drives `/metrics`
    /// content negotiation), returning `(status, body)`.
    pub fn get_with_accept(&mut self, path: &str, accept: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, None, Some(accept))
    }

    /// Issues `POST path` with a JSON body, returning `(status, body)`.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, Some(body), None)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        accept: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let body = body.unwrap_or("");
        let accept_line = accept.map_or(String::new(), |a| format!("Accept: {a}\r\n"));
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: t2opt\r\n{accept_line}Content-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut bytes = Vec::new();
        let mut buf = [0u8; 4096];
        let head_end = loop {
            if let Some(p) = bytes.windows(4).position(|w| w == b"\r\n\r\n") {
                break p + 4;
            }
            match self.stream.read(&mut buf)? {
                0 => return Err(bad("connection closed before response head")),
                n => bytes.extend_from_slice(&buf[..n]),
            }
        };
        let head = String::from_utf8(bytes[..head_end].to_vec())
            .map_err(|_| bad("response head is not UTF-8"))?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("missing status code"))?;
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .ok_or_else(|| bad("missing Content-Length"))?;
        let mut body = bytes.split_off(head_end);
        while body.len() < content_length {
            match self.stream.read(&mut buf)? {
                0 => return Err(bad("connection closed mid-body")),
                n => body.extend_from_slice(&buf[..n]),
            }
        }
        body.truncate(content_length);
        String::from_utf8(body)
            .map(|b| (status, b))
            .map_err(|_| bad("response body is not UTF-8"))
    }
}
