//! Minimal HTTP/1.1 over `std::net`: just enough of the wire protocol for
//! a JSON service — request line, headers, `Content-Length` bodies,
//! keep-alive — with hard caps so a misbehaving client cannot balloon a
//! worker's memory.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Largest accepted head (request line + headers) in bytes.
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted request body in bytes.
const MAX_BODY: usize = 64 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, e.g. `/advise` (query string included).
    pub path: String,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// The `Accept` header value (empty when absent) — `/metrics` content
    /// negotiation.
    pub accept: String,
    /// When the request's first byte arrived, for the trace's backdated
    /// `parse` span. `None` only if construction bypassed `read_request`.
    pub first_byte: Option<Instant>,
}

/// Bytes of a not-yet-complete request carried between read attempts,
/// plus when its first byte arrived (the start of the `parse` span).
#[derive(Debug, Default)]
pub struct Partial {
    /// Raw bytes read so far.
    pub bytes: Vec<u8>,
    /// Arrival time of the first byte (`None` while no byte has arrived).
    pub first_byte: Option<Instant>,
}

/// Outcome of one read attempt on a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request arrived.
    Request(Request),
    /// The peer closed the connection cleanly (EOF before any bytes).
    Closed,
    /// The read timed out before a full request arrived; the bytes read so
    /// far are handed back so the caller can resume.
    TimedOut(Partial),
}

/// Reads one request from `stream`, resuming from a [`Partial`] carried
/// over from a previous timed-out attempt. Honors the stream's configured
/// read timeout: a timeout surfaces as [`ReadOutcome::TimedOut`] so the
/// caller can check its shutdown flag and resume.
pub fn read_request(stream: &mut TcpStream, mut pending: Partial) -> io::Result<ReadOutcome> {
    let mut buf = [0u8; 4096];
    loop {
        if let Some(head_end) = find_head_end(&pending.bytes) {
            return finish_request(stream, pending, head_end);
        }
        if pending.bytes.len() > MAX_HEAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head exceeds 16 KiB",
            ));
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                return if pending.bytes.is_empty() {
                    Ok(ReadOutcome::Closed)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-request",
                    ))
                };
            }
            Ok(n) => {
                if pending.first_byte.is_none() {
                    pending.first_byte = Some(Instant::now());
                }
                pending.bytes.extend_from_slice(&buf[..n]);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(ReadOutcome::TimedOut(pending));
            }
            Err(e) => return Err(e),
        }
    }
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
}

fn finish_request(
    stream: &mut TcpStream,
    pending: Partial,
    head_end: usize,
) -> io::Result<ReadOutcome> {
    let Partial {
        mut bytes,
        first_byte,
    } = pending;
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let head = String::from_utf8(bytes[..head_end].to_vec())
        .map_err(|_| bad("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let mut request_line = lines.next().unwrap_or("").split_whitespace();
    let method = request_line.next().ok_or_else(|| bad("missing method"))?;
    let path = request_line.next().ok_or_else(|| bad("missing path"))?;

    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    let mut accept = String::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| bad("bad Content-Length"))?;
            }
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            "accept" => accept = value.to_string(),
            _ => {}
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("request body exceeds 64 KiB"));
    }

    // Read whatever part of the body did not arrive with the head. A
    // timeout here keeps blocking until the body lands or the stream
    // errors: the client already committed to sending it.
    let mut body = bytes.split_off(head_end);
    while body.len() < content_length {
        let mut buf = [0u8; 4096];
        match stream.read(&mut buf) {
            Ok(0) => return Err(bad("connection closed mid-body")),
            Ok(n) => body.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| bad("request body is not UTF-8"))?;
    Ok(ReadOutcome::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
        accept,
        first_byte,
    }))
}

/// One HTTP response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// Status code (200, 400, 404, …).
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Self {
        Response {
            status: 200,
            body,
            content_type: "application/json",
        }
    }

    /// A `200 OK` response with an explicit content type (e.g. the
    /// Prometheus text exposition `text/plain; version=0.0.4`).
    pub fn text(body: String, content_type: &'static str) -> Self {
        Response {
            status: 200,
            body,
            content_type,
        }
    }

    /// An error response with a JSON `{"error": …}` body.
    pub fn error(status: u16, message: &str) -> Self {
        Response {
            status,
            body: format!(
                r#"{{"error":{}}}"#,
                t2opt_core::json::to_json_string(&message)
            ),
            content_type: "application/json",
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

/// Serializes and writes `response`, flagging whether the connection will
/// stay open afterwards.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pipe() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn parses_request_with_body_and_keep_alive() {
        let (mut client, mut server) = pipe();
        client
            .write_all(b"POST /advise HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .unwrap();
        let out = read_request(&mut server, Partial::default()).unwrap();
        let ReadOutcome::Request(req) = out else {
            panic!("expected a request, got {out:?}");
        };
        assert_eq!(
            (req.method.as_str(), req.path.as_str()),
            ("POST", "/advise")
        );
        assert_eq!(req.body, r#"{"a":1}"#);
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.first_byte.is_some(), "arrival time is captured");
        assert!(req.accept.is_empty(), "no Accept header sent");
    }

    #[test]
    fn accept_header_is_surfaced_for_negotiation() {
        let (mut client, mut server) = pipe();
        client
            .write_all(b"GET /metrics HTTP/1.1\r\nAccept: text/plain\r\n\r\n")
            .unwrap();
        let ReadOutcome::Request(req) = read_request(&mut server, Partial::default()).unwrap()
        else {
            panic!("expected a request");
        };
        assert_eq!(req.accept, "text/plain");
    }

    #[test]
    fn connection_close_clears_keep_alive_and_eof_is_clean() {
        let (mut client, mut server) = pipe();
        client
            .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let ReadOutcome::Request(req) = read_request(&mut server, Partial::default()).unwrap()
        else {
            panic!("expected a request");
        };
        assert!(!req.keep_alive);
        drop(client);
        assert!(matches!(
            read_request(&mut server, Partial::default()).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn timeout_hands_back_partial_bytes_for_resume() {
        let (mut client, mut server) = pipe();
        server
            .set_read_timeout(Some(std::time::Duration::from_millis(30)))
            .unwrap();
        client.write_all(b"GET /hea").unwrap();
        let ReadOutcome::TimedOut(partial) = read_request(&mut server, Partial::default()).unwrap()
        else {
            panic!("expected a timeout with partial bytes");
        };
        assert_eq!(partial.bytes, b"GET /hea");
        let arrived = partial.first_byte.expect("first byte stamped");
        client.write_all(b"lthz HTTP/1.1\r\n\r\n").unwrap();
        let ReadOutcome::Request(req) = read_request(&mut server, partial).unwrap() else {
            panic!("expected the resumed request");
        };
        assert_eq!(req.path, "/healthz");
        assert_eq!(
            req.first_byte,
            Some(arrived),
            "resume keeps the original arrival time"
        );
    }

    #[test]
    fn responses_carry_length_and_connection_headers() {
        let (mut client, mut server) = pipe();
        write_response(&mut server, &Response::json("{}".into()), false).unwrap();
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
