//! Bounded background-refinement queue with oldest-dropped semantics.
//!
//! `/advise` misses enqueue a [`RefineJob`]; refiner threads pop jobs and
//! run `AdviceService::run_refinement`. The queue is bounded: when a new
//! job would exceed capacity, the *oldest* pending job is dropped (it has
//! waited longest, so its requester has most likely moved on) and the
//! dropped-jobs counter ticks — surfaced in `/metrics` so load tests can
//! see refinement pressure.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};
use t2opt_autotune::Workload;

/// One pending refinement: the store key to upgrade plus the query that
/// produced it, carrying the originating request's trace context so the
/// background refinement's spans join that request's trace.
#[derive(Debug, Clone)]
pub struct RefineJob {
    /// Store key of the entry to upgrade.
    pub key: String,
    /// Chip preset name.
    pub chip: String,
    /// The (smoke-sized) workload to autotune.
    pub workload: Workload,
    /// Trace of the request that enqueued this job (0 = untraced).
    pub trace_id: u64,
    /// Span the refinement parents to (the request's `refine.enqueue`).
    pub parent_span: u64,
    /// When the job entered the queue — queue-wait = pop time − this.
    pub enqueued_at: Instant,
}

impl RefineJob {
    /// An untraced job enqueued now.
    pub fn new(key: impl Into<String>, chip: impl Into<String>, workload: Workload) -> Self {
        RefineJob {
            key: key.into(),
            chip: chip.into(),
            workload,
            trace_id: 0,
            parent_span: 0,
            enqueued_at: Instant::now(),
        }
    }

    /// Attaches the originating request's trace context.
    pub fn traced(mut self, trace_id: u64, parent_span: u64) -> Self {
        self.trace_id = trace_id;
        self.parent_span = parent_span;
        self
    }
}

/// The bounded job queue shared by request workers (producers) and
/// refiner threads (consumers).
#[derive(Debug)]
pub struct RefineQueue {
    jobs: Mutex<VecDeque<RefineJob>>,
    signal: Condvar,
    capacity: usize,
    enqueued: AtomicU64,
    dropped: AtomicU64,
    completed: AtomicU64,
}

impl RefineQueue {
    /// A queue holding at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "refinement queue needs room for one job");
        RefineQueue {
            jobs: Mutex::new(VecDeque::new()),
            signal: Condvar::new(),
            capacity,
            enqueued: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        }
    }

    /// Enqueues `job` unless one with the same key is already pending
    /// (dedup keeps a hot missed query from flooding the queue). If the
    /// queue is full the oldest pending job is dropped to make room.
    /// Returns whether the job was actually added.
    pub fn enqueue(&self, job: RefineJob) -> bool {
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        if jobs.iter().any(|j| j.key == job.key) {
            return false;
        }
        if jobs.len() == self.capacity {
            jobs.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        jobs.push_back(job);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        drop(jobs);
        self.signal.notify_one();
        true
    }

    /// Pops the oldest pending job, blocking until one arrives or
    /// `shutdown` flips. Returns `None` only on shutdown.
    pub fn pop(&self, shutdown: &AtomicBool) -> Option<RefineJob> {
        let mut jobs = self.jobs.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if shutdown.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(job) = jobs.pop_front() {
                return Some(job);
            }
            let (guard, _) = self
                .signal
                .wait_timeout(jobs, Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner);
            jobs = guard;
        }
    }

    /// Non-blocking pop, for tests and drain loops.
    pub fn try_pop(&self) -> Option<RefineJob> {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }

    /// Pending jobs right now.
    pub fn depth(&self) -> usize {
        self.jobs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Maximum pending jobs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs accepted since startup.
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Jobs evicted unrun because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Jobs whose refinement finished and upgraded (or confirmed) the
    /// store entry.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Records one finished refinement (called by the service).
    pub fn mark_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether every accepted job has either completed or been dropped —
    /// the "refinement settled" condition load generators poll for.
    pub fn settled(&self) -> bool {
        self.depth() == 0 && self.completed() + self.dropped() >= self.enqueued()
    }

    /// The `/metrics` fragment describing the queue.
    pub fn snapshot_json(&self) -> String {
        format!(
            r#"{{"depth":{},"capacity":{},"enqueued":{},"completed":{},"dropped":{},"settled":{}}}"#,
            self.depth(),
            self.capacity,
            self.enqueued(),
            self.completed(),
            self.dropped(),
            self.settled(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2opt_autotune::Workload;

    fn job(key: &str) -> RefineJob {
        RefineJob::new(key, "ultrasparc-t2", Workload::triad_smoke(1 << 10, 8))
    }

    #[test]
    fn overflow_drops_the_oldest_job_and_counts_it() {
        let q = RefineQueue::new(2);
        assert!(q.enqueue(job("a")));
        assert!(q.enqueue(job("b")));
        assert!(q.enqueue(job("c")), "overflow still accepts the new job");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.dropped(), 1);
        // "a" was oldest and must be gone; "b" then "c" remain in order.
        assert_eq!(q.try_pop().unwrap().key, "b");
        assert_eq!(q.try_pop().unwrap().key, "c");
    }

    #[test]
    fn duplicate_keys_are_not_enqueued_twice() {
        let q = RefineQueue::new(4);
        assert!(q.enqueue(job("a")));
        assert!(!q.enqueue(job("a")));
        assert_eq!((q.depth(), q.enqueued()), (1, 1));
    }

    #[test]
    fn pop_returns_none_on_shutdown() {
        let q = RefineQueue::new(4);
        let shutdown = AtomicBool::new(true);
        assert!(q.pop(&shutdown).is_none());
    }

    #[test]
    fn settled_tracks_the_full_lifecycle() {
        let q = RefineQueue::new(1);
        assert!(q.settled(), "an idle queue is settled");
        q.enqueue(job("a"));
        assert!(!q.settled());
        q.enqueue(job("b")); // drops "a"
        q.try_pop().unwrap();
        assert!(!q.settled(), "popped but not completed is in flight");
        q.mark_completed();
        assert!(q.settled());
    }
}
