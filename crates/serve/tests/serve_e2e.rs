//! End-to-end tests over real TCP: the full cold → refine → warm serve
//! path, metrics consistency, graceful shutdown with store flush, and
//! bounded-queue drop accounting.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use t2opt_core::json::{parse_json, JsonValue};
use t2opt_serve::{AdviceService, Client, Server, ServerConfig};
use t2opt_store::Store;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("t2opt-serve-e2e")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn obj(body: &str) -> std::collections::BTreeMap<String, JsonValue> {
    parse_json(body)
        .unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
        .as_object()
        .expect("top-level object")
        .clone()
}

/// Polls `/metrics` until the refinement queue settles (all accepted jobs
/// completed or dropped) or the deadline passes.
fn await_settled(client: &mut Client, deadline: Duration) {
    let start = Instant::now();
    loop {
        let (status, body) = client.get("/metrics").unwrap();
        assert_eq!(status, 200);
        let refine = obj(&body)["refine"].as_object().unwrap().clone();
        if matches!(refine["settled"], JsonValue::Bool(true)) {
            return;
        }
        assert!(
            start.elapsed() < deadline,
            "refinement did not settle within {deadline:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(200));
    }
}

#[test]
fn cold_advise_refines_to_cache_tier_and_survives_restart() {
    let dir = tmp_dir("lifecycle");
    let query = r#"{"chip":"budget-2mc","workload":"triad","threads":8}"#;

    // --- first server lifetime: cold query, refinement, clean shutdown
    let store = Store::open_dir(&dir, 4).unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        AdviceService::new(store, 16),
        ServerConfig {
            workers: 2,
            refiners: 1,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let serving = std::thread::spawn(move || server.serve().unwrap());

    let mut client = Client::connect(addr).unwrap();
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(obj(&body)["status"].as_str(), Some("ok"));

    let (status, body) = client.post("/advise", query).unwrap();
    assert_eq!(status, 200, "cold advise failed: {body}");
    let cold = obj(&body);
    assert_eq!(
        cold["tier"].as_str(),
        Some("advisor"),
        "cold query must be advisor tier"
    );
    assert_eq!(cold["source"].as_str(), Some("model-predicted"));

    await_settled(&mut client, Duration::from_secs(120));

    let (_, body) = client.post("/advise", query).unwrap();
    let warm = obj(&body);
    assert_eq!(
        warm["tier"].as_str(),
        Some("cache"),
        "settled query must be cache tier"
    );
    assert!(matches!(warm["refined"], JsonValue::Bool(true)));
    assert_eq!(
        warm["key"].as_str(),
        cold["key"].as_str(),
        "same query, same key"
    );

    // Metrics consistency: one advisor-tier answer, one cache-tier answer.
    let (_, body) = client.get("/metrics").unwrap();
    let metrics = obj(&body);
    let serve = metrics["serve"].as_object().unwrap();
    assert_eq!(serve["advisor_tier"].as_f64(), Some(1.0));
    assert_eq!(serve["cache_tier"].as_f64(), Some(1.0));
    let refine = metrics["refine"].as_object().unwrap();
    assert_eq!(refine["completed"].as_f64(), Some(1.0));
    assert_eq!(refine["dropped"].as_f64(), Some(0.0));

    let (status, _) = client.post("/shutdown", "").unwrap();
    assert_eq!(status, 200);
    serving.join().expect("server thread panicked");

    // --- second lifetime: the refined entry was flushed and reloads
    let store = Store::open_dir(&dir, 4).unwrap();
    assert!(!store.is_empty(), "shutdown must flush the refined entry");
    let server = Server::bind(
        "127.0.0.1:0",
        AdviceService::new(store, 16),
        ServerConfig {
            workers: 2,
            refiners: 0,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.serve().unwrap());
    let mut client = Client::connect(addr).unwrap();
    let (_, body) = client.post("/advise", query).unwrap();
    assert_eq!(
        obj(&body)["tier"].as_str(),
        Some("cache"),
        "a restarted server must answer from the durable store"
    );
    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    serving.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bounded_queue_drops_oldest_and_reports_it() {
    // No refiners: jobs pile up in a 2-slot queue, so the third distinct
    // query must evict the oldest pending job.
    let server = Server::bind(
        "127.0.0.1:0",
        AdviceService::new(Store::in_memory(2), 2),
        ServerConfig {
            workers: 2,
            refiners: 0,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.serve().unwrap());

    let mut client = Client::connect(addr).unwrap();
    for workload in ["triad", "jacobi", "mix"] {
        let (status, _) = client
            .post("/advise", &format!(r#"{{"workload":"{workload}"}}"#))
            .unwrap();
        assert_eq!(status, 200);
    }
    let (_, body) = client.get("/metrics").unwrap();
    let refine = obj(&body)["refine"].as_object().unwrap().clone();
    assert_eq!(refine["enqueued"].as_f64(), Some(3.0));
    assert_eq!(refine["dropped"].as_f64(), Some(1.0));
    assert_eq!(refine["depth"].as_f64(), Some(2.0));

    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    serving.join().unwrap();
}

#[test]
fn trace_endpoint_exports_the_cold_miss_chain_over_tcp() {
    let server = Server::bind(
        "127.0.0.1:0",
        AdviceService::new(Store::in_memory(2), 4),
        ServerConfig {
            workers: 2,
            refiners: 1,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let serving = std::thread::spawn(move || server.serve().unwrap());

    let mut client = Client::connect(addr).unwrap();
    let (status, body) = client.post("/advise", r#"{"workload":"triad"}"#).unwrap();
    assert_eq!(status, 200);
    assert_eq!(obj(&body)["tier"].as_str(), Some("advisor"));
    await_settled(&mut client, Duration::from_secs(120));

    let (status, trace) = client.get("/trace?n=64").unwrap();
    assert_eq!(status, 200);
    let doc = obj(&trace);
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());
    // The cold advise's full chain is present: connection-level spans, the
    // service tiers, and the late refinement spans resumed by trace id.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.as_object()?.get("name")?.as_str())
        .collect();
    for expected in [
        "accept",
        "parse",
        "store.miss",
        "advisor.model",
        "refine.enqueue",
        "refine.run",
        "store.upgrade",
        "request",
    ] {
        assert!(
            names.contains(&expected),
            "span {expected:?} missing from /trace export: {names:?}"
        );
    }

    let (status, _) = client.post("/shutdown", "").unwrap();
    assert_eq!(status, 200);
    serving.join().unwrap();
}

#[test]
fn metrics_negotiates_formats_and_scrapes_are_idempotent() {
    let server = Server::bind(
        "127.0.0.1:0",
        AdviceService::new(Store::in_memory(2), 4),
        ServerConfig {
            workers: 2,
            refiners: 0,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.serve().unwrap());

    let mut client = Client::connect(addr).unwrap();
    // Two identical advises: one store miss, then one more miss (the
    // placeholder is advisor-tier until refinement, which is disabled).
    for _ in 0..2 {
        let (status, _) = client.post("/advise", r#"{"workload":"mix"}"#).unwrap();
        assert_eq!(status, 200);
    }

    // Default is JSON; `?format=prometheus` and the Accept header both
    // negotiate the text exposition.
    let (_, json_body) = client.get("/metrics").unwrap();
    assert!(json_body.starts_with('{'), "default /metrics is JSON");
    let (_, by_query) = client.get("/metrics?format=prometheus").unwrap();
    assert!(
        by_query.starts_with("# HELP"),
        "query param negotiates text"
    );
    let (_, by_accept) = client.get_with_accept("/metrics", "text/plain").unwrap();
    assert!(by_accept.starts_with("# HELP"), "Accept negotiates text");
    assert!(by_query.contains("# TYPE serve_advise_total counter"));
    assert!(by_query.contains("serve_latency_advisor_tier_us_bucket{le=\"+Inf\"}"));

    // Store counters publish set-to-current into the sink at scrape time:
    // back-to-back scrapes with no traffic in between must report the
    // same values, in both formats (the regression was each scrape
    // re-adding the store's totals).
    let prom_line = |text: &str, name: &str| -> String {
        text.lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("{name} missing from scrape"))
            .to_string()
    };
    let first = client.get("/metrics?format=prometheus").unwrap().1;
    for _ in 0..3 {
        let again = client.get("/metrics?format=prometheus").unwrap().1;
        for name in ["store_hits_total ", "store_misses_total "] {
            assert_eq!(
                prom_line(&first, name),
                prom_line(&again, name),
                "idle rescrape changed {name}"
            );
        }
    }
    let json_store = obj(&client.get("/metrics").unwrap().1)["store"]
        .as_object()
        .unwrap()
        .clone();
    let prom_misses: f64 = prom_line(&first, "store_misses_total ")
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(
        json_store["misses"].as_f64(),
        Some(prom_misses),
        "JSON and Prometheus scrapes must agree on store counters"
    );

    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    serving.join().unwrap();
}

#[test]
fn unknown_paths_and_bad_bodies_get_http_errors() {
    let server = Server::bind(
        "127.0.0.1:0",
        AdviceService::new(Store::in_memory(1), 2),
        ServerConfig {
            workers: 1,
            refiners: 0,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.serve().unwrap());

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.get("/nope").unwrap().0, 404);
    assert_eq!(client.post("/advise", "{broken").unwrap().0, 400);
    assert_eq!(
        client.post("/advise", r#"{"chip":"z80"}"#).unwrap().0,
        400,
        "unknown chip preset must be a client error"
    );
    // The connection survives error responses (keep-alive).
    assert_eq!(client.get("/healthz").unwrap().0, 200);

    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    serving.join().unwrap();
}
