//! End-to-end tests over real TCP: the full cold → refine → warm serve
//! path, metrics consistency, graceful shutdown with store flush, and
//! bounded-queue drop accounting.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use t2opt_core::json::{parse_json, JsonValue};
use t2opt_serve::{AdviceService, Client, Server, ServerConfig};
use t2opt_store::Store;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("t2opt-serve-e2e")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn obj(body: &str) -> std::collections::BTreeMap<String, JsonValue> {
    parse_json(body)
        .unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
        .as_object()
        .expect("top-level object")
        .clone()
}

/// Polls `/metrics` until the refinement queue settles (all accepted jobs
/// completed or dropped) or the deadline passes.
fn await_settled(client: &mut Client, deadline: Duration) {
    let start = Instant::now();
    loop {
        let (status, body) = client.get("/metrics").unwrap();
        assert_eq!(status, 200);
        let refine = obj(&body)["refine"].as_object().unwrap().clone();
        if matches!(refine["settled"], JsonValue::Bool(true)) {
            return;
        }
        assert!(
            start.elapsed() < deadline,
            "refinement did not settle within {deadline:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(200));
    }
}

#[test]
fn cold_advise_refines_to_cache_tier_and_survives_restart() {
    let dir = tmp_dir("lifecycle");
    let query = r#"{"chip":"budget-2mc","workload":"triad","threads":8}"#;

    // --- first server lifetime: cold query, refinement, clean shutdown
    let store = Store::open_dir(&dir, 4).unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        AdviceService::new(store, 16),
        ServerConfig {
            workers: 2,
            refiners: 1,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let serving = std::thread::spawn(move || server.serve().unwrap());

    let mut client = Client::connect(addr).unwrap();
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(obj(&body)["status"].as_str(), Some("ok"));

    let (status, body) = client.post("/advise", query).unwrap();
    assert_eq!(status, 200, "cold advise failed: {body}");
    let cold = obj(&body);
    assert_eq!(
        cold["tier"].as_str(),
        Some("advisor"),
        "cold query must be advisor tier"
    );
    assert_eq!(cold["source"].as_str(), Some("model-predicted"));

    await_settled(&mut client, Duration::from_secs(120));

    let (_, body) = client.post("/advise", query).unwrap();
    let warm = obj(&body);
    assert_eq!(
        warm["tier"].as_str(),
        Some("cache"),
        "settled query must be cache tier"
    );
    assert!(matches!(warm["refined"], JsonValue::Bool(true)));
    assert_eq!(
        warm["key"].as_str(),
        cold["key"].as_str(),
        "same query, same key"
    );

    // Metrics consistency: one advisor-tier answer, one cache-tier answer.
    let (_, body) = client.get("/metrics").unwrap();
    let metrics = obj(&body);
    let serve = metrics["serve"].as_object().unwrap();
    assert_eq!(serve["advisor_tier"].as_f64(), Some(1.0));
    assert_eq!(serve["cache_tier"].as_f64(), Some(1.0));
    let refine = metrics["refine"].as_object().unwrap();
    assert_eq!(refine["completed"].as_f64(), Some(1.0));
    assert_eq!(refine["dropped"].as_f64(), Some(0.0));

    let (status, _) = client.post("/shutdown", "").unwrap();
    assert_eq!(status, 200);
    serving.join().expect("server thread panicked");

    // --- second lifetime: the refined entry was flushed and reloads
    let store = Store::open_dir(&dir, 4).unwrap();
    assert!(!store.is_empty(), "shutdown must flush the refined entry");
    let server = Server::bind(
        "127.0.0.1:0",
        AdviceService::new(store, 16),
        ServerConfig {
            workers: 2,
            refiners: 0,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.serve().unwrap());
    let mut client = Client::connect(addr).unwrap();
    let (_, body) = client.post("/advise", query).unwrap();
    assert_eq!(
        obj(&body)["tier"].as_str(),
        Some("cache"),
        "a restarted server must answer from the durable store"
    );
    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    serving.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bounded_queue_drops_oldest_and_reports_it() {
    // No refiners: jobs pile up in a 2-slot queue, so the third distinct
    // query must evict the oldest pending job.
    let server = Server::bind(
        "127.0.0.1:0",
        AdviceService::new(Store::in_memory(2), 2),
        ServerConfig {
            workers: 2,
            refiners: 0,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.serve().unwrap());

    let mut client = Client::connect(addr).unwrap();
    for workload in ["triad", "jacobi", "mix"] {
        let (status, _) = client
            .post("/advise", &format!(r#"{{"workload":"{workload}"}}"#))
            .unwrap();
        assert_eq!(status, 200);
    }
    let (_, body) = client.get("/metrics").unwrap();
    let refine = obj(&body)["refine"].as_object().unwrap().clone();
    assert_eq!(refine["enqueued"].as_f64(), Some(3.0));
    assert_eq!(refine["dropped"].as_f64(), Some(1.0));
    assert_eq!(refine["depth"].as_f64(), Some(2.0));

    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    serving.join().unwrap();
}

#[test]
fn unknown_paths_and_bad_bodies_get_http_errors() {
    let server = Server::bind(
        "127.0.0.1:0",
        AdviceService::new(Store::in_memory(1), 2),
        ServerConfig {
            workers: 1,
            refiners: 0,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let serving = std::thread::spawn(move || server.serve().unwrap());

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.get("/nope").unwrap().0, 404);
    assert_eq!(client.post("/advise", "{broken").unwrap().0, 400);
    assert_eq!(
        client.post("/advise", r#"{"chip":"z80"}"#).unwrap().0,
        400,
        "unknown chip preset must be a client error"
    );
    // The connection survives error responses (keep-alive).
    assert_eq!(client.get("/healthz").unwrap().0, 200);

    shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
    serving.join().unwrap();
}
