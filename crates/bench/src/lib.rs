//! # t2opt-bench
//!
//! Figure-regeneration harness for Hager, Zeiser & Wellein (2008): shared
//! infrastructure (CLI parsing, table/JSON output, experiment drivers) for
//! the `fig2_stream` … `fig7_lbm` binaries and the `ablation_*` studies.
//!
//! Each binary prints the same series the corresponding paper figure plots
//! (bandwidth vs offset, MLUPs/s vs domain size, …) as an aligned text
//! table, and optionally dumps JSON via `--json <path>`. Use `--full` for
//! paper-scale problem sizes (slower) — the defaults are scaled down but
//! preserve every qualitative feature (the aliasing period depends on
//! addresses mod 512 B, not on total size, as long as arrays dwarf the
//! 4 MB L2).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cli;
pub mod experiments;
pub mod expfmt;
pub mod output;

pub use cli::Args;
pub use output::{to_json_string, write_json, Table};

use t2opt_core::chip::{ChipSpec, PRESET_NAMES};
use t2opt_sim::policy::{PolicyKind, POLICY_NAMES};
use t2opt_sim::ChipConfig;

/// Resolves the `--policy <name>` flag into a queue-arbitration policy.
/// Defaults to `fifo` (the calibrated T2 discipline); accepts the
/// registry names with an optional `:N` starvation-cap suffix (e.g.
/// `fr-fcfs:16`). An unknown spelling exits with the listing (user error,
/// not a panic).
pub fn policy_from_args(args: &Args) -> PolicyKind {
    let raw = args.get_str("policy").unwrap_or("fifo");
    match PolicyKind::parse(raw) {
        Some(kind) => kind,
        None => {
            eprintln!(
                "unknown queue policy {raw:?}; available: {} (optionally with :<cap>)",
                POLICY_NAMES.join(", ")
            );
            std::process::exit(2);
        }
    }
}

/// Prints the chip-preset registry with each preset's geometry — name,
/// controllers (grouped by socket on NUMA presets), cores × threads, and
/// the controller-aliasing period — then exits. Backs the `--list-chips`
/// flag on the figure and tuner binaries.
pub fn list_chips() -> ! {
    println!("available chip presets:");
    for name in PRESET_NAMES {
        let spec = ChipSpec::preset(name).expect("registry names resolve");
        let sockets = spec.n_sockets();
        let mcs = if sockets > 1 {
            format!(
                "{} MCs ({} sockets x {})",
                spec.num_controllers(),
                sockets,
                spec.mcs_per_socket()
            )
        } else {
            format!("{} MCs", spec.num_controllers())
        };
        let mut line = format!(
            "  {:<16} {mcs}, {} cores x {} threads, period {} B",
            spec.name,
            spec.n_cores,
            spec.threads_per_core,
            spec.interleave_period()
        );
        if sockets > 1 {
            line.push_str(&format!(
                " (local {} B), remote +{} cyc read / +{} cyc write, link {} cyc/line",
                spec.local_period(),
                spec.sockets.remote_read_extra,
                spec.sockets.remote_write_extra,
                spec.sockets.link_cycles_per_line
            ));
        }
        println!("{line}");
    }
    std::process::exit(0);
}

/// Resolves the `--chip <preset>` and `--policy <name>` flags into a chip
/// spec and its simulator configuration. Defaults to `ultrasparc-t2` with
/// FIFO controllers; an unknown preset exits with the registry listing
/// (user error, not a panic).
pub fn chip_from_args(args: &Args) -> (ChipSpec, ChipConfig) {
    let name = args.get_str("chip").unwrap_or(PRESET_NAMES[0]);
    match ChipSpec::preset(name) {
        Some(spec) => {
            let mut config = ChipConfig::from_spec(&spec);
            config.policy = policy_from_args(args);
            (spec, config)
        }
        None => {
            eprintln!(
                "unknown chip preset {name:?}; available: {}",
                PRESET_NAMES.join(", ")
            );
            std::process::exit(2);
        }
    }
}
