//! # t2opt-bench
//!
//! Figure-regeneration harness for Hager, Zeiser & Wellein (2008): shared
//! infrastructure (CLI parsing, table/JSON output, experiment drivers) for
//! the `fig2_stream` … `fig7_lbm` binaries and the `ablation_*` studies.
//!
//! Each binary prints the same series the corresponding paper figure plots
//! (bandwidth vs offset, MLUPs/s vs domain size, …) as an aligned text
//! table, and optionally dumps JSON via `--json <path>`. Use `--full` for
//! paper-scale problem sizes (slower) — the defaults are scaled down but
//! preserve every qualitative feature (the aliasing period depends on
//! addresses mod 512 B, not on total size, as long as arrays dwarf the
//! 4 MB L2).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cli;
pub mod experiments;
pub mod expfmt;
pub mod output;

pub use cli::Args;
pub use output::{to_json_string, write_json, Table};

use t2opt_core::chip::{ChipSpec, PRESET_NAMES};
use t2opt_sim::ChipConfig;

/// Resolves the `--chip <preset>` flag into a chip spec and its simulator
/// configuration. Defaults to `ultrasparc-t2`; an unknown preset exits
/// with the registry listing (user error, not a panic).
pub fn chip_from_args(args: &Args) -> (ChipSpec, ChipConfig) {
    let name = args.get_str("chip").unwrap_or(PRESET_NAMES[0]);
    match ChipSpec::preset(name) {
        Some(spec) => {
            let config = ChipConfig::from_spec(&spec);
            (spec, config)
        }
        None => {
            eprintln!(
                "unknown chip preset {name:?}; available: {}",
                PRESET_NAMES.join(", ")
            );
            std::process::exit(2);
        }
    }
}
