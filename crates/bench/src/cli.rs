//! A tiny dependency-free command-line flag parser for the figure
//! binaries.
//!
//! Supports `--key value` pairs and bare `--flag` switches. Unknown keys
//! are collected so binaries can reject typos.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses from an iterator of raw arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, String> {
        let mut args = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument: {tok}"));
            };
            if key.is_empty() {
                return Err("empty flag name".into());
            }
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = it.next().unwrap();
                    args.values.insert(key.to_string(), value);
                }
                _ => args.flags.push(key.to_string()),
            }
        }
        Ok(args)
    }

    /// Parses the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// A `--key value` as a parsed type, or `default` when absent.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => default,
            Some(raw) => match raw.parse() {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("error: --{key} {raw}: {e}");
                    std::process::exit(2);
                }
            },
        }
    }

    /// The raw string value of `--key`, if present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Whether a bare `--flag` was passed.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Comma-separated list of a parsed type (`--threads 8,16,32,64`), or
    /// `default` when absent.
    pub fn get_list<T>(&self, key: &str, default: &[T]) -> Vec<T>
    where
        T: std::str::FromStr + Clone,
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => default.to_vec(),
            Some(raw) => raw
                .split(',')
                .map(|part| match part.trim().parse() {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("error: --{key} element {part}: {e}");
                        std::process::exit(2);
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn values_and_flags() {
        let a = parse(&["--n", "1024", "--quick", "--out", "x.json"]);
        assert_eq!(a.get::<usize>("n", 0), 1024);
        assert_eq!(a.get_str("out"), Some("x.json"));
        assert!(a.has_flag("quick"));
        assert!(!a.has_flag("slow"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&[]);
        assert_eq!(a.get::<usize>("n", 7), 7);
        assert_eq!(a.get_list::<u32>("threads", &[8, 64]), vec![8, 64]);
    }

    #[test]
    fn lists_parse() {
        let a = parse(&["--threads", "8,16, 32"]);
        assert_eq!(a.get_list::<u32>("threads", &[]), vec![8, 16, 32]);
    }

    #[test]
    fn positional_rejected() {
        assert!(Args::parse(vec!["oops".to_string()]).is_err());
    }
}
