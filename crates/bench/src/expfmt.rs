//! Validators for the serving stack's exposition formats: the Prometheus
//! text format (0.0.4) emitted by `GET /metrics?format=prometheus` and
//! the Chrome-trace JSON emitted by `GET /trace`. CI pipes live scrapes
//! through these (via the `expfmt_check` binary) so a malformed rename or
//! a broken label escape fails the build instead of the dashboard.

use std::collections::BTreeMap;
use t2opt_core::json::{parse_json, JsonValue};

/// What a successful Prometheus check saw — useful for asserting that
/// expected families are present.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct PromSummary {
    /// `# TYPE` declarations by family name.
    pub types: BTreeMap<String, String>,
    /// Total sample lines.
    pub samples: usize,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let first_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    first_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    let first_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    first_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Splits `name{labels} value` into its parts; labels may be absent.
/// Returns `(name, labels, value)` where labels maps name → unescaped
/// value. Errs on malformed label syntax or bad escapes.
fn parse_sample(line: &str) -> Result<(String, BTreeMap<String, String>, f64), String> {
    let err = |msg: &str| format!("{msg}: {line:?}");
    let (head, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| err("sample line has no value"))?;
    let value: f64 = value
        .parse()
        .map_err(|_| err("sample value is not a number"))?;
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), BTreeMap::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| err("unterminated label set"))?;
            (name.to_string(), parse_labels(body).map_err(|e| err(&e))?)
        }
    };
    if !valid_metric_name(&name) {
        return Err(err("invalid metric name"));
    }
    Ok((name, labels, value))
}

/// Parses `k="v",k="v"` with the 0.0.4 escapes (`\\`, `\"`, `\n`) in
/// values. Returns the unescaped map.
fn parse_labels(body: &str) -> Result<BTreeMap<String, String>, String> {
    let mut labels = BTreeMap::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut name = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            name.push(c);
        }
        if !valid_label_name(&name) {
            return Err(format!("invalid label name {name:?}"));
        }
        if chars.next() != Some('"') {
            return Err("label value must be quoted".into());
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated label value".into()),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape \\{other:?} in label value")),
                },
                Some(c) => value.push(c),
            }
        }
        labels.insert(name, value);
        match chars.next() {
            None => return Ok(labels),
            Some(',') => continue,
            Some(c) => return Err(format!("expected ',' between labels, got {c:?}")),
        }
    }
}

/// The family a sample belongs to: its name minus the histogram/summary
/// suffixes (`_bucket`, `_sum`, `_count`).
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

/// Validates a Prometheus text-exposition (0.0.4) document:
///
/// - metric and label names use the legal charset, label values use only
///   the legal escapes,
/// - every sample's family has a `# TYPE` declaration before it,
/// - histogram families have monotone non-decreasing cumulative `le`
///   buckets ending in `+Inf`, with `_count` equal to the `+Inf` bucket
///   and a `_sum` sample present.
pub fn check_prometheus(text: &str) -> Result<PromSummary, String> {
    /// Per-family histogram check state: le bounds seen in order, the
    /// `+Inf` cumulative value, the `_count` value, and whether a `_sum`
    /// sample appeared.
    type HistState = (Vec<f64>, Option<f64>, Option<f64>, bool);
    let mut summary = PromSummary::default();
    let mut hist: BTreeMap<String, HistState> = BTreeMap::new();
    let mut hist_cumulative: BTreeMap<String, f64> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| at("malformed # TYPE".into()))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(at(format!("unknown metric type {kind:?}")));
            }
            if summary
                .types
                .insert(name.to_string(), kind.to_string())
                .is_some()
            {
                return Err(at(format!("duplicate # TYPE for {name}")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // # HELP or comment
        }
        let (name, labels, value) = parse_sample(line).map_err(at)?;
        summary.samples += 1;
        let family = family_of(&name).to_string();
        let kind = summary
            .types
            .get(&family)
            .ok_or_else(|| at(format!("sample {name} precedes its # TYPE")))?
            .clone();
        if kind == "histogram" {
            let entry = hist.entry(family.clone()).or_default();
            if name.ends_with("_bucket") {
                let le = labels
                    .get("le")
                    .ok_or_else(|| at("histogram bucket without le label".into()))?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse()
                        .map_err(|_| at(format!("unparseable le bound {le:?}")))?
                };
                if entry.0.last().is_some_and(|&prev| bound <= prev) {
                    return Err(at(format!("le bounds not increasing at {le:?}")));
                }
                let prev_cum = hist_cumulative.get(&family).copied().unwrap_or(0.0);
                if value < prev_cum {
                    return Err(at(format!("cumulative bucket count decreased at le={le}")));
                }
                hist_cumulative.insert(family.clone(), value);
                entry.0.push(bound);
                if bound.is_infinite() {
                    entry.1 = Some(value);
                }
            } else if name.ends_with("_count") {
                entry.2 = Some(value);
            } else if name.ends_with("_sum") {
                entry.3 = true;
            }
        }
    }
    for (family, (bounds, inf, count, has_sum)) in &hist {
        if bounds.last().copied() != Some(f64::INFINITY) {
            return Err(format!("histogram {family} does not end in a +Inf bucket"));
        }
        if !has_sum {
            return Err(format!("histogram {family} has no _sum sample"));
        }
        match (inf, count) {
            (Some(i), Some(c)) if i == c => {}
            _ => {
                return Err(format!(
                    "histogram {family}: _count {count:?} must equal the +Inf bucket {inf:?}"
                ))
            }
        }
    }
    Ok(summary)
}

/// Extracts a histogram's quantile-`q` log2 bucket index from a
/// Prometheus document: the first cumulative bucket reaching
/// `ceil(q · count)`, mapped back to the in-process bucket index (le 0 →
/// bucket 0, le `2^i − 1` → bucket i, `+Inf` → 63 — the exact bounds
/// `t2opt-telemetry` exposes). `None` if the family is missing or empty.
pub fn prom_quantile_bucket(text: &str, family: &str, q: f64) -> Option<usize> {
    let bucket_prefix = format!("{family}_bucket{{");
    let mut buckets: Vec<(f64, f64)> = Vec::new(); // (le, cumulative)
    let mut count = 0.0f64;
    for line in text.lines() {
        if line.starts_with(&bucket_prefix) {
            let (_, labels, value) = parse_sample(line).ok()?;
            let le = labels.get("le")?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            buckets.push((bound, value));
        } else if let Some(v) = line.strip_prefix(&format!("{family}_count ")) {
            count = v.parse().ok()?;
        }
    }
    if count == 0.0 || buckets.is_empty() {
        return None;
    }
    let target = (q.clamp(0.0, 1.0) * count).ceil().max(1.0);
    let (le, _) = buckets
        .iter()
        .copied()
        .find(|&(_, cum)| cum >= target)
        .unwrap_or(*buckets.last().expect("nonempty"));
    Some(le_to_bucket(le))
}

/// Maps an exact exposition bound back to its log2 bucket index.
fn le_to_bucket(le: f64) -> usize {
    if le <= 0.0 {
        return 0;
    }
    if le.is_infinite() {
        return 63;
    }
    // le = 2^i − 1 for bucket i.
    ((le + 1.0).log2().round() as usize).min(63)
}

/// Validates a Chrome-trace JSON document (the `GET /trace` body): a
/// `traceEvents` array whose events each carry `name`/`ph`/`pid`/`tid`,
/// with `ph` one of `M` (metadata), `X` (complete span, with numeric
/// `ts` and `dur`), or `C` (counter). Returns the event count.
pub fn check_chrome_trace(json: &str) -> Result<usize, String> {
    let doc = parse_json(json).map_err(|e| format!("not JSON: {e}"))?;
    let obj = doc.as_object().ok_or("top level is not an object")?;
    let events = obj
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    for (i, event) in events.iter().enumerate() {
        let at = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let e = event.as_object().ok_or_else(|| at("not an object"))?;
        for field in ["name", "ph", "pid", "tid"] {
            if !e.contains_key(field) {
                return Err(at(&format!("missing {field:?}")));
            }
        }
        let ph = e["ph"].as_str().ok_or_else(|| at("ph is not a string"))?;
        match ph {
            "M" | "C" => {}
            "X" => {
                if e.get("ts").and_then(JsonValue::as_f64).is_none()
                    || e.get("dur").and_then(JsonValue::as_f64).is_none()
                {
                    return Err(at("X event needs numeric ts and dur"));
                }
            }
            other => return Err(at(&format!("unknown phase {other:?}"))),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use t2opt_telemetry::export::{prometheus_text, traces_chrome_trace};
    use t2opt_telemetry::metrics::Histogram;
    use t2opt_telemetry::trace::TraceBuffer;

    #[test]
    fn real_prometheus_output_round_trips() {
        let h = Histogram::new();
        for v in [3, 70, 70, 200] {
            h.record(v);
        }
        let text = prometheus_text(
            &[
                ("serve.requests".into(), 7),
                ("serve.bad_requests.parse".into(), 2),
                ("serve.bad_requests.chip".into(), 1),
            ],
            &[("serve.latency.cache_tier_us".into(), h.snapshot())],
            &[("serve.bad_requests.", "class")],
        );
        let summary = check_prometheus(&text).expect("renderer output must validate");
        assert_eq!(
            summary
                .types
                .get("serve_latency_cache_tier_us")
                .map(String::as_str),
            Some("histogram")
        );
        assert_eq!(
            summary
                .types
                .get("serve_bad_requests_total")
                .map(String::as_str),
            Some("counter")
        );
        assert!(summary.samples > 5);
    }

    #[test]
    fn escaped_label_values_parse_back_to_the_original() {
        let text = prometheus_text(&[("lbl.a\\b\"c\nd".into(), 1)], &[], &[("lbl.", "v")]);
        check_prometheus(&text).expect("escaped output must validate");
        let sample = text
            .lines()
            .find(|l| l.starts_with("lbl_total{"))
            .expect("labeled sample present");
        let (_, labels, _) = parse_sample(sample).unwrap();
        assert_eq!(labels["v"], "a\\b\"c\nd", "escapes must round-trip");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(
            check_prometheus("x_total 1\n").is_err(),
            "sample without # TYPE"
        );
        assert!(
            check_prometheus("# TYPE 9bad counter\n9bad 1\n").is_err(),
            "invalid metric name"
        );
        let unfinished = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(
            check_prometheus(unfinished).is_err(),
            "histogram without +Inf"
        );
        let decreasing = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\n\
                          h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(
            check_prometheus(decreasing).is_err(),
            "non-cumulative buckets"
        );
        let bad_count = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 4\n";
        assert!(check_prometheus(bad_count).is_err(), "count != +Inf bucket");
    }

    #[test]
    fn quantile_bucket_recovers_the_histogram_bucket() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket 4: [8, 15]
        }
        h.record(1000); // bucket 10: [512, 1023]
        let text = prometheus_text(&[], &[("lat.us".into(), h.snapshot())], &[]);
        assert_eq!(prom_quantile_bucket(&text, "lat_us", 0.50), Some(4));
        assert_eq!(prom_quantile_bucket(&text, "lat_us", 1.0), Some(10));
        assert_eq!(prom_quantile_bucket(&text, "absent", 0.5), None);
    }

    #[test]
    fn real_chrome_trace_output_validates() {
        let buf = TraceBuffer::new(4, 8);
        let ctx = buf.start("POST /advise");
        ctx.record("parse", 1, 0.0, 5.0);
        ctx.finish_root("request", 1);
        let json = traces_chrome_trace(&buf.recent(4));
        let n = check_chrome_trace(&json).expect("exporter output must validate");
        assert!(n >= 3, "meta + 2 spans, got {n}");
        assert!(check_chrome_trace("{}").is_err(), "missing traceEvents");
        assert!(
            check_chrome_trace(r#"{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":1}]}"#)
                .is_err(),
            "X without ts/dur"
        );
    }
}
