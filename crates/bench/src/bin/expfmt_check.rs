//! Exposition-format checker for CI: validates a Prometheus text scrape
//! (default) or a Chrome-trace JSON document (`--chrome-trace`) read from
//! a file or stdin, exiting nonzero with a diagnostic on the first
//! violation.
//!
//! ```text
//! curl -s "$ADDR/metrics?format=prometheus" | cargo run -p t2opt-bench --bin expfmt_check
//! curl -s "$ADDR/trace" | cargo run -p t2opt-bench --bin expfmt_check -- --chrome-trace
//! cargo run -p t2opt-bench --bin expfmt_check -- --file scrape.prom --require serve_requests_total
//! ```
//!
//! `--require NAME` (repeatable via commas) additionally asserts that the
//! named Prometheus families are present.

use t2opt_bench::expfmt::{check_chrome_trace, check_prometheus};
use t2opt_bench::Args;

fn main() {
    let args = Args::from_env();
    let input = match args.get_str("file") {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}"))),
        None => {
            use std::io::Read;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| fail(&format!("cannot read stdin: {e}")));
            buf
        }
    };
    if input.trim().is_empty() {
        fail("empty input");
    }

    if args.has_flag("chrome-trace") {
        match check_chrome_trace(&input) {
            Ok(n) => println!("expfmt_check: OK, {n} trace events"),
            Err(e) => fail(&format!("invalid Chrome trace: {e}")),
        }
        return;
    }

    match check_prometheus(&input) {
        Ok(summary) => {
            if let Some(required) = args.get_str("require") {
                for name in required.split(',').filter(|n| !n.is_empty()) {
                    if !summary.types.contains_key(name) {
                        fail(&format!("required family {name} is missing"));
                    }
                }
            }
            println!(
                "expfmt_check: OK, {} families, {} samples",
                summary.types.len(),
                summary.samples
            );
        }
        Err(e) => fail(&format!("invalid Prometheus exposition: {e}")),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("expfmt_check: FAIL: {msg}");
    std::process::exit(1);
}
