//! Figure 2: STREAM bandwidth vs COMMON-block offset on the simulated
//! UltraSPARC T2.
//!
//! Lower panel of the paper: parallel STREAM **triad** at N = 2²⁵ and
//! static scheduling for 8/16/32/64 threads vs array offset (0..256 DP
//! words). Upper panel: STREAM **copy** at 64 threads.
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin fig2_stream            # scaled default
//! cargo run --release -p t2opt-bench --bin fig2_stream -- --full  # paper-size N = 2^25
//! cargo run --release -p t2opt-bench --bin fig2_stream -- \
//!     --kernel copy --threads 64 --max-offset 256 --step 2 --json fig2.json
//! cargo run --release -p t2opt-bench --bin fig2_stream -- \
//!     --chip wide-8mc --threads 32                   # non-T2 topology
//! cargo run --release -p t2opt-bench --bin fig2_stream -- \
//!     --telemetry trace.json --telemetry-offset 0    # time-resolved diagnostic
//! ```
//!
//! `--chip <preset>` selects the simulated topology (default
//! `ultrasparc-t2`); the offset aliasing period then follows that chip's
//! mapping, and the JSON output records the preset name.
//!
//! `--policy <fifo|read-first|fr-fcfs[:cap]>` selects the memory
//! controllers' queue-arbitration discipline (default `fifo`, the
//! calibrated T2). Use it to ask how much of the Fig. 2 offset collapse a
//! smarter controller could dissolve — see the `policy_convoy` binary for
//! the dedicated comparison.
//!
//! `--telemetry <path>` switches to diagnostic mode: one traced run at
//! `--telemetry-offset` (default 0, the aliased worst case), printing the
//! per-window controller heatmap and the aliasing report, and writing a
//! Chrome-trace file (load it at `chrome://tracing` or Perfetto).
//!
//! Expected shape (paper): deep minima at offsets ≡ 0 (mod 64 words =
//! 512 B) where all arrays share one memory controller; ~2× partial
//! recovery at odd multiples of 32; period 64; 16 threads suffering less
//! at the minima than 32/64; copy below triad.

use serde::Serialize;
use t2opt_bench::experiments::{chip_scatter, fig2_series, offset_range, Fig2Row};
use t2opt_bench::{chip_from_args, write_json, Args, Table};
use t2opt_kernels::stream::{self, StreamConfig, StreamKernel};
use t2opt_telemetry::prelude::{ascii_heatmap, chrome_trace, AliasConfig, AliasReport};

/// JSON envelope recording which chip preset and queue policy produced
/// the sweep.
#[derive(Serialize)]
struct Fig2Output {
    chip: String,
    policy: String,
    rows: Vec<Fig2Row>,
}

fn main() {
    let args = Args::from_env();
    if args.has_flag("list-chips") {
        t2opt_bench::list_chips();
    }
    let full = args.has_flag("full");
    let n: usize = args.get("n", if full { 1 << 25 } else { 1 << 20 });
    let max_offset: usize = args.get("max-offset", 256);
    let step: usize = args.get("step", if full { 2 } else { 8 });
    let threads = args.get_list::<usize>(
        "threads",
        if full {
            &[8, 16, 32, 64][..]
        } else {
            &[16, 64][..]
        },
    );
    let kernel = match args.get_str("kernel").unwrap_or("triad") {
        "copy" => StreamKernel::Copy,
        "scale" => StreamKernel::Scale,
        "add" => StreamKernel::Add,
        "triad" => StreamKernel::Triad,
        other => {
            eprintln!("unknown kernel {other}; use copy|scale|add|triad");
            std::process::exit(2);
        }
    };
    let (spec, chip) = chip_from_args(&args);
    let threads: Vec<usize> = {
        let capacity = chip.max_threads();
        let (fit, over): (Vec<usize>, Vec<usize>) =
            threads.into_iter().partition(|&t| t <= capacity);
        if !over.is_empty() {
            eprintln!(
                "note: dropping thread counts {over:?} beyond {}'s {capacity} hardware threads",
                spec.name
            );
        }
        assert!(!fit.is_empty(), "no requested thread count fits the chip");
        fit
    };

    if let Some(path) = args.get_str("telemetry") {
        let offset: usize = args.get("telemetry-offset", 0);
        let interval: u64 = args.get("interval", 4096);
        let t = *threads.first().expect("at least one thread count");
        eprintln!(
            "fig2 telemetry: STREAM {} N = {n}, offset {offset}, {t} threads, \
             {interval}-cycle windows",
            kernel.name()
        );
        let cfg = StreamConfig::fig2(n, offset, t);
        let (res, timeline) =
            stream::run_sim_traced(&cfg, kernel, &chip, &chip_scatter(&chip), interval);
        println!(
            "{}: {:.2} GB/s reported, mc_balance {:.2}",
            kernel.name(),
            res.reported_gbs,
            res.mc_balance
        );
        print!("{}", ascii_heatmap(&timeline, 72));
        let report = AliasReport::analyze(&timeline, &AliasConfig::for_chip(&spec));
        println!("{}", report.summary());
        let trace = chrome_trace(&timeline, &[], chip.clock_hz / 1e6);
        t2opt_core::json::parse_json(&trace).expect("generated Chrome trace must be valid JSON");
        std::fs::write(path, trace).expect("failed to write Chrome trace");
        eprintln!("wrote Chrome trace {path}");
        return;
    }

    if args.has_flag("compare-threads") {
        // E7: peak bandwidth does not change going 32 → 64 threads
        // (best offset), showing the chip is not short of outstanding
        // references at 32 threads already.
        let offsets = [16usize]; // the optimal 128 B relative offset
        let counts: Vec<usize> = [8usize, 16, 32, 64]
            .into_iter()
            .filter(|&t| t <= chip.max_threads())
            .collect();
        let rows = fig2_series(&chip, kernel, n, &offsets, &counts);
        let mut table = Table::new(vec!["threads", "GB/s (offset 16)"]);
        for r in &rows {
            table.row(vec![r.threads.to_string(), format!("{:.2}", r.gbs)]);
        }
        table.print();
        return;
    }

    eprintln!(
        "fig2: STREAM {} sweep on {} ({} controllers), N = {n}, \
         offsets 0..={max_offset} step {step}, threads {threads:?}",
        kernel.name(),
        spec.name,
        chip.policy.name()
    );
    let offsets = offset_range(max_offset, step);
    let rows = fig2_series(&chip, kernel, n, &offsets, &threads);

    let mut table = Table::new(vec!["offset", "threads", "GB/s", "mc_balance"]);
    for r in &rows {
        table.row(vec![
            r.offset.to_string(),
            r.threads.to_string(),
            format!("{:.2}", r.gbs),
            format!("{:.2}", r.mc_balance),
        ]);
    }
    table.print();

    // Shape summary per thread count: min / max / min positions.
    println!();
    let mut summary = Table::new(vec![
        "threads",
        "min GB/s",
        "max GB/s",
        "max/min",
        "worst offsets",
    ]);
    for &t in &threads {
        let series: Vec<_> = rows.iter().filter(|r| r.threads == t).collect();
        if series.is_empty() {
            continue;
        }
        let min = series.iter().map(|r| r.gbs).fold(f64::INFINITY, f64::min);
        let max = series.iter().map(|r| r.gbs).fold(0.0, f64::max);
        let worst: Vec<String> = series
            .iter()
            .filter(|r| r.gbs < min * 1.15)
            .map(|r| r.offset.to_string())
            .take(6)
            .collect();
        summary.row(vec![
            t.to_string(),
            format!("{min:.2}"),
            format!("{max:.2}"),
            format!("{:.2}", max / min),
            worst.join(","),
        ]);
    }
    summary.print();

    if let Some(path) = args.get_str("json") {
        let out = Fig2Output {
            chip: spec.name.clone(),
            policy: chip.policy.name().to_string(),
            rows,
        };
        write_json(path, &out).expect("failed to write JSON");
        eprintln!("wrote {path}");
    }
}
