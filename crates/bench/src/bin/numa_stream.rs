//! Local vs remote STREAM bandwidth on the multi-socket presets.
//!
//! Bergstrom's NUMA measurements (arXiv:1103.3225) show parallel STREAM
//! losing a large, stable fraction of its bandwidth when pages live on
//! the wrong socket: first-touch (local) placement is the ceiling,
//! page-interleave sits in between, and all-remote placement is the
//! floor, gated by the inter-socket link. This binary reproduces that
//! gap on every NUMA chip preset by running the same triad under each
//! [`PagePlacement`] and reporting the local/remote ratio.
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin numa_stream
//! cargo run --release -p t2opt-bench --bin numa_stream -- --smoke --json BENCH_numa.json
//! cargo run --release -p t2opt-bench --bin numa_stream -- --chip 2s-numa --threads 64
//! ```
//!
//! Expected shape: `first-touch > interleave > remote` on every NUMA
//! preset, with the remote column capped by the link occupancy rather
//! than the controllers (watch `mc_balance` stay healthy while GB/s
//! drops — the controllers are fine, the link is the bottleneck).

use serde::Serialize;
use t2opt_bench::experiments::chip_scatter;
use t2opt_bench::{write_json, Args, Table};
use t2opt_core::chip::{ChipSpec, PRESET_NAMES};
use t2opt_core::mapping::PagePlacement;
use t2opt_kernels::stream::{self, StreamConfig, StreamKernel};
use t2opt_sim::ChipConfig;

/// One measured (chip, placement) point.
#[derive(Serialize)]
struct NumaRow {
    chip: String,
    placement: String,
    gbs: f64,
    mc_balance: f64,
}

/// The per-chip local/remote summary the benchmark exists to show.
#[derive(Serialize)]
struct NumaGap {
    chip: String,
    local_gbs: f64,
    interleave_gbs: f64,
    remote_gbs: f64,
    /// first-touch over all-remote bandwidth; > 1 is the NUMA gap.
    local_over_remote: f64,
}

#[derive(Serialize)]
struct NumaOutput {
    kernel: String,
    n: usize,
    threads: usize,
    rows: Vec<NumaRow>,
    gaps: Vec<NumaGap>,
}

fn main() {
    let args = Args::from_env();
    if args.has_flag("list-chips") {
        t2opt_bench::list_chips();
    }
    let smoke = args.has_flag("smoke");
    // Arrays must dwarf the 4 MB L2 or the measured sweeps never reach
    // memory and every placement looks identical: 2¹⁹ words = 4 MB/array.
    let n: usize = args.get("n", if smoke { 1 << 19 } else { 1 << 21 });
    let threads: usize = args.get("threads", if smoke { 16 } else { 32 });

    let chips: Vec<ChipSpec> = match args.get_str("chip") {
        Some(name) => match ChipSpec::preset(name) {
            Some(spec) if spec.sockets.is_numa() => vec![spec],
            Some(_) => {
                eprintln!("chip preset {name:?} is single-socket; numa_stream needs a NUMA preset");
                std::process::exit(2);
            }
            None => {
                eprintln!(
                    "unknown chip preset {name:?}; available: {}",
                    PRESET_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        },
        None => PRESET_NAMES
            .iter()
            .filter_map(|name| ChipSpec::preset(name))
            .filter(|spec| spec.sockets.is_numa())
            .collect(),
    };
    assert!(!chips.is_empty(), "registry must hold a NUMA preset");

    let kernel = StreamKernel::Triad;
    eprintln!(
        "numa_stream: STREAM {} N = {n}, {threads} threads, placements {:?}",
        kernel.name(),
        PagePlacement::ALL.map(|p| p.label())
    );

    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    let mut table = Table::new(vec!["chip", "placement", "GB/s", "mc_balance"]);
    for spec in &chips {
        let base = ChipConfig::from_spec(spec);
        let t = threads.min(base.max_threads());
        let mut by_placement = Vec::new();
        for placement in PagePlacement::ALL {
            let mut chip = base.clone();
            chip.placement = placement;
            let cfg = StreamConfig::fig2(n, 16, t);
            let res = stream::run_sim(&cfg, kernel, &chip, &chip_scatter(&chip));
            table.row(vec![
                spec.name.clone(),
                placement.label().to_string(),
                format!("{:.2}", res.reported_gbs),
                format!("{:.2}", res.mc_balance),
            ]);
            rows.push(NumaRow {
                chip: spec.name.clone(),
                placement: placement.label().to_string(),
                gbs: res.reported_gbs,
                mc_balance: res.mc_balance,
            });
            by_placement.push((placement, res.reported_gbs));
        }
        let gbs_of = |want: PagePlacement| {
            by_placement
                .iter()
                .find(|(p, _)| *p == want)
                .map(|(_, g)| *g)
                .expect("every placement was measured")
        };
        let (local, inter, remote) = (
            gbs_of(PagePlacement::FirstTouch),
            gbs_of(PagePlacement::Interleave),
            gbs_of(PagePlacement::Remote),
        );
        assert!(
            local > remote,
            "{}: first-touch ({local:.2} GB/s) must beat all-remote ({remote:.2} GB/s)",
            spec.name
        );
        gaps.push(NumaGap {
            chip: spec.name.clone(),
            local_gbs: local,
            interleave_gbs: inter,
            remote_gbs: remote,
            local_over_remote: local / remote,
        });
    }
    table.print();

    println!();
    let mut summary = Table::new(vec![
        "chip",
        "local",
        "interleave",
        "remote",
        "local/remote",
    ]);
    for g in &gaps {
        summary.row(vec![
            g.chip.clone(),
            format!("{:.2}", g.local_gbs),
            format!("{:.2}", g.interleave_gbs),
            format!("{:.2}", g.remote_gbs),
            format!("{:.2}x", g.local_over_remote),
        ]);
    }
    summary.print();

    if let Some(path) = args.get_str("json") {
        let out = NumaOutput {
            kernel: kernel.name().to_string(),
            n,
            threads,
            rows,
            gaps,
        };
        write_json(path, &out).expect("failed to write JSON");
        eprintln!("wrote {path}");
    }
}
