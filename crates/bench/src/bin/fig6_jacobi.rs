//! Figure 6: 2-D Jacobi relaxation performance and scaling vs problem
//! size, on the simulated UltraSPARC T2.
//!
//! The paper plots MLUPs/s vs N (quadratic N×N domain) for 8/16/32/64
//! threads with the optimal alignment (rows on 512 B boundaries, shift
//! 128 B, `static,1`), plus a 64-thread "plain" reference with no
//! alignment optimizations.
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin fig6_jacobi            # scaled default
//! cargo run --release -p t2opt-bench --bin fig6_jacobi -- --full  # paper range N ≤ 2000
//! ```
//!
//! Expected shape: optimized curves scale with threads and stay smooth vs
//! N (residual jitter from N mod threads); the plain 64 T curve shows the
//! period-64/32 aliasing dips.

use t2opt_bench::experiments::{fig6_series, n_range};
use t2opt_bench::{write_json, Args, Table};
use t2opt_sim::ChipConfig;

fn main() {
    let args = Args::from_env();
    let full = args.has_flag("full");
    let lo: usize = args.get("lo", 128);
    let hi: usize = args.get("hi", if full { 2000 } else { 1088 });
    let step: usize = args.get("step", if full { 16 } else { 96 });
    let threads = args.get_list::<usize>(
        "threads",
        if full {
            &[8, 16, 32, 64][..]
        } else {
            &[8, 64][..]
        },
    );
    let chip = ChipConfig::ultrasparc_t2();

    eprintln!("fig6: 2-D Jacobi, N ∈ [{lo}, {hi}] step {step}, threads {threads:?} + plain 64 T");
    let ns = n_range(lo, hi, step);
    let rows = fig6_series(&chip, &ns, &threads, 64);

    let mut table = Table::new(vec!["N", "threads", "variant", "MLUPs/s", "L2 hit"]);
    for r in &rows {
        table.row(vec![
            r.n.to_string(),
            r.threads.to_string(),
            r.variant.clone(),
            format!("{:.0}", r.mlups),
            format!("{:.2}", r.l2_hit_rate),
        ]);
    }
    table.print();

    println!();
    let mut summary = Table::new(vec!["series", "min MLUPs", "max MLUPs"]);
    for &t in &threads {
        let series: Vec<f64> = rows
            .iter()
            .filter(|r| r.threads == t && r.variant == "optimized")
            .map(|r| r.mlups)
            .collect();
        if series.is_empty() {
            continue;
        }
        summary.row(vec![
            format!("{t} T optimized"),
            format!(
                "{:.0}",
                series.iter().copied().fold(f64::INFINITY, f64::min)
            ),
            format!("{:.0}", series.iter().copied().fold(0.0, f64::max)),
        ]);
    }
    let plain: Vec<f64> = rows
        .iter()
        .filter(|r| r.variant == "plain")
        .map(|r| r.mlups)
        .collect();
    if !plain.is_empty() {
        summary.row(vec![
            "64 T plain".to_string(),
            format!("{:.0}", plain.iter().copied().fold(f64::INFINITY, f64::min)),
            format!("{:.0}", plain.iter().copied().fold(0.0, f64::max)),
        ]);
    }
    summary.print();

    if let Some(path) = args.get_str("json") {
        write_json(path, &rows).expect("failed to write JSON");
        eprintln!("wrote {path}");
    }
}
