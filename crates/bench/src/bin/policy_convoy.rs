//! Policy convoy study: does a smarter controller queue dissolve the
//! paper's Fig. 2/4 offset collapse?
//!
//! The paper's central pathology is a *layout* problem: with all four
//! triad arrays congruent mod 512 B, every stream hits the same memory
//! controller and threads convoy behind one 64-entry FIFO queue. This
//! binary asks how much of that collapse a reordering queue discipline
//! (read-over-write priority, FR-FCFS row-hit first) can claw back
//! **without** fixing the layout — and how each policy behaves on the
//! advisor's spread layout (each stream on its own controller).
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin policy_convoy
//! cargo run --release -p t2opt-bench --bin policy_convoy -- --json BENCH_policy.json
//! cargo run --release -p t2opt-bench --bin policy_convoy -- --smoke --json BENCH_policy.json
//! cargo run --release -p t2opt-bench --bin policy_convoy -- --chip wide-8mc --n 65536
//! ```
//!
//! Output: one row per chip preset × policy × layout with cycles, GB/s,
//! controller balance, and NACK count; per-policy summary with the
//! convoy-collapse ratio (spread GB/s ÷ aliased GB/s — the paper's ~4×
//! for FIFO on the T2) and the speedup over FIFO on each layout.
//!
//! Measured shape on the T2 preset: read-over-write beats FIFO on *both*
//! layouts (with a single outstanding miss per thread, every cycle a
//! demand load spends behind a fire-and-forget write-back is pure
//! latency), FR-FCFS stays within noise (streaming arrivals are already
//! in row order, and the channel model charges row variation as jitter,
//! not per-request timing), and no policy closes the aliased-vs-spread
//! gap — the paper's layout fix, not the controller, remains the lever.
//! `tests/integration.rs` pins exactly this shape.

use serde::Serialize;
use t2opt_bench::{write_json, Args, Table};
use t2opt_core::chip::{ChipSpec, PRESET_NAMES};
use t2opt_kernels::triad::{self, TriadConfig, TriadLayout};
use t2opt_parallel::Placement;
use t2opt_sim::policy::PolicyKind;
use t2opt_sim::ChipConfig;

/// One measured cell of the study.
#[derive(Debug, Clone, Serialize)]
struct ConvoyRow {
    /// Chip preset name.
    chip: String,
    /// Queue policy name (with cap where applicable).
    policy: String,
    /// "aliased" (all arrays congruent mod the interleave period) or
    /// "spread" (128 B relative offsets, one stream per controller).
    layout: String,
    /// Measured-window cycles.
    cycles: u64,
    /// Reported bandwidth at 32 B/element, GB/s.
    gbs: f64,
    /// Controller busy balance (1.0 = even, 1/n_mcs = one controller).
    mc_balance: f64,
    /// NACKed (retried) controller/bank admissions.
    nacks: u64,
}

/// Per-chip × policy summary: the convoy-collapse ratio and the
/// divergence from FIFO on both layouts.
#[derive(Debug, Clone, Serialize)]
struct ConvoySummary {
    chip: String,
    policy: String,
    /// spread GB/s ÷ aliased GB/s — how deep the offset collapse is under
    /// this policy (FIFO on the T2: the paper's ~4×).
    collapse_ratio: f64,
    /// Aliased-layout speedup over FIFO (>1 = the policy claws back some
    /// of the convoy; <1 = reordering makes it worse).
    aliased_speedup_vs_fifo: f64,
    /// Spread-layout speedup over FIFO (~1 for FR-FCFS — streaming
    /// arrivals are already in row order; >1 for read-over-write, whose
    /// latency win is layout-independent).
    spread_speedup_vs_fifo: f64,
}

/// `BENCH_policy.json` envelope.
#[derive(Serialize)]
struct ConvoyOutput {
    n: usize,
    threads: usize,
    rows: Vec<ConvoyRow>,
    summary: Vec<ConvoySummary>,
}

/// The policy matrix under study: the pinned default plus the two
/// reordering disciplines at their default starvation cap.
fn policy_matrix() -> Vec<PolicyKind> {
    vec![
        PolicyKind::Fifo,
        PolicyKind::ReadFirst {
            starvation_cap: t2opt_sim::policy::DEFAULT_STARVATION_CAP,
        },
        PolicyKind::FrFcfs {
            starvation_cap: t2opt_sim::policy::DEFAULT_STARVATION_CAP,
        },
    ]
}

/// Policy label including the cap, so JSON rows are self-describing.
fn policy_label(kind: PolicyKind) -> String {
    match kind.starvation_cap() {
        Some(cap) => format!("{}:{cap}", kind.name()),
        None => kind.name().to_string(),
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.has_flag("smoke");
    // Footprint must dwarf the presets' L2 (4 arrays x 8 B x n), or the
    // measured sweep runs from cache and every policy looks identical.
    let n: usize = args.get("n", if smoke { 1 << 18 } else { 1 << 19 });
    let chips: Vec<String> = match args.get_str("chip") {
        Some(name) => {
            assert!(
                ChipSpec::preset(name).is_some(),
                "unknown chip preset {name:?}; available: {}",
                PRESET_NAMES.join(", ")
            );
            vec![name.to_string()]
        }
        None => PRESET_NAMES.iter().map(|s| s.to_string()).collect(),
    };

    let mut rows: Vec<ConvoyRow> = Vec::new();
    for chip_name in &chips {
        let spec = ChipSpec::preset(chip_name).expect("preset resolves");
        let base = ChipConfig::from_spec(&spec);
        let threads = args
            .get("threads", if smoke { 16 } else { 32 })
            .min(base.max_threads());
        // Aliased: every array base congruent mod the interleave period —
        // the Fig. 4 "align 8k" floor. Spread: 128 B relative offsets, the
        // Fig. 4 ceiling (each stream maps to its own controller on the
        // T2's 512 B period).
        let layouts = [
            ("aliased", TriadLayout::Align8k),
            ("spread", TriadLayout::AlignOffset(128)),
        ];
        for kind in policy_matrix() {
            let mut chip = base.clone();
            chip.policy = kind;
            for (label, layout) in layouts {
                let cfg = TriadConfig {
                    n,
                    layout,
                    threads,
                    ntimes: 1,
                };
                let res = triad::run_sim(&cfg, &chip, &Placement::t2_scatter());
                rows.push(ConvoyRow {
                    chip: chip_name.clone(),
                    policy: policy_label(kind),
                    layout: label.to_string(),
                    cycles: res.stats.cycles(),
                    gbs: res.gbs,
                    mc_balance: res.stats.mc_balance(),
                    nacks: res.stats.nacks,
                });
            }
        }
    }

    let mut table = Table::new(vec![
        "chip",
        "policy",
        "layout",
        "cycles",
        "GB/s",
        "mc_balance",
        "nacks",
    ]);
    for r in &rows {
        table.row(vec![
            r.chip.clone(),
            r.policy.clone(),
            r.layout.clone(),
            r.cycles.to_string(),
            format!("{:.2}", r.gbs),
            format!("{:.2}", r.mc_balance),
            r.nacks.to_string(),
        ]);
    }
    table.print();

    // Summaries: collapse ratio per policy, divergence vs FIFO per layout.
    let cell = |chip: &str, policy: &str, layout: &str| -> &ConvoyRow {
        rows.iter()
            .find(|r| r.chip == chip && r.policy == policy && r.layout == layout)
            .expect("matrix cell present")
    };
    let fifo_label = policy_label(PolicyKind::Fifo);
    let mut summary = Vec::new();
    for chip_name in &chips {
        for kind in policy_matrix() {
            let label = policy_label(kind);
            let aliased = cell(chip_name, &label, "aliased");
            let spread = cell(chip_name, &label, "spread");
            let fifo_aliased = cell(chip_name, &fifo_label, "aliased");
            let fifo_spread = cell(chip_name, &fifo_label, "spread");
            summary.push(ConvoySummary {
                chip: chip_name.clone(),
                policy: label,
                collapse_ratio: spread.gbs / aliased.gbs,
                aliased_speedup_vs_fifo: aliased.gbs / fifo_aliased.gbs,
                spread_speedup_vs_fifo: spread.gbs / fifo_spread.gbs,
            });
        }
    }

    println!();
    let mut stable = Table::new(vec![
        "chip",
        "policy",
        "collapse spread/aliased",
        "aliased vs fifo",
        "spread vs fifo",
    ]);
    for s in &summary {
        stable.row(vec![
            s.chip.clone(),
            s.policy.clone(),
            format!("{:.2}x", s.collapse_ratio),
            format!("{:.3}x", s.aliased_speedup_vs_fifo),
            format!("{:.3}x", s.spread_speedup_vs_fifo),
        ]);
    }
    stable.print();

    let threads = args.get("threads", if smoke { 16 } else { 32 });
    if let Some(path) = args.get_str("json") {
        let out = ConvoyOutput {
            n,
            threads,
            rows,
            summary,
        };
        write_json(path, &out).expect("failed to write JSON");
        eprintln!("wrote {path}");
    }
}
