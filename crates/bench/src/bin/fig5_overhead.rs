//! Figure 5: performance overhead of segmented iterators vs a plain
//! parallel loop — measured on the **host**.
//!
//! This figure is about abstraction cost, not about T2 memory behaviour,
//! so the honest reproduction is a native measurement: the same vector
//! triad kernel through (a) a plain pooled `parallel_for` over slices and
//! (b) `SegArray` segments dispatched per worker (the paper's manual
//! ⌊N/t⌋+1 / ⌊N/t⌋ scheduling). The paper finds the overhead "negligible
//! even for tight loops like the vector triad", visible only at small N.
//!
//! ```text
//! cargo run --release -p t2opt-bench --bin fig5_overhead
//! cargo run --release -p t2opt-bench --bin fig5_overhead -- --threads 8 --ntimes 9
//! ```

use t2opt_bench::experiments::fig5_series;
use t2opt_bench::{write_json, Args, Table};
use t2opt_parallel::{chunk_assignment, Placement, Schedule, ThreadPool};

/// Simulator variant: the same vector triad with and without a modelled
/// per-segment dispatch overhead (function call + iterator construction,
/// ~30 cycles — deliberately generous). The paper's point holds *a
/// fortiori*: at bandwidth-bound sizes a constant per-segment cost
/// disappears into the memory time.
fn sim_variant(ns: &[usize]) {
    use t2opt_kernels::common::{place_threads, VirtualAlloc};
    use t2opt_sim::trace::{chain_with_barriers, Op, Program, StreamLoop, StreamSpec};
    use t2opt_sim::{ChipConfig, Simulation};

    let chip = ChipConfig::ultrasparc_t2();
    let threads = 64;
    let mut table = Table::new(vec![
        "N",
        "plain GB/s (sim)",
        "segmented GB/s (sim)",
        "overhead %",
    ]);
    for &n in ns {
        let run = |dispatch_overhead: u32| {
            let mut va = VirtualAlloc::new();
            let bytes = n as u64 * 8;
            let a = va.alloc(bytes, 8192, 0);
            let b = va.alloc(bytes, 8192, 128);
            let c = va.alloc(bytes, 8192, 256);
            let d = va.alloc(bytes, 8192, 384);
            let assignment = chunk_assignment(Schedule::Static, n, threads);
            let programs: Vec<Program> = (0..threads)
                .map(|tid| {
                    let chunks = assignment[tid].clone();
                    let mut sweeps = Vec::new();
                    for _ in 0..2 {
                        let mut per_chunk: Vec<Box<dyn Iterator<Item = Op>>> = Vec::new();
                        for ch in &chunks {
                            let off = ch.start as u64 * 8;
                            let head: Box<dyn Iterator<Item = Op>> = if dispatch_overhead > 0 {
                                Box::new(std::iter::once(Op::Delay(dispatch_overhead)))
                            } else {
                                Box::new(std::iter::empty())
                            };
                            per_chunk.push(Box::new(head.chain(StreamLoop::new(
                                vec![
                                    StreamSpec::load(b + off),
                                    StreamSpec::load(c + off),
                                    StreamSpec::load(d + off),
                                    StreamSpec::store(a + off),
                                ],
                                ch.len(),
                                8,
                                2.0,
                                64,
                            ))));
                        }
                        sweeps.push(per_chunk.into_iter().flatten());
                    }
                    chain_with_barriers(sweeps, 0)
                })
                .collect();
            let specs = place_threads(programs, &Placement::t2_scatter(), chip.core.n_cores);
            let sim = Simulation::new(chip.clone()).measure_after_barrier(0);
            let stats = sim.run(specs);
            stats.reported_bandwidth_gbs(&chip, n as u64 * 32)
        };
        let plain = run(0);
        let seg = run(30);
        table.row(vec![
            n.to_string(),
            format!("{plain:.2}"),
            format!("{seg:.2}"),
            format!("{:+.1}", (plain / seg - 1.0) * 100.0),
        ]);
    }
    table.print();
}

fn main() {
    let args = Args::from_env();
    let threads: usize = args.get(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    );
    let ntimes: usize = args.get("ntimes", 5);
    let pool = ThreadPool::with_placement(threads, Placement::Scatter { n_cores: threads });

    // Log-scan N from 10³ to 10⁷ like the paper's x-axis.
    let mut ns = Vec::new();
    let mut n = 1000usize;
    while n <= 10_000_000 {
        ns.push(n);
        ns.push(n * 2);
        ns.push(n * 5);
        n *= 10;
    }
    ns.retain(|&x| x <= 10_000_000);

    eprintln!(
        "fig5: segmented-iterator overhead on the host, {threads} threads, best of {ntimes}+1 runs"
    );
    let rows = fig5_series(&pool, &ns, ntimes);

    let mut table = Table::new(vec!["N", "plain GB/s", "segmented GB/s", "overhead %"]);
    for r in &rows {
        table.row(vec![
            r.n.to_string(),
            format!("{:.2}", r.plain_gbs),
            format!("{:.2}", r.segmented_gbs),
            format!("{:+.1}", r.overhead_pct),
        ]);
    }
    table.print();

    // The paper's conclusion: overhead negligible at large N.
    let large: Vec<&_> = rows.iter().filter(|r| r.n >= 1_000_000).collect();
    if !large.is_empty() {
        let mean_overhead: f64 =
            large.iter().map(|r| r.overhead_pct).sum::<f64>() / large.len() as f64;
        println!("\nmean overhead for N ≥ 10^6: {mean_overhead:+.1} % (paper: negligible)");
    }

    if args.has_flag("sim") {
        println!("\nsimulator variant (64 threads, optimal offsets, 30-cycle dispatch):");
        sim_variant(&[10_000, 100_000, 1_000_000]);
    }

    if let Some(path) = args.get_str("json") {
        write_json(path, &rows).expect("failed to write JSON");
        eprintln!("wrote {path}");
    }
}
